"""Figure 5 -- transient comparison of the behavioral and linearized models.

Regenerates the figure-5 experiment: 5, 10 and 15 V pulses driving the
transducer + resonator system, simulated with both the nonlinear behavioral
(HDL-A style) transducer and the linearized equivalent circuit.  The claims
checked are the paper's qualitative results:

* the displacements converge at the 10 V linearization point,
* the linear model overshoots at 5 V (by the quasi-static factor V0/V = 2),
* the linear model undershoots at 15 V (factor V0/V = 2/3).
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.circuit import SimulationOptions
from repro.system import run_figure5_comparison


def _run():
    return run_figure5_comparison(amplitudes=(5.0, 10.0, 15.0), t_step=4e-4,
                                  options=SimulationOptions(trtol=10.0))


def test_figure5_transient_comparison(benchmark):
    comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'drive [V]':>10} {'x behavioral [m]':>18} {'x linearized [m]':>18} "
             f"{'ratio lin/beh':>14} {'expected V0/V':>14}"]
    for row in comparison.table_rows():
        lines.append(f"{row['amplitude_V']:>10.1f} {row['x_behavioral_m']:>18.4e} "
                     f"{row['x_linearized_m']:>18.4e} {row['ratio_lin_over_beh']:>14.3f} "
                     f"{row['expected_ratio_V0_over_V']:>14.3f}")
    report("Figure 5: behavioral vs linearized displacement plateaus", lines)

    run5 = comparison.run_for(5.0)
    run10 = comparison.run_for(10.0)
    run15 = comparison.run_for(15.0)
    assert run10.plateau_ratio == pytest.approx(1.0, abs=0.05)
    assert run5.linear_overshoots and run5.plateau_ratio == pytest.approx(2.0, rel=0.1)
    assert (not run15.linear_overshoots) and run15.plateau_ratio == pytest.approx(2 / 3, rel=0.1)
    # Quasi-static displacement at the bias matches Table 4's x0 ~ 1e-8 m.
    assert run10.behavioral_plateau == pytest.approx(1e-8, rel=0.05)
