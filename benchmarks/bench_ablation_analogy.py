"""Ablation A1 -- force-current versus force-voltage analogy.

The paper chooses the force-current analogy "as the mechanical and electrical
nets have the same topology".  This ablation builds the Table-4 resonator
both ways (mechanical elements in the FI analogy versus the dual electrical
network that the FV analogy produces) and confirms the predicted dynamics are
identical, i.e. the choice is a modeling convenience, not a physics change.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import report
from repro.circuit import Circuit, Sine, TransientAnalysis
from repro.natures import FORCE_CURRENT, FORCE_VOLTAGE
from repro.system import PAPER_PARAMETERS

DRIVE = Sine(amplitude=1e-6, frequency=200.0)
T_STOP = 30e-3


def _force_current_circuit():
    circuit = Circuit("FI analogy")
    circuit.force_source("F1", "m", "0", DRIVE)
    circuit.mass("M1", "m", PAPER_PARAMETERS.mass)
    circuit.spring("K1", "m", "0", PAPER_PARAMETERS.stiffness)
    circuit.damper("D1", "m", "0", PAPER_PARAMETERS.damping)
    return circuit


def _force_voltage_circuit():
    # In the FV analogy the force maps to a voltage and the mechanical
    # elements form a series RLC loop; the loop current is the velocity.
    circuit = Circuit("FV analogy")
    circuit.voltage_source("VF", "drive", "0", DRIVE)
    circuit.inductor("LM", "drive", "n1", PAPER_PARAMETERS.mass)
    circuit.capacitor("CK", "n1", "n2", 1.0 / PAPER_PARAMETERS.stiffness)
    circuit.resistor("RD", "n2", "0", PAPER_PARAMETERS.damping)
    return circuit


def test_ablation_fi_vs_fv_analogy(benchmark):
    def run_both():
        fi = TransientAnalysis(_force_current_circuit(), t_stop=T_STOP, t_step=5e-5).run()
        fv = TransientAnalysis(_force_voltage_circuit(), t_stop=T_STOP, t_step=5e-5).run()
        return fi, fv

    fi, fv = benchmark.pedantic(run_both, rounds=1, iterations=1)
    probes = np.linspace(1e-3, T_STOP - 1e-3, 40)
    velocity_fi = fi.sample("v(m)", probes)
    velocity_fv = fv.sample("i(LM)", probes)
    worst = float(np.max(np.abs(velocity_fi - velocity_fv)))
    peak = float(np.max(np.abs(velocity_fi)))
    lines = [
        f"element mapping (FI): mass -> C = {FORCE_CURRENT.mass_to_element(PAPER_PARAMETERS.mass):.1e}, "
        f"spring -> L = {FORCE_CURRENT.spring_to_element(PAPER_PARAMETERS.stiffness):.1e}, "
        f"damper -> R = {FORCE_CURRENT.damper_to_element(PAPER_PARAMETERS.damping):.1e}",
        f"element mapping (FV): mass -> L = {FORCE_VOLTAGE.mass_to_element(PAPER_PARAMETERS.mass):.1e}, "
        f"spring -> C = {FORCE_VOLTAGE.spring_to_element(PAPER_PARAMETERS.stiffness):.1e}, "
        f"damper -> R = {FORCE_VOLTAGE.damper_to_element(PAPER_PARAMETERS.damping):.1e}",
        f"peak velocity                 : {peak:.4e} m/s",
        f"worst FI-vs-FV velocity error : {worst:.3e} m/s",
    ]
    report("Ablation A1: force-current vs force-voltage analogy", lines)
    assert worst < 5e-3 * peak
