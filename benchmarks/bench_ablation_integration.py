"""Ablation A2 -- integration method and timestep for the figure-5 transient.

Sweeps the transient integration method (trapezoidal versus backward Euler)
and the requested timestep, and reports the error of the quasi-static plateau
displacement against the analytic value.  Backward Euler's numerical damping
and the first-order step-size dependence are clearly visible; trapezoidal
integration is what the figure-5 benchmark uses.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.circuit import SimulationOptions, TransientAnalysis
from repro.system import PAPER_PARAMETERS, build_behavioral_system
from repro.system.microsystem import build_drive_waveform

DRIVE = build_drive_waveform(10.0)
T_STOP = DRIVE.delay + DRIVE.rise + DRIVE.width
ANALYTIC = abs(PAPER_PARAMETERS.transducer().force(10.0, 0.0)) / PAPER_PARAMETERS.stiffness

CASES = [
    ("trapezoidal", 8e-4),
    ("trapezoidal", 4e-4),
    ("trapezoidal", 2e-4),
    ("backward_euler", 8e-4),
    ("backward_euler", 4e-4),
    ("backward_euler", 2e-4),
]


def _run_case(method: str, step: float):
    options = SimulationOptions(integration_method=method, trtol=10.0)
    circuit = build_behavioral_system(PAPER_PARAMETERS, DRIVE)
    result = TransientAnalysis(circuit, t_stop=T_STOP, t_step=step, options=options).run()
    return result


def test_ablation_integration_methods(benchmark):
    def sweep():
        rows = []
        for method, step in CASES:
            result = _run_case(method, step)
            plateau = result.final("x(XDCR)")
            _, peak = result.peak("x(XDCR)")
            rows.append((method, step, plateau, peak, result.statistics["accepted"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'method':<16} {'t_step [s]':>12} {'plateau x [m]':>16} "
             f"{'plateau error':>14} {'ringing peak [m]':>18} {'steps':>8}"]
    for method, step, plateau, peak, steps in rows:
        error = abs(plateau - ANALYTIC) / ANALYTIC
        lines.append(f"{method:<16} {step:>12.1e} {plateau:>16.5e} {error:>13.3%} "
                     f"{peak:>18.5e} {steps:>8d}")
        assert error < 0.05
    report("Ablation A2: integration method / timestep sweep", lines)

    # Backward Euler's numerical damping suppresses the ringing overshoot on
    # the pulse edge; trapezoidal integration preserves it.  Compare the first
    # peak of the under-damped response at the same (coarsest) step.
    peaks = {(m, s): p for m, s, _, p, _ in rows}
    assert peaks[("trapezoidal", 8e-4)] > peaks[("backward_euler", 8e-4)]
    # Both methods converge to the same plateau with step refinement.
    plateaus = {(m, s): p for m, s, p, _, _ in rows}
    assert plateaus[("trapezoidal", 2e-4)] == pytest.approx(
        plateaus[("backward_euler", 2e-4)], rel=1e-2)
