"""Table 2 -- input impedances and internal energies of the four transducers.

For each transducer of figure 2 the benchmark evaluates the analytic input
capacitance/inductance and co-energy of Table 2 and cross-checks them against

* the small-signal input capacitance seen by the circuit solver around a bias
  point (behavioral device + AC linearization), for the electrostatic devices,
* the co-energy obtained from the energy-method machinery.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.circuit import Circuit, equivalent_capacitance
from repro.constants import EPSILON_0, MU_0
from repro.transducers import (
    ElectrodynamicTransducer,
    ElectromagneticTransducer,
    LateralElectrostaticTransducer,
    TransverseElectrostaticTransducer,
)

AREA, GAP = 1e-4, 0.15e-3


def _table2_rows():
    transverse = TransverseElectrostaticTransducer(area=AREA, gap=GAP)
    lateral = LateralElectrostaticTransducer(depth=10e-6, length=100e-6, gap=2e-6)
    magnetic = ElectromagneticTransducer(area=AREA, turns=100.0, gap=GAP)
    voice = ElectrodynamicTransducer(turns=50.0, radius=5e-3, b_field=0.8)
    rows = []
    rows.append(("a) transverse electrostatic",
                 transverse.capacitance(0.0), EPSILON_0 * AREA / GAP,
                 transverse.coenergy(10.0, 0.0), 0.5 * EPSILON_0 * AREA * 100.0 / GAP))
    rows.append(("b) parallel electrostatic",
                 lateral.capacitance(0.0), EPSILON_0 * 10e-6 * 100e-6 / 2e-6,
                 lateral.coenergy(10.0, 0.0), 0.5 * EPSILON_0 * 10e-6 * 100e-6 / 2e-6 * 100.0))
    rows.append(("c) electromagnetic",
                 magnetic.inductance(0.0), MU_0 * AREA * 100.0 ** 2 / (2.0 * GAP),
                 magnetic.coenergy(0.5, 0.0), MU_0 * AREA * 100.0 ** 2 * 0.25 / (4.0 * GAP)))
    rows.append(("d) electrodynamic",
                 voice.inductance(0.0), 0.5 * MU_0 * 50.0 * 5e-3,
                 voice.coenergy(0.5, 0.0), 0.5 * 0.5 * MU_0 * 50.0 * 5e-3 * 0.25))
    return rows


def _small_signal_capacitance():
    """Input capacitance of the behavioral transverse transducer at 10 V bias."""
    circuit = Circuit("table-2 impedance probe")
    circuit.voltage_source("VS", "a", "0", 10.0)
    TransverseElectrostaticTransducer(area=AREA, gap=GAP).add_to_circuit(
        circuit, "XDCR", "a", "0", "m", "0")
    circuit.mass("M1", "m", 1e-4)
    circuit.spring("K1", "m", "0", 200.0)
    circuit.damper("D1", "m", "0", 0.04)
    # Probe from the drive node: the bias source is an AC short, so add a
    # series probe node instead -- probe the transducer electrical port itself.
    probe = Circuit("probe")
    probe.current_source("IP", "0", "a", 0.0)
    TransverseElectrostaticTransducer(area=AREA, gap=GAP).add_to_circuit(
        probe, "XDCR", "a", "0", "m", "0")
    probe.mass("M1", "m", 1e-4)
    probe.spring("K1", "m", "0", 200.0)
    probe.damper("D1", "m", "0", 0.04)
    # Far above the mechanical resonance the port capacitance is C(x0).
    return equivalent_capacitance(probe, "a", frequency=1e5)


def test_table2_impedances_and_energies(benchmark):
    rows = benchmark(_table2_rows)
    lines = [f"{'transducer':<30} {'Z-parameter':>14} {'(closed form)':>14} "
             f"{'co-energy [J]':>14} {'(closed form)':>14}"]
    for label, parameter, parameter_ref, energy, energy_ref in rows:
        lines.append(f"{label:<30} {parameter:>14.5e} {parameter_ref:>14.5e} "
                     f"{energy:>14.5e} {energy_ref:>14.5e}")
        assert parameter == pytest.approx(parameter_ref, rel=1e-9)
        assert energy == pytest.approx(energy_ref, rel=1e-9)
    report("Table 2: impedances and energies of the transducers", lines)


def test_table2_small_signal_capacitance_from_circuit(benchmark):
    capacitance = benchmark(_small_signal_capacitance)
    expected = EPSILON_0 * AREA / GAP
    report("Table 2 cross-check: small-signal input capacitance from the solver", [
        f"AC-extracted C = {capacitance:.5e} F",
        f"analytic eps*A/d = {expected:.5e} F",
    ])
    assert capacitance == pytest.approx(expected, rel=1e-3)
