"""Behavioral-compiler benchmark: compiled kernels vs the AD interpreter.

The workload is a behavioral-heavy variant of the figure-5 experiment: an
array of closed-form electrostatic transducer cells (the paper's HDL-A
model) each loaded by a mass/spring/damper resonator written as *behavioral
models* as well, so every device on the mechanical side stamps through
``BehavioralDevice``.  The pulse drive and trapezoidal transient match the
figure-5 setup.

The same netlist is integrated twice -- ``behavioral_compile=True`` (typed
expression IR -> generated NumPy kernels + fused stamp functions) and
``False`` (the AD-dual tracing interpreter) -- and the benchmark checks the
compiler's two contracts:

* every recorded waveform is **bitwise identical** between the two runs
  (the compiled kernels replicate the interpreter's IEEE arithmetic
  operation by operation), and
* the compiled transient is at least **5x faster** than the interpreted
  one (min-of-``repeats`` wall clock on both sides).

Run standalone (``python benchmarks/bench_behavioral_compile.py``);
``--smoke`` shrinks the time grid so CI can exercise the pin in seconds.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.circuit import Circuit, SimulationOptions, TransientAnalysis
from repro.circuit.devices.behavioral import BehavioralDevice, Port
from repro.hdl import compile as hdl_compile
from repro.natures import MECHANICAL_TRANSLATION
from repro.system import PAPER_PARAMETERS, build_drive_waveform

#: Acceptance floor for the compiled-vs-interpreted transient wall clock.
SPEEDUP_FLOOR = 5.0


def _behavioral_resonator(circuit, node, prefix, mass, stiffness, damping):
    """The figure-3 resonator with every element as a behavioral model."""
    mech = circuit.mechanical_node(node)
    frame = circuit.ground

    def mass_behavior(ctx):
        ctx.contribute("mech", ctx.param("m") * ctx.ddt(ctx.across("mech"),
                                                        key="p"))

    def spring_behavior(ctx):
        x = ctx.integ(ctx.across("mech"), key="x")
        ctx.contribute("mech", ctx.param("k") * x)
        ctx.record("x", x)

    def damper_behavior(ctx):
        ctx.contribute("mech", ctx.param("a") * ctx.across("mech"))

    for suffix, behavior, params in (
            ("m", mass_behavior, {"m": mass}),
            ("k", spring_behavior, {"k": stiffness}),
            ("a", damper_behavior, {"a": damping})):
        circuit.add(BehavioralDevice(
            f"{prefix}_{suffix}",
            [Port("mech", mech, frame, MECHANICAL_TRANSLATION)],
            behavior, params=dict(params)))


def build_circuit(cells: int) -> Circuit:
    circuit = Circuit("behavioral-heavy figure-5 array")
    drive = build_drive_waveform(10.0, delay=0.5e-3, rise=0.2e-3,
                                 width=3.5e-3, fall=0.2e-3)
    circuit.voltage_source("VS", "a", "0", drive, ac=1.0)
    for i in range(cells):
        xdcr = PAPER_PARAMETERS.transducer()
        xdcr.add_to_circuit(circuit, f"XDCR{i}", "a", "0", f"m{i}", "0",
                            closed_form=True)
        _behavioral_resonator(circuit, f"m{i}", f"res{i}",
                              PAPER_PARAMETERS.mass,
                              PAPER_PARAMETERS.stiffness,
                              PAPER_PARAMETERS.damping)
    return circuit


def _transient(cells: int, t_stop: float, compile_on: bool):
    circuit = build_circuit(cells)
    options = SimulationOptions(trtol=7.0, behavioral_compile=compile_on)
    analysis = TransientAnalysis(circuit, t_stop=t_stop, t_step=2e-5,
                                 options=options)
    start = time.perf_counter()
    result = analysis.run()
    return result, time.perf_counter() - start


def run(cells: int, t_stop: float, repeats: int, check: bool = True):
    """Run the comparison; returns report lines (raises on pin failure)."""
    # Warm-up run: populates the process-wide fingerprint-keyed kernel cache
    # (shared across circuits, exactly like a long-lived session) and pays
    # any one-time NumPy/SciPy import costs off the clock.
    _transient(cells, t_stop, compile_on=True)

    compiled, t_compiled = _transient(cells, t_stop, compile_on=True)
    for _ in range(repeats - 1):
        t_compiled = min(t_compiled, _transient(cells, t_stop, True)[1])
    cache = hdl_compile.cache_info()
    interp, t_interp = _transient(cells, t_stop, compile_on=False)
    for _ in range(repeats - 1):
        t_interp = min(t_interp, _transient(cells, t_stop, False)[1])

    mismatches = [name for name in interp._data
                  if not np.array_equal(np.asarray(compiled._data[name]),
                                        np.asarray(interp._data[name]))]
    time_identical = np.array_equal(compiled.time, interp.time)
    speedup = t_interp / t_compiled
    lines = [
        f"workload: {cells} transducer cells -> {4 * cells} behavioral "
        f"devices, t_stop = {t_stop:.1e} s, {len(interp.time)} time points",
        f"compiled kernels     : {cache['kernels']} "
        "(fingerprint-cached, shared across the array)",
        f"interpreted transient: {t_interp * 1e3:8.1f} ms",
        f"compiled transient   : {t_compiled * 1e3:8.1f} ms",
        f"speedup              : {speedup:8.2f}x",
        f"waveforms bit-identical: {not mismatches and time_identical} "
        f"({len(interp._data)} signals)",
    ]
    if check:
        # Explicit raises, not asserts: the pins must survive `python -O`.
        if not time_identical:
            raise RuntimeError("compiled and interpreted runs disagree on "
                               "the accepted time grid")
        if mismatches:
            raise RuntimeError(
                f"{len(mismatches)} signal(s) not bitwise identical between "
                f"compiled and interpreted runs: {mismatches[:5]}")
        if speedup < SPEEDUP_FLOOR:
            raise RuntimeError(
                f"behavioral-compile speedup {speedup:.2f}x "
                f"(acceptance: >= {SPEEDUP_FLOOR:.0f}x)")
        lines.append(f"acceptance: bit-identical waveforms, "
                     f"{speedup:.2f}x >= {SPEEDUP_FLOOR:.0f}x")
    return lines


def test_behavioral_compile_speedup(benchmark):
    """Pytest entry point (regression-gate ledger suite)."""
    from conftest import report
    lines = benchmark.pedantic(
        lambda: run(cells=8, t_stop=6e-3, repeats=2), rounds=1, iterations=1)
    report("Behavioral compiler: compiled kernels vs interpreter", lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="short time grid for CI (pins still enforced)")
    args = parser.parse_args(argv)
    if args.smoke:
        lines = run(cells=8, t_stop=6e-3, repeats=2)
    else:
        lines = run(cells=8, t_stop=10e-3, repeats=3)
    print("==== Behavioral compiler: compiled kernels vs interpreter ====")
    for line in lines:
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
