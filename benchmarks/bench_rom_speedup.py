"""Full-vs-reduced benchmark: harmonic and transient cost of a beam model.

The workload is the macromodeling claim of the ROM subsystem: a cantilever
FE beam with >= 200 DOFs is swept over a dense frequency grid and integrated
through a step transient, once with the full ``(M, C, K)`` system and once
through modal ROMs of increasing order.  Reported per order:

* ROM build time (eigensolve + projection),
* harmonic sweep time and speedup over the full dense sweep,
* transient integration time and speedup (same trapezoidal integrator on
  both sides, so the comparison is purely about system size),
* worst relative harmonic error at the driven tip over the probe grid.

Acceptance pin: at order 6 the amortized ROM harmonic path (build + sweep)
is >= 5x faster than the full sweep and matches it within 1% at >= 95% of
the probe frequencies.

Run standalone (``python benchmarks/bench_rom_speedup.py``); ``--smoke``
shrinks the grids so CI can exercise the script in seconds.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.fem import CantileverBeam
from repro.rom import ReducedModel, harmonic_error, rom_from_matrices

RAYLEIGH = (0.0, 1e-9)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run(elements: int, num_frequencies: int, num_steps: int,
        orders: tuple[int, ...], check: bool = True) -> list[str]:
    beam = CantileverBeam(length=300e-6, width=20e-6, thickness=2e-6,
                          youngs_modulus=160e9, density=2330.0,
                          elements=elements)
    stiffness, mass = beam.assemble()
    damping = RAYLEIGH[0] * mass + RAYLEIGH[1] * stiffness
    n = stiffness.shape[0]
    tip = n - 2
    f1 = beam.analytic_first_frequency()
    frequencies = np.linspace(0.2 * f1, 5.0 * f1, num_frequencies)
    t_stop = 20.0 / f1
    t_step = t_stop / num_steps

    # Full references: the dense harmonic sweep and the same trapezoidal
    # integrator applied to the unreduced system (identity "reduction").
    selector = np.zeros(n)
    selector[tip] = 1.0
    full_system = ReducedModel(M=mass, C=damping, K=stiffness, B=selector,
                               L=selector[None, :], method="full")
    full_harmonic, t_full_harmonic = _timed(
        lambda: full_system.harmonic(frequencies))
    (_, full_transient), t_full_transient = _timed(
        lambda: full_system.transient(t_stop, t_step, force=1e-6))

    lines = [f"mesh: {elements} beam elements -> {n} DOFs, "
             f"{num_frequencies} frequencies, {num_steps} transient steps",
             f"full harmonic sweep  : {t_full_harmonic * 1e3:8.1f} ms",
             f"full transient sweep : {t_full_transient * 1e3:8.1f} ms",
             f"{'order':>5} {'build[ms]':>10} {'harm[ms]':>9} {'harm x':>7} "
             f"{'tran[ms]':>9} {'tran x':>7} {'max err':>9} {'<=1%':>6}"]
    results = {}
    for order in orders:
        rom, t_build = _timed(lambda order=order: rom_from_matrices(
            mass, stiffness, order=order, drive_dof=tip, output_dofs=[tip],
            rayleigh=RAYLEIGH))
        _, t_harmonic = _timed(lambda rom=rom: rom.harmonic(frequencies))
        _, t_transient = _timed(
            lambda rom=rom: rom.transient(t_stop, t_step, force=1e-6))
        errors = harmonic_error(rom, mass, damping, stiffness, frequencies,
                                drive_dof=tip, output_dofs=[tip])
        harmonic_speedup = t_full_harmonic / (t_build + t_harmonic)
        transient_speedup = t_full_transient / (t_build + t_transient)
        within = float(np.mean(errors <= 0.01))
        results[order] = (harmonic_speedup, within)
        lines.append(
            f"{order:5d} {t_build * 1e3:10.1f} {t_harmonic * 1e3:9.1f} "
            f"{harmonic_speedup:7.1f} {t_transient * 1e3:9.1f} "
            f"{transient_speedup:7.1f} {np.max(errors):9.2e} {within:6.0%}")

    if check:
        if 6 not in results:
            raise ValueError(
                "the acceptance check pins order 6; include it in 'orders' "
                "or pass check=False")
        # Explicit raises, not asserts: the pin must survive `python -O`.
        speedup, within = results[6]
        if within < 0.95:
            raise RuntimeError(
                f"order-6 ROM within 1% at only {within:.0%} of probe "
                "frequencies (acceptance: >= 95%)")
        if speedup < 5.0:
            raise RuntimeError(
                f"order-6 ROM harmonic speedup {speedup:.1f}x "
                "(acceptance: >= 5x)")
        lines.append(f"acceptance: order-6 harmonic speedup {speedup:.1f}x "
                     f"(>= 5x), within 1% at {within:.0%} of probes (>= 95%)")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny grids for CI (acceptance pin still enforced)")
    args = parser.parse_args(argv)
    if args.smoke:
        lines = run(elements=100, num_frequencies=40, num_steps=200,
                    orders=(4, 6))
    else:
        lines = run(elements=100, num_frequencies=200, num_steps=2000,
                    orders=(2, 4, 6, 8, 12))
    print("==== ROM speedup: full vs reduced beam model ====")
    for line in lines:
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
