"""Listing 1 -- the HDL-A transducer model through the full language front-end.

Benchmarks the complete HDL path (lex, parse, analyze, elaborate, simulate)
for the paper's Listing 1 and checks that the parsed model reproduces the
native Python behavioral model of the same transducer.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import report
from repro.circuit import Circuit, SimulationOptions, TransientAnalysis
from repro.hdl import instantiate, parse
from repro.hdl.codegen import LISTING1_SOURCE
from repro.system import PAPER_PARAMETERS, build_behavioral_system
from repro.system.microsystem import build_drive_waveform

OPTIONS = SimulationOptions(trtol=10.0)
DRIVE = build_drive_waveform(10.0)
T_STOP = DRIVE.delay + DRIVE.rise + DRIVE.width


def _parse_and_elaborate():
    circuit = Circuit("listing 1")
    circuit.voltage_source("VS", "a", "0", DRIVE)
    module = parse(LISTING1_SOURCE)
    device = instantiate(
        module, "eletran", name="XDCR",
        generics={"A": PAPER_PARAMETERS.area, "d": PAPER_PARAMETERS.gap,
                  "er": PAPER_PARAMETERS.epsilon_r},
        pins={"a": circuit.electrical_node("a"), "b": circuit.ground,
              "c": circuit.mechanical_node("m"), "e": circuit.ground})
    circuit.add(device)
    PAPER_PARAMETERS.resonator().add_to_circuit(circuit, "m")
    return circuit


def test_listing1_parse_elaborate(benchmark):
    circuit = benchmark(_parse_and_elaborate)
    assert "XDCR" in circuit


def test_listing1_system_simulation(benchmark):
    hdl_circuit = _parse_and_elaborate()
    result = benchmark.pedantic(
        lambda: TransientAnalysis(hdl_circuit, t_stop=T_STOP, t_step=4e-4,
                                  options=OPTIONS).run(),
        rounds=1, iterations=1)
    python_circuit = build_behavioral_system(PAPER_PARAMETERS, DRIVE)
    python_result = TransientAnalysis(python_circuit, t_stop=T_STOP, t_step=4e-4,
                                      options=OPTIONS).run()
    probes = np.linspace(DRIVE.delay, T_STOP, 20)
    x_hdl = result.sample("x(XDCR)", probes)
    x_python = python_result.sample("x(XDCR)", probes)
    worst = float(np.max(np.abs(x_hdl - x_python)))
    report("Listing 1: parsed HDL-A model vs native behavioral model", [
        f"plateau displacement (HDL model)    : {result.final('x(XDCR)'):.4e} m",
        f"plateau displacement (Python model) : {python_result.final('x(XDCR)'):.4e} m",
        f"worst trace difference              : {worst:.3e} m",
    ])
    assert result.final("x(XDCR)") == pytest.approx(1e-8, rel=0.05)
    assert np.allclose(x_hdl, x_python, rtol=2e-2, atol=1e-11)
