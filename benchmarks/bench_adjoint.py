"""Adjoint-sensitivity benchmark: pin the full-solve saving vs central FD.

Two gradient tasks over the figure-3-style electrostatic transducer stack:

* **operating point** -- gradient of the op-point mechanical output with
  respect to 7 device/geometry parameters.  The adjoint path performs
  exactly ONE forward Newton solve plus one transposed back-substitution;
  central differences re-solve the operating point ``2 * 7 = 14`` times.
* **transient** -- gradient of the final-time spring force with respect to
  8 parameters.  The discrete adjoint replays ONE stored transient (no new
  Newton solves, factorizations mostly cache hits); central differences
  re-integrate the transient ``2 * 8 = 16`` times.

Both gradients must agree with their FD reference (the benchmark fails on a
correctness regression, not just a performance one), and the full-solve
saving must stay **>= 3x** -- enforced with explicit raises so the CI smoke
job gates on it.  Wall-clock is reported but not gated.

Run standalone (``python benchmarks/bench_adjoint.py``); ``--smoke`` is
accepted for CI symmetry and runs the identical deterministic workload.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.circuit import Circuit, OperatingPointAnalysis, SimulationOptions, TransientAnalysis
from repro.circuit.analysis.sensitivity import resolve_parameters
from repro.circuit.devices.mechanical import Damper, Mass, Spring
from repro.circuit.devices.nonlinear import Diode
from repro.circuit.devices.passive import Resistor
from repro.circuit.devices.sources import VoltageSource
from repro.transducers import TransverseElectrostaticTransducer

OPTIONS = SimulationOptions(reltol=1e-9, abstol=1e-15, vntol=1e-12)

#: Pinned floor on the full-nonlinear-solve saving of the adjoint path.
MIN_SOLVE_SAVING = 3.0

OP_PARAMS = ("V1.dc", "R1.resistance", "D1.saturation_current",
             "XT.A", "XT.d", "XT.er", "B1.damping")
OP_OUTPUT = "v(nm)"

TRAN_PARAMS = ("V1.dc", "R1.resistance", "XT.A", "XT.d", "XT.er",
               "K1.stiffness", "M1.mass", "B1.damping")
TRAN_OUTPUT = "i(K1)"
T_STOP, T_STEP = 1.5e-5, 3e-7


def build_op_circuit() -> Circuit:
    circuit = Circuit()
    n1 = circuit.electrical_node("n1")
    n2 = circuit.electrical_node("n2")
    ground = circuit.ground
    circuit.add(VoltageSource("V1", n1, ground, 5.0))
    circuit.add(Resistor("R1", n1, n2, 1e3))
    circuit.add(Diode("D1", n2, ground, 1e-12))
    circuit.mechanical_node("nm")
    TransverseElectrostaticTransducer(
        area=1e-8, gap=2e-6, gap_orientation="closing").add_to_circuit(
        circuit, "XT", "n2", "0", "nm", "0", closed_form=True)
    circuit.add(Damper("B1", circuit.mechanical_node("nm"), ground, 1e-4))
    return circuit


def build_tran_circuit() -> Circuit:
    circuit = Circuit()
    n1 = circuit.electrical_node("n1")
    n2 = circuit.electrical_node("n2")
    ground = circuit.ground
    circuit.add(VoltageSource("V1", n1, ground, 8.0))
    circuit.add(Resistor("R1", n1, n2, 1e4))
    nm = circuit.mechanical_node("nm")
    TransverseElectrostaticTransducer(
        area=4e-8, gap=2e-6, gap_orientation="closing").add_to_circuit(
        circuit, "XT", "n2", "0", "nm", "0", closed_form=True)
    circuit.add(Mass("M1", nm, ground, 1e-9))
    circuit.add(Spring("K1", nm, ground, 5.0))
    circuit.add(Damper("B1", nm, ground, 2e-5))
    return circuit


def _fd_gradient(build, params, run_output, rel_step):
    """Central-difference reference; returns (gradient, full_solves)."""
    refs = resolve_parameters(build(), params)
    gradient = np.zeros(len(refs))
    solves = 0

    def at(k: int, sign: float) -> float:
        nonlocal solves
        circuit = build()
        refs_k = resolve_parameters(circuit, params)
        ref = refs_k[k]
        ref.device.set_parameter(
            ref.parameter, ref.value + sign * rel_step * abs(ref.value))
        solves += 1
        return run_output(circuit)

    for k, ref in enumerate(refs):
        step = rel_step * abs(ref.value)
        gradient[k] = (at(k, +1.0) - at(k, -1.0)) / (2.0 * step)
    return gradient, solves


def bench_operating_point() -> dict[str, float]:
    start = time.perf_counter()
    analysis = OperatingPointAnalysis(build_op_circuit(), OPTIONS)
    result = analysis.sensitivities(OP_PARAMS, [OP_OUTPUT], method="adjoint")
    adjoint_time = time.perf_counter() - start
    adjoint_solves = result.stats["newton_solves"]
    assert result.stats["adjoint_solves"] == 1

    def run_output(circuit) -> float:
        return OperatingPointAnalysis(circuit, OPTIONS).run()[OP_OUTPUT]

    start = time.perf_counter()
    fd_gradient, fd_solves = _fd_gradient(build_op_circuit, OP_PARAMS,
                                          run_output, 1e-5)
    fd_time = time.perf_counter() - start
    error = float(np.max(np.abs(result.matrix[0] - fd_gradient)
                         / np.maximum(np.abs(fd_gradient), 1e-30)))
    return {"adjoint_solves": adjoint_solves, "fd_solves": fd_solves,
            "saving": fd_solves / max(adjoint_solves, 1),
            "max_rel_error": error, "adjoint_time_s": adjoint_time,
            "fd_time_s": fd_time}


def bench_transient() -> dict[str, float]:
    start = time.perf_counter()
    analysis = TransientAnalysis(build_tran_circuit(), t_stop=T_STOP,
                                 t_step=T_STEP, options=OPTIONS)
    result = analysis.sensitivities(TRAN_PARAMS, [TRAN_OUTPUT],
                                    method="adjoint")
    adjoint_time = time.perf_counter() - start
    adjoint_solves = result.stats["transient_solves"]
    factor_hits = result.stats["factor_cache_hits"]
    factorizations = result.stats["factorizations"]

    def run_output(circuit) -> float:
        return TransientAnalysis(circuit, t_stop=T_STOP, t_step=T_STEP,
                                 options=OPTIONS).run().final(TRAN_OUTPUT)

    start = time.perf_counter()
    fd_gradient, fd_solves = _fd_gradient(build_tran_circuit, TRAN_PARAMS,
                                          run_output, 1e-6)
    fd_time = time.perf_counter() - start
    scale = float(np.max(np.abs(fd_gradient)))
    error = float(np.max(np.abs(result.matrix[0] - fd_gradient))
                  / scale)
    return {"adjoint_solves": adjoint_solves, "fd_solves": fd_solves,
            "saving": fd_solves / max(adjoint_solves, 1),
            "max_rel_error": error, "factor_cache_hits": factor_hits,
            "factorizations": factorizations,
            "adjoint_time_s": adjoint_time, "fd_time_s": fd_time}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode (identical deterministic workload)")
    parser.parse_args(argv)

    print("=== bench_adjoint: adjoint gradients vs central finite differences ===")
    op_stats = bench_operating_point()
    print(f"operating point ({len(OP_PARAMS)} params): adjoint "
          f"{op_stats['adjoint_solves']:.0f} Newton solve(s) in "
          f"{op_stats['adjoint_time_s']:.3f} s vs FD "
          f"{op_stats['fd_solves']:.0f} solves in {op_stats['fd_time_s']:.3f} s "
          f"-> {op_stats['saving']:.1f}x fewer solves, "
          f"max rel error {op_stats['max_rel_error']:.2e}")
    tran_stats = bench_transient()
    print(f"transient ({len(TRAN_PARAMS)} params): adjoint "
          f"{tran_stats['adjoint_solves']:.0f} integration(s) in "
          f"{tran_stats['adjoint_time_s']:.3f} s "
          f"({tran_stats['factorizations']:.0f} factorizations / "
          f"{tran_stats['factor_cache_hits']:.0f} cache hits) vs FD "
          f"{tran_stats['fd_solves']:.0f} integrations in "
          f"{tran_stats['fd_time_s']:.3f} s -> {tran_stats['saving']:.1f}x "
          f"fewer solves, max rel error {tran_stats['max_rel_error']:.2e}")

    if op_stats["max_rel_error"] > 1e-5:
        raise AssertionError(
            f"op adjoint gradient drifted from central FD: max rel error "
            f"{op_stats['max_rel_error']:.2e} (> 1e-5)")
    if tran_stats["max_rel_error"] > 1e-4:
        raise AssertionError(
            f"transient adjoint gradient drifted from central FD: max rel "
            f"error {tran_stats['max_rel_error']:.2e} (> 1e-4)")
    for label, stats in (("op", op_stats), ("transient", tran_stats)):
        if stats["saving"] < MIN_SOLVE_SAVING:
            raise AssertionError(
                f"{label} adjoint solve saving regressed: "
                f"{stats['saving']:.1f}x (floor {MIN_SOLVE_SAVING:.0f}x)")
    if tran_stats["factor_cache_hits"] <= tran_stats["factorizations"]:
        raise AssertionError(
            "transient adjoint replay stopped reusing factorizations "
            f"({tran_stats['factorizations']:.0f} factorizations vs "
            f"{tran_stats['factor_cache_hits']:.0f} cache hits)")
    print("floors satisfied.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
