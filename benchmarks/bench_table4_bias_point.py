"""Table 4 -- system parameters and the derived bias point (C0, x0, Gamma).

Regenerates the derived quantities of Table 4 from the primary parameters and
compares them with the values printed in the paper:

* the dc displacement x0 at 10 V bias,
* the dc capacitance C0,
* the transduction factor Gamma (where the paper's printed value is
  inconsistent with its own formula -- both are reported).
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.constants import EPSILON_0
from repro.system import PAPER_PARAMETERS


def _bias_point():
    return PAPER_PARAMETERS.derived_bias_point()


def test_table4_bias_point(benchmark):
    linearized = benchmark(_bias_point)
    p = PAPER_PARAMETERS
    gamma_formula = EPSILON_0 * p.epsilon_r * p.area * p.dc_voltage / (
        p.gap + linearized.bias_displacement) ** 2
    lines = [
        f"{'quantity':<28} {'reproduced':>14} {'paper':>14}",
        f"{'area A [m^2]':<28} {p.area:>14.4e} {1.0e-4:>14.4e}",
        f"{'gap d [m]':<28} {p.gap:>14.4e} {0.15e-3:>14.4e}",
        f"{'mass m [kg]':<28} {p.mass:>14.4e} {1.0e-4:>14.4e}",
        f"{'spring k [N/m]':<28} {p.stiffness:>14.4g} {200.0:>14.4g}",
        f"{'damping alpha [N s/m]':<28} {p.damping:>14.4e} {40e-3:>14.4e}",
        f"{'dc voltage v0 [V]':<28} {p.dc_voltage:>14.4g} {10.0:>14.4g}",
        f"{'dc displacement x0 [m]':<28} {linearized.bias_displacement:>14.4e} "
        f"{p.dc_displacement:>14.4e}",
        f"{'dc capacitance C0 [F]':<28} {linearized.c0:>14.4e} {p.dc_capacitance:>14.4e}",
        f"{'Gamma = eps*A*v0/(d+x0)^2':<28} {linearized.gamma_small_signal:>14.4e} "
        f"{p.printed_gamma:>14.4e}  <-- paper's printed value is inconsistent "
        "with its own formula",
        f"{'Gamma_eff = F0/V0 [N/V]':<28} {linearized.gamma_effective:>14.4e} {'-':>14}",
    ]
    report("Table 4: parameters and derived bias point", lines)
    assert linearized.bias_displacement == pytest.approx(p.dc_displacement, rel=2e-2)
    assert linearized.c0 == pytest.approx(p.dc_capacitance, rel=1e-2)
    assert linearized.gamma_small_signal == pytest.approx(gamma_formula, rel=1e-6)
    # The printed Gamma differs by ~two orders of magnitude from the formula.
    assert linearized.gamma_small_signal > 10.0 * p.printed_gamma
