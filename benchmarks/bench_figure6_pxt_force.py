"""Figure 6 -- PXT extracting the electrostatic force from an FE field solution.

Reproduces the figure-6 workflow: the electric field between the transducer
electrodes is solved with the finite-element substrate (no fringe field, as
in the paper), PXT integrates ``1/2 eps E^2`` over the movable electrode, and
the result is compared with the Table 3 closed form at x = 0 -- the check the
paper itself reports ("The result obtained using the parameters in table 4
and zero displacement (x=0) corresponds to the force in table 3").
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.constants import EPSILON_0
from repro.pxt import ParameterExtractor
from repro.pxt.report import ExtractionReport
from repro.system import PAPER_PARAMETERS


def _extract():
    extractor = ParameterExtractor(
        area=PAPER_PARAMETERS.area, gap=PAPER_PARAMETERS.gap,
        epsilon_r=PAPER_PARAMETERS.epsilon_r, nx=20, ny=14)
    sweep = extractor.sweep([0.0], [2.0, 5.0, 10.0, 15.0])
    return extractor, sweep


def test_figure6_pxt_force_extraction(benchmark):
    extractor, sweep = benchmark.pedantic(_extract, rounds=1, iterations=1)
    table3_force = 0.5 * EPSILON_0 * PAPER_PARAMETERS.area * 100.0 / PAPER_PARAMETERS.gap ** 2
    lines = []
    for point in sweep.points:
        analytic = extractor.analytic_force(point.voltage, point.displacement)
        deviation = abs(point.force - analytic) / analytic if analytic else 0.0
        lines.append(f"V = {point.voltage:5.1f} V  x = 0 :  F_fe = {point.force:.6e} N, "
                     f"F_table3 = {analytic:.6e} N, deviation = {100 * deviation:.4f} %")
    point_10v = sweep.at(0.0, 10.0)
    lines.append("")
    lines.append(f"capacitance from field energy: {point_10v.capacitance:.6e} F "
                 f"(eps A / d = {extractor.analytic_capacitance(0.0):.6e} F)")
    lines.append(f"uniform field |E| = {point_10v.field:.4e} V/m "
                 f"(V/d = {10.0 / PAPER_PARAMETERS.gap:.4e} V/m)")
    report("Figure 6: PXT Maxwell-stress force extraction", lines)

    assert point_10v.force == pytest.approx(table3_force, rel=1e-4)
    assert point_10v.capacitance == pytest.approx(extractor.analytic_capacitance(0.0), rel=1e-4)
    # The PXT report generator reproduces the figure-6 output log.
    text = ExtractionReport(extractor, sweep).render()
    assert "PXT extraction report" in text
