"""Table 3 -- voltages and forces (efforts) derived from the transducer energies.

Regenerates every row of Table 3 twice: once from the hand-derived closed
forms and once through the mechanised energy-method derivation (AD gradient
of the Table 2 energy), and checks that the two agree -- which is precisely
the paper's claim that the port efforts follow from differentiating the
internal energy.
"""

from __future__ import annotations

import math

import pytest

from conftest import report
from repro.constants import EPSILON_0, MU_0
from repro.transducers import (
    ElectrodynamicTransducer,
    ElectromagneticTransducer,
    LateralElectrostaticTransducer,
    TransverseElectrostaticTransducer,
)

AREA, GAP = 1e-4, 0.15e-3
VOLTAGE, CURRENT, DISPLACEMENT = 10.0, 0.5, 1e-6


def _table3_rows():
    transverse = TransverseElectrostaticTransducer(area=AREA, gap=GAP)
    lateral = LateralElectrostaticTransducer(depth=10e-6, length=100e-6, gap=2e-6)
    magnetic = ElectromagneticTransducer(area=AREA, turns=100.0, gap=GAP)
    voice = ElectrodynamicTransducer(turns=50.0, radius=5e-3, b_field=0.8)

    gap_a = GAP + DISPLACEMENT
    rows = [
        ("a) transverse electrostatic",
         transverse.force(VOLTAGE, DISPLACEMENT),
         -0.5 * EPSILON_0 * AREA * VOLTAGE ** 2 / gap_a ** 2,
         transverse.energy_method_force(VOLTAGE, DISPLACEMENT)),
        ("b) parallel electrostatic",
         lateral.force(VOLTAGE, DISPLACEMENT),
         -0.5 * EPSILON_0 * 10e-6 * VOLTAGE ** 2 / 2e-6,
         lateral.energy_method_force(VOLTAGE, DISPLACEMENT)),
        ("c) electromagnetic",
         magnetic.force(CURRENT, DISPLACEMENT),
         -MU_0 * AREA * 100.0 ** 2 * CURRENT ** 2 / (4.0 * gap_a ** 2),
         magnetic.energy_method_force(CURRENT, DISPLACEMENT)),
        ("d) electrodynamic",
         voice.force(CURRENT, DISPLACEMENT),
         -2.0 * math.pi * 50.0 * 5e-3 * 0.8 * CURRENT,
         voice.force(CURRENT, DISPLACEMENT)),  # gyrator: not energy-derivable
    ]
    # Voltage rows: quasi-static electrical efforts.
    charge = transverse.charge_or_flux(VOLTAGE, DISPLACEMENT)
    voltage_back = transverse.voltage_from_charge(charge, DISPLACEMENT)
    return rows, (charge, voltage_back)


def test_table3_efforts(benchmark):
    rows, (charge, voltage_back) = benchmark(_table3_rows)
    lines = [f"{'transducer':<30} {'force (model)':>16} {'force (Table 3)':>16} "
             f"{'force (dW*/dx)':>16}"]
    for label, force_model, force_table, force_energy in rows:
        lines.append(f"{label:<30} {force_model:>16.6e} {force_table:>16.6e} "
                     f"{force_energy:>16.6e}")
        assert force_model == pytest.approx(force_table, rel=1e-9)
        assert force_energy == pytest.approx(force_table, rel=1e-6)
    lines.append("")
    lines.append(f"voltage row check (transducer a): q = C(x) v = {charge:.6e} C, "
                 f"v(q, x) = {voltage_back:.4f} V (drive was {VOLTAGE} V)")
    report("Table 3: efforts derived from the transducer energies", lines)
    assert voltage_back == pytest.approx(VOLTAGE, rel=1e-9)
