"""Ablation A3 -- FE mesh refinement convergence of the PXT extraction.

The figure-6 force/capacitance extraction is repeated over a range of mesh
densities.  For the fringe-free parallel-plate problem the bilinear elements
represent the exact (linear) potential, so the extracted quantities are
mesh-independent to solver precision -- which is exactly what this ablation
demonstrates, and why the paper can afford a coarse mesh in its screenshot.
"""

from __future__ import annotations

import pytest

from conftest import report
from repro.pxt import ParameterExtractor
from repro.system import PAPER_PARAMETERS

MESHES = [(4, 3), (8, 6), (16, 12), (32, 24), (64, 48)]
VOLTAGE = 10.0


def _sweep_meshes():
    rows = []
    for nx, ny in MESHES:
        extractor = ParameterExtractor(area=PAPER_PARAMETERS.area, gap=PAPER_PARAMETERS.gap,
                                       nx=nx, ny=ny)
        point = extractor.solve_point(0.0, VOLTAGE)
        rows.append((nx, ny, point.capacitance, point.force,
                     extractor.analytic_capacitance(0.0),
                     extractor.analytic_force(VOLTAGE, 0.0)))
    return rows


def test_ablation_mesh_refinement(benchmark):
    rows = benchmark.pedantic(_sweep_meshes, rounds=1, iterations=1)
    lines = [f"{'mesh':>10} {'unknowns':>10} {'C [F]':>14} {'F [N]':>14} "
             f"{'C error':>10} {'F error':>10}"]
    for nx, ny, capacitance, force, c_ref, f_ref in rows:
        c_err = abs(capacitance - c_ref) / c_ref
        f_err = abs(force - f_ref) / f_ref
        lines.append(f"{f'{nx}x{ny}':>10} {(nx + 1) * (ny + 1):>10d} {capacitance:>14.6e} "
                     f"{force:>14.6e} {c_err:>10.2e} {f_err:>10.2e}")
        assert c_err < 1e-6
        assert f_err < 1e-6
    report("Ablation A3: FE mesh refinement of the figure-6 extraction", lines)
