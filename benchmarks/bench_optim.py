"""Optimization benchmark: pin the ROM-surrogate evaluation saving.

One design task, solved twice:

* **full-model optimization** -- Nelder-Mead directly on the expensive
  objective (fundamental resonance measured on the full-order damped FE
  harmonic response, ~120 dense factorizations per design),
* **ROM-surrogate strategy** -- the same solver does its search work on an
  order-6 modal-ROM measurement of the same quantity;
  :class:`~repro.optim.surrogate.SurrogateStrategy` spends one full-model
  evaluation per outer verification round.

Both must land within 1 % of the 25 kHz resonance target; the surrogate
path must need **>= 5x fewer real full-model evaluations** (the objective's
``evaluations`` counter -- deterministic, so the floor is enforced in the
CI smoke job with an explicit raise; wall-clock is reported but not gated).

Run standalone (``python benchmarks/bench_optim.py``); ``--smoke`` is
accepted for CI symmetry and runs the identical deterministic workload.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.fem.harmonic import harmonic_response, interpolate_peak_frequency
from repro.fem.structural import CantileverBeam
from repro.optim import NelderMead, Objective, ParameterSpace, SurrogateStrategy
from repro.rom import rom_from_matrices

LENGTH = 400e-6
WIDTH = 20e-6
YOUNGS_MODULUS = 160e9
DENSITY = 2330.0
ELEMENTS = 40
RAYLEIGH_BETA = 2.1e-7

TARGET_HZ = 25e3
TOLERANCE = 0.01
ROM_ORDER = 6
COARSE_GRID = np.geomspace(5e3, 3e5, 60)

#: Pinned floor: the surrogate strategy must save at least this factor in
#: real full-model evaluations.
MIN_EVALUATION_SAVING = 5.0

SPACE = ParameterSpace(thickness=(1.0e-6, 10.0e-6, "log"))


def _beam_matrices(thickness: float):
    beam = CantileverBeam(length=LENGTH, width=WIDTH, thickness=thickness,
                          youngs_modulus=YOUNGS_MODULUS, density=DENSITY,
                          elements=ELEMENTS)
    stiffness, mass = beam.assemble()
    return mass, RAYLEIGH_BETA * stiffness, stiffness


def _refined_peak(magnitude_of) -> float:
    coarse = magnitude_of(COARSE_GRID)
    f0 = float(COARSE_GRID[int(np.argmax(coarse))])
    window = np.linspace(0.85 * f0, 1.15 * f0, 61)
    return interpolate_peak_frequency(window, magnitude_of(window))


def full_resonance(params: dict) -> dict[str, float]:
    mass, damping, stiffness = _beam_matrices(float(params["thickness"]))

    def magnitude(frequencies: np.ndarray) -> np.ndarray:
        response = harmonic_response(mass, damping, stiffness, frequencies,
                                     drive_dof=-2)
        return response.magnitude(-2)

    return {"resonance_hz": _refined_peak(magnitude)}


def rom_resonance(params: dict) -> dict[str, float]:
    mass, damping, stiffness = _beam_matrices(float(params["thickness"]))
    rom = rom_from_matrices(mass, stiffness, order=ROM_ORDER, method="modal",
                            drive_dof=-2, output_dofs=[-2],
                            rayleigh=(0.0, RAYLEIGH_BETA))

    def magnitude(frequencies: np.ndarray) -> np.ndarray:
        return np.abs(rom.harmonic(frequencies)[:, 0])

    return {"resonance_hz": _refined_peak(magnitude)}


def _objective(fn) -> Objective:
    return Objective(fn, SPACE, output="resonance_hz", target=TARGET_HZ)


def _miss(params: dict) -> float:
    return abs(full_resonance(params)["resonance_hz"] - TARGET_HZ) / TARGET_HZ


def run_benchmark() -> dict[str, float]:
    solver = NelderMead(max_iterations=80, xtol=1e-7, ftol=1e-14)

    # Direct full-model optimization (the baseline every designer pays today).
    full_direct = _objective(full_resonance)
    start = time.perf_counter()
    direct = solver.minimize(full_direct)
    direct_time = time.perf_counter() - start
    direct_evals = full_direct.evaluations
    direct_miss = _miss(direct.params)

    # ROM-surrogate strategy on the identical task.
    full = _objective(full_resonance)
    surrogate = _objective(rom_resonance)
    strategy = SurrogateStrategy(solver=solver, fun_tol=TOLERANCE ** 2,
                                 agree_rtol=5e-2)
    start = time.perf_counter()
    accelerated = strategy.minimize(full, surrogate)
    accelerated_time = time.perf_counter() - start
    accelerated_miss = _miss(accelerated.params)

    saving = direct_evals / max(accelerated.full_evaluations, 1)
    return {
        "direct_evals": direct_evals,
        "direct_miss": direct_miss,
        "direct_time_s": direct_time,
        "surrogate_full_evals": accelerated.full_evaluations,
        "surrogate_rom_evals": accelerated.surrogate_evaluations,
        "surrogate_miss": accelerated_miss,
        "surrogate_time_s": accelerated_time,
        "fallback_used": float(accelerated.fallback_used),
        "saving": saving,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke mode (identical deterministic workload)")
    parser.parse_args(argv)

    stats = run_benchmark()
    print("=== bench_optim: ROM-surrogate vs full-model optimization ===")
    print(f"target {TARGET_HZ / 1e3:.1f} kHz, tolerance {100 * TOLERANCE:.0f} %")
    print(f"full-model Nelder-Mead : {stats['direct_evals']:4.0f} full "
          f"evaluations, miss {100 * stats['direct_miss']:.4f} %, "
          f"{stats['direct_time_s']:.2f} s")
    print(f"ROM-surrogate strategy : {stats['surrogate_full_evals']:4.0f} full "
          f"evaluations (+{stats['surrogate_rom_evals']:.0f} ROM), "
          f"miss {100 * stats['surrogate_miss']:.4f} %, "
          f"{stats['surrogate_time_s']:.2f} s, "
          f"fallback={bool(stats['fallback_used'])}")
    print(f"full-model evaluation saving: {stats['saving']:.1f}x "
          f"(floor {MIN_EVALUATION_SAVING:.0f}x)")

    if stats["direct_miss"] > TOLERANCE:
        raise AssertionError(
            f"direct optimization missed the target by "
            f"{100 * stats['direct_miss']:.2f} % (> {100 * TOLERANCE:.0f} %)")
    if stats["surrogate_miss"] > TOLERANCE:
        raise AssertionError(
            f"surrogate optimization missed the target by "
            f"{100 * stats['surrogate_miss']:.2f} % (> {100 * TOLERANCE:.0f} %)")
    if stats["saving"] < MIN_EVALUATION_SAVING:
        raise AssertionError(
            f"surrogate saving regressed: {stats['saving']:.1f}x full-model "
            f"evaluations (floor {MIN_EVALUATION_SAVING:.0f}x)")
    print("floors satisfied.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
