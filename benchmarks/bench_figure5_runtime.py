"""Figure 5 (runtime claim) -- simulation-speed penalty of the HDL model.

The paper: "The drawback is a strong penalty in simulation performance (a
factor of 10 was observed)".  This benchmark times one pulse simulation of
the behavioral-transducer system and of the linearized equivalent circuit
separately (so the pytest-benchmark table shows both), and asserts the
qualitative claim: the behavioral model is substantially slower, within the
same order of magnitude reported by the paper.
"""

from __future__ import annotations

from conftest import report
from repro.circuit import SimulationOptions, TransientAnalysis
from repro.system import build_behavioral_system, build_linearized_system
from repro.system.microsystem import build_drive_waveform

DRIVE = build_drive_waveform(10.0)
T_STOP = DRIVE.delay + DRIVE.rise + DRIVE.width + DRIVE.fall + 15e-3
OPTIONS = SimulationOptions(trtol=10.0)

_timings: dict[str, float] = {}


def _simulate(circuit):
    return TransientAnalysis(circuit, t_stop=T_STOP, t_step=4e-4, options=OPTIONS).run()


def test_runtime_behavioral_model(benchmark):
    circuit = build_behavioral_system(drive=DRIVE)
    result = benchmark(lambda: _simulate(circuit))
    _timings["behavioral"] = benchmark.stats.stats.mean
    assert result.statistics["accepted"] > 50


def test_runtime_linearized_model(benchmark):
    circuit = build_linearized_system(drive=DRIVE)
    result = benchmark(lambda: _simulate(circuit))
    _timings["linearized"] = benchmark.stats.stats.mean
    assert result.statistics["accepted"] > 50

    if "behavioral" in _timings and _timings["linearized"] > 0.0:
        penalty = _timings["behavioral"] / _timings["linearized"]
        report("Figure 5 runtime claim: behavioral vs linearized simulation time", [
            f"behavioral model : {_timings['behavioral'] * 1e3:8.2f} ms per run",
            f"linearized model : {_timings['linearized'] * 1e3:8.2f} ms per run",
            f"penalty          : {penalty:5.1f}x   (paper reports ~10x)",
        ])
        assert penalty > 1.5
        assert penalty < 100.0
