"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
reproduced rows are printed through :func:`report` so that running

``pytest benchmarks/ --benchmark-only -s``

shows the regenerated tables next to the timing numbers, and
``EXPERIMENTS.md`` records the same values.

Passing ``--trace-out DIR`` additionally wraps every benchmark test in a
full-mode :func:`repro.telemetry.session` and writes one Chrome/Perfetto
``trace_event`` JSON file per test into ``DIR`` (open in ``ui.perfetto.dev``
to see where a benchmark spends its time).  Without the flag nothing is
collected, so the timing numbers stay undisturbed.
"""

from __future__ import annotations

import os
import re

import pytest


def report(title: str, lines) -> None:
    """Print a reproduced table/figure block (visible with ``-s``)."""
    print()
    print(f"==== {title} ====")
    for line in lines:
        print(f"  {line}")


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", default=None, metavar="DIR",
        help="write a Perfetto trace_event JSON per benchmark test into DIR")


@pytest.fixture(autouse=True)
def perfetto_trace(request):
    """Opt-in per-test Perfetto trace collection (``--trace-out DIR``)."""
    directory = request.config.getoption("--trace-out", default=None)
    if not directory:
        yield
        return
    from repro import telemetry

    with telemetry.session(mode="full") as sess:
        yield
    os.makedirs(directory, exist_ok=True)
    name = re.sub(r"[^\w.=-]+", "_", request.node.name)
    path = sess.report.write_chrome_trace(
        os.path.join(directory, f"{name}.json"))
    print(f"perfetto trace written: {path}")
