"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
reproduced rows are printed through :func:`report` so that running

``pytest benchmarks/ --benchmark-only -s``

shows the regenerated tables next to the timing numbers, and
``EXPERIMENTS.md`` records the same values.
"""

from __future__ import annotations


def report(title: str, lines) -> None:
    """Print a reproduced table/figure block (visible with ``-s``)."""
    print()
    print(f"==== {title} ====")
    for line in lines:
        print(f"  {line}")
