"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper.  The
reproduced rows are printed through :func:`report` so that running

``pytest benchmarks/ --benchmark-only -s``

shows the regenerated tables next to the timing numbers, and
``EXPERIMENTS.md`` records the same values.

Passing ``--trace-out DIR`` additionally wraps every benchmark test in a
full-mode :func:`repro.telemetry.session` and writes one Chrome/Perfetto
``trace_event`` JSON file per test into ``DIR`` (open in ``ui.perfetto.dev``
to see where a benchmark spends its time).  Without the flag nothing is
collected, so the timing numbers stay undisturbed.

Passing ``--bench-out FILE`` writes a machine-readable JSON ledger of the
run: one entry per executed test (outcome + call duration) enriched with
pytest-benchmark's min/mean/max statistics where a ``benchmark`` fixture
ran, stamped with a provenance block (git SHA, UTC timestamp, hostname,
Python/NumPy/SciPy versions) so every BENCH_N.json artifact is
self-describing.  CI archives the ledger next to the Perfetto traces, so
timing history is diffable across commits without scraping terminal output.

Passing ``--ledger DIR`` additionally appends one
:class:`repro.telemetry.ledger.RunRecord` for the whole benchmark session
into the persistent run ledger at ``DIR`` -- the durable form the
``python -m repro.telemetry.ledger`` CLI diffs and regression-gates.
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
import time

import pytest

#: Ledger schema tag; bump on incompatible change.  Version 2 added the
#: self-describing ``provenance`` block (version-1 files remain ingestable
#: by ``repro.telemetry.ledger``, which captures provenance on their behalf).
_LEDGER_SCHEMA = "repro-bench-ledger/2"


def report(title: str, lines) -> None:
    """Print a reproduced table/figure block (visible with ``-s``)."""
    print()
    print(f"==== {title} ====")
    for line in lines:
        print(f"  {line}")


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out", default=None, metavar="DIR",
        help="write a Perfetto trace_event JSON per benchmark test into DIR")
    parser.addoption(
        "--bench-out", default=None, metavar="FILE",
        help="write a machine-readable JSON ledger of benchmark results to FILE")
    parser.addoption(
        "--ledger", default=None, metavar="DIR",
        help="append a RunRecord for this benchmark session to the "
             "persistent run ledger at DIR")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    rep = outcome.get_result()
    if rep.when != "call" or not (item.config.getoption("--bench-out")
                                  or item.config.getoption("--ledger")):
        return
    ledger = getattr(item.config, "_bench_ledger", None)
    if ledger is None:
        ledger = item.config._bench_ledger = []
    ledger.append({"test": item.nodeid, "outcome": rep.outcome,
                   "duration_s": rep.duration})


def _benchmark_stats(config) -> dict:
    """Per-test pytest-benchmark statistics, keyed by node id (best effort)."""
    stats = {}
    session = getattr(config, "_benchmarksession", None)
    for bench in getattr(session, "benchmarks", []) or []:
        raw = getattr(bench, "stats", None)
        raw = getattr(raw, "stats", raw)  # Metadata wraps Stats on some versions
        try:
            digest = {"rounds": int(raw.rounds),
                      "min_s": float(raw.min),
                      "mean_s": float(raw.mean),
                      "max_s": float(raw.max)}
        except Exception:
            continue
        stats[bench.fullname] = digest
    return stats


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-out", default=None)
    ledger_dir = session.config.getoption("--ledger", default=None)
    if not path and not ledger_dir:
        return
    from repro.telemetry import ledger as run_ledger

    stats = _benchmark_stats(session.config)
    results = []
    for entry in getattr(session.config, "_bench_ledger", []):
        # pytest-benchmark's fullname may be relative to a different root
        # than the node id; fall back to suffix matching on the test name.
        bench = stats.get(entry["test"])
        if bench is None:
            test_name = entry["test"].rsplit("::", 1)[-1]
            for fullname, digest in stats.items():
                if fullname.rsplit("::", 1)[-1] == test_name:
                    bench = digest
                    break
        results.append({**entry, "benchmark": bench})
    payload = {
        "schema": _LEDGER_SCHEMA,
        "created_s": time.time(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "provenance": run_ledger.capture_provenance(),
        "exit_status": int(exitstatus),
        "results": results,
    }
    if path:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nbenchmark ledger written: {path} ({len(results)} tests)")
    if ledger_dir:
        record = run_ledger.RunRecord.from_bench_ledger(payload)
        record_id = run_ledger.RunLedger(ledger_dir).append(record)
        print(f"\nrun record {record_id} appended to {ledger_dir}")


@pytest.fixture(autouse=True)
def perfetto_trace(request):
    """Opt-in per-test Perfetto trace collection (``--trace-out DIR``)."""
    directory = request.config.getoption("--trace-out", default=None)
    if not directory:
        yield
        return
    from repro import telemetry

    with telemetry.session(mode="full") as sess:
        yield
    os.makedirs(directory, exist_ok=True)
    name = re.sub(r"[^\w.=-]+", "_", request.node.name)
    path = sess.report.write_chrome_trace(
        os.path.join(directory, f"{name}.json"))
    print(f"perfetto trace written: {path}")
