"""Solver-reuse benchmark: pin the speedups of the repro.linalg core.

Two workloads, each comparing ``jacobian_reuse="off"`` (factor every freshly
assembled Jacobian -- the historical behaviour) against the reuse policies:

* **Figure-5 transient Newton loop** -- the paper's nonlinear behavioral
  transducer + resonator pulse response, ``"off"`` versus ``"chord"``
  (held factorization + residual-only assemblies with stall refactor).
  Floor: >= 2x on the Newton-loop time.
* **AC sweep of a linear circuit** -- a 200-point sweep of a parallel-branch
  RLC ladder, ``"off"`` (re-stamp every frequency) versus the default
  G/C/S value-update sweep.  Floor: >= 3x, with results within 1e-9.

The floors are enforced with explicit raises so the CI smoke job fails on a
regression.  A correctness gate also checks that the default ``"auto"``
policy is bit-identical to ``"off"`` on the nonlinear transient.

Run standalone (``python benchmarks/bench_linalg_reuse.py``); ``--smoke``
runs a single repetition and gates on the *deterministic* reuse counters
(factorization counts, sweep mode, result deviations) instead of the
wall-clock floors, so a noisy shared CI runner cannot fail the job
spuriously -- wall-clock floors are enforced on the full 3-repetition run.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.circuit import (
    ACAnalysis,
    Circuit,
    OperatingPointAnalysis,
    Pulse,
    SimulationOptions,
    TransientAnalysis,
)
from repro.circuit.analysis.ac import frequency_grid
from repro.system import build_behavioral_system

#: Enforced speedup floors (explicit raises below).
TRANSIENT_NEWTON_FLOOR = 2.0
AC_SWEEP_FLOOR = 3.0


def _figure5_transient(policy: str, step_chord_reuse: bool = False):
    circuit = build_behavioral_system(
        drive=Pulse(0.0, 10.0, rise=2e-3, width=35e-3))
    # The pinned chord floors predate step_chord_reuse, so the historical
    # refactor-on-every-step-change behaviour is measured by default; the
    # step-reuse variant is reported (and gated) separately below.
    options = SimulationOptions(trtol=10.0, jacobian_reuse=policy,
                                step_chord_reuse=step_chord_reuse)
    return TransientAnalysis(circuit, t_stop=60e-3, t_step=4e-4,
                             options=options).run()


def _ac_ladder(sections: int = 10, branches: int = 6) -> Circuit:
    """A linear ladder with several parallel RC branches per section --
    representative of post-extraction macromodel netlists, where the device
    count per node (stamping work) dominates the matrix size."""
    circuit = Circuit("rlc-ladder")
    circuit.voltage_source("V1", "n0", "0", 1.0, ac=1.0)
    for i in range(sections):
        for j in range(branches):
            circuit.resistor(f"R{i}_{j}", f"n{i}", f"n{i + 1}", 50.0 * (j + 1))
            circuit.capacitor(f"C{i}_{j}", f"n{i + 1}", "0", 1e-9 / (j + 1))
        circuit.inductor(f"L{i}", f"n{i + 1}", "0", 1e-6)
    return circuit


def _best_of(repetitions: int, fn):
    best_time = np.inf
    value = None
    for _ in range(repetitions):
        start = time.perf_counter()
        value = fn()
        best_time = min(best_time, time.perf_counter() - start)
    return value, best_time


def run(repetitions: int, check: bool = True,
        check_wall_clock: bool = True) -> list[str]:
    lines: list[str] = []

    # ---------------------------------------------------- correctness gate
    reference = _figure5_transient("off")
    auto = _figure5_transient("auto")
    identical = all(np.array_equal(reference[s], auto[s])
                    for s in reference.signals())
    lines.append(f"auto vs off bit-identical      : {identical}")
    if check and not identical:
        raise AssertionError(
            "jacobian_reuse='auto' changed the figure-5 transient result")

    # ------------------------------------------------- transient Newton loop
    def best_newton(policy: str):
        best_result, best_time = None, np.inf
        for _ in range(repetitions):
            result = _figure5_transient(policy)
            if result.statistics["newton_time_s"] < best_time:
                best_result = result
                best_time = result.statistics["newton_time_s"]
        return best_result, best_time

    off_result, newton_off = best_newton("off")
    chord_result, newton_chord = best_newton("chord")
    newton_speedup = newton_off / newton_chord
    probe = np.linspace(1e-3, 55e-3, 40)
    deviation = 0.0
    for signal in off_result.signals():
        ref = off_result.sample(signal, probe)
        scale = max(float(np.max(np.abs(ref))), 1e-30)
        deviation = max(deviation, float(np.max(np.abs(
            chord_result.sample(signal, probe) - ref))) / scale)
    lines.append(f"figure-5 Newton loop (off)     : {newton_off * 1e3:8.1f} ms "
                 f"({off_result.statistics['factorizations']} factorizations)")
    lines.append(f"figure-5 Newton loop (chord)   : {newton_chord * 1e3:8.1f} ms "
                 f"({chord_result.statistics['factorizations']} factorizations, "
                 f"{chord_result.statistics['chord_iterations']} chord iters)")
    lines.append(f"transient Newton speedup       : {newton_speedup:8.2f} x "
                 f"(floor {TRANSIENT_NEWTON_FLOOR:.1f}x)")
    lines.append(f"chord worst relative deviation : {deviation:.2e}")
    if check:
        # Deterministic gate: chord must actually be riding factorizations.
        off_factorizations = off_result.statistics["factorizations"]
        chord_factorizations = chord_result.statistics["factorizations"]
        if chord_factorizations * 4 > off_factorizations \
                or chord_result.statistics["chord_iterations"] == 0:
            raise AssertionError(
                f"chord-Newton reuse regressed: {chord_factorizations} "
                f"factorizations vs {off_factorizations} without reuse "
                "(expected at least a 4x reduction)")
        if deviation > 1e-6:
            raise AssertionError(
                f"chord-Newton deviates from full Newton by {deviation:.2e} "
                "(limit 1e-6) on the figure-5 transient")

    # ------------------------------------------- step-chord reuse variant
    step_result = _figure5_transient("chord", step_chord_reuse=True)
    step_stats = step_result.statistics
    step_deviation = 0.0
    for signal in off_result.signals():
        ref = off_result.sample(signal, probe)
        scale = max(float(np.max(np.abs(ref))), 1e-30)
        step_deviation = max(step_deviation, float(np.max(np.abs(
            step_result.sample(signal, probe) - ref))) / scale)
    lines.append(f"figure-5 chord + step reuse    : "
                 f"{step_stats['factorizations']} factorizations "
                 f"({step_stats['step_chord_reuses']} step reuses), "
                 f"deviation {step_deviation:.2e}")
    if check:
        if step_stats["factorizations"] > \
                chord_result.statistics["factorizations"]:
            raise AssertionError(
                "step_chord_reuse did not reduce chord factorizations "
                f"({step_stats['factorizations']} vs "
                f"{chord_result.statistics['factorizations']})")
        # Step reuse follows its own LTE trajectory; the contract is a few
        # times reltol, not the bit-level agreement of historical chord.
        if step_deviation > 1e-2:
            raise AssertionError(
                f"chord step reuse deviates from full Newton by "
                f"{step_deviation:.2e} (limit 1e-2) on the figure-5 transient")
        if check_wall_clock and newton_speedup < TRANSIENT_NEWTON_FLOOR:
            raise AssertionError(
                f"chord-Newton reuse regressed: {newton_speedup:.2f}x < "
                f"{TRANSIENT_NEWTON_FLOOR:.1f}x floor on the figure-5 "
                "transient Newton loop")

    # --------------------------------------------------------- AC sweep
    circuit = _ac_ladder()
    frequencies = frequency_grid(1e3, 1e8, 40)  # 201 points over 5 decades
    operating_point = OperatingPointAnalysis(circuit).run()

    def sweep(policy: str):
        analysis = ACAnalysis(circuit, frequencies,
                              SimulationOptions(jacobian_reuse=policy))
        return analysis, analysis.run(operating_point)

    (_, ac_reference), t_direct = _best_of(repetitions, lambda: sweep("off"))
    (cached_analysis, ac_fast), t_cached = _best_of(repetitions,
                                                    lambda: sweep("auto"))
    ac_speedup = t_direct / t_cached
    ac_deviation = 0.0
    for signal in ac_reference.signals():
        ref = np.asarray(ac_reference[signal])
        scale = max(float(np.max(np.abs(ref))), 1e-30)
        ac_deviation = max(ac_deviation, float(np.max(np.abs(
            np.asarray(ac_fast[signal]) - ref))) / scale)
    lines.append(f"AC sweep, {frequencies.size} points (off) : "
                 f"{t_direct * 1e3:8.1f} ms (re-stamped per frequency)")
    lines.append(f"AC sweep, {frequencies.size} points (fast): "
                 f"{t_cached * 1e3:8.1f} ms (mode={cached_analysis.sweep_mode})")
    lines.append(f"AC sweep speedup               : {ac_speedup:8.2f} x "
                 f"(floor {AC_SWEEP_FLOOR:.1f}x)")
    lines.append(f"AC worst relative deviation    : {ac_deviation:.2e}")
    if check:
        if cached_analysis.sweep_mode != "cached":
            raise AssertionError(
                "the AC sweep fell back to per-frequency assembly on a "
                "linear circuit; the G/C/S decomposition should have verified")
        if ac_deviation > 1e-9:
            raise AssertionError(
                f"cached AC sweep deviates by {ac_deviation:.2e} "
                "(limit 1e-9) from direct assembly")
        if check_wall_clock and ac_speedup < AC_SWEEP_FLOOR:
            raise AssertionError(
                f"AC value-update sweep regressed: {ac_speedup:.2f}x < "
                f"{AC_SWEEP_FLOOR:.1f}x floor on the {frequencies.size}-point "
                "linear sweep")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single repetition, deterministic gates only "
                             "(CI smoke mode)")
    parser.add_argument("--no-check", action="store_true",
                        help="report only; skip the regression raises")
    args = parser.parse_args(argv)
    repetitions = 1 if args.smoke else 3
    lines = run(repetitions, check=not args.no_check,
                check_wall_clock=not args.smoke)
    print("==== repro.linalg factorization-reuse benchmark ====")
    for line in lines:
        print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
