"""Campaign engine throughput: serial vs pool backends, cold vs warm cache.

The workload is the paper's own: a 64-point boundary-condition grid
(8 displacements x 8 voltages) of FE extraction solves, the same sweep the
PXT flow iterates.  The benchmark measures points/sec for

* the serial backend (the seed's nested-loop behaviour),
* the multiprocessing pool backend (one worker per CPU),
* a cold disk cache (every point computed and stored), and
* a warm rerun (every point served from the cache),

and pins two correctness properties: the warm rerun is >= 10x faster than
the cold run, and the campaign-driven extraction reproduces the direct
``solve_point`` loop to 1e-9.  The pool-beats-serial assertion only applies
on multi-core hosts -- on a single CPU a process pool cannot win, so there
the numbers are reported without the assertion.

A second benchmark pins the batched backend: a 256-point Monte-Carlo
operating-point campaign over a nonlinear diode ladder must run **>= 5x
more points/s** with ``backend="batch"`` (block-factorized lockstep Newton)
than serially, at per-point parity within 1e-12.  Unlike the pool
comparison this floor holds on a single CPU -- the win is vectorization,
not parallelism -- so CI enforces it unconditionally.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import report
from repro.campaign import (CampaignRunner, CircuitEvaluator, MonteCarlo,
                            Normal, ResultCache)
from repro.circuit import Circuit
from repro.pxt import ParameterExtractor
from repro.system import PAPER_PARAMETERS

GRID_POINTS = 64  # 8 x 8; the acceptance floor for the pool comparison

BATCH_POINTS = 256          # Monte-Carlo samples for the batched comparison
BATCH_SECTIONS = 12         # diode-ladder sections (49 MNA unknowns)
BATCH_SPEEDUP_FLOOR = 5.0   # batch must deliver >= this many x serial


def _extractor() -> ParameterExtractor:
    return ParameterExtractor(
        area=PAPER_PARAMETERS.area, gap=PAPER_PARAMETERS.gap,
        epsilon_r=PAPER_PARAMETERS.epsilon_r, nx=20, ny=14)


def _grid(extractor):
    displacements = [(-0.3 + 0.6 * i / 7.0) * extractor.gap for i in range(8)]
    voltages = [2.0 + 13.0 * i / 7.0 for i in range(8)]
    return displacements, voltages


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_campaign_throughput(benchmark, tmp_path):
    extractor = _extractor()
    displacements, voltages = _grid(extractor)
    spec = extractor.campaign_spec(displacements, voltages)
    evaluator = extractor.campaign_evaluator()
    assert len(spec) == GRID_POINTS
    cpus = os.cpu_count() or 1

    # --- serial backend (timed by the benchmark harness as the baseline) ---
    serial_result = benchmark.pedantic(
        lambda: CampaignRunner(backend="serial").run(spec, evaluator),
        rounds=1, iterations=1)
    _, serial_s = _timed(
        lambda: CampaignRunner(backend="serial").run(spec, evaluator))

    # --- pool backend -------------------------------------------------------
    pool_runner = CampaignRunner(backend="pool", processes=cpus)
    pool_result, pool_s = _timed(lambda: pool_runner.run(spec, evaluator))

    # --- cold vs warm cache -------------------------------------------------
    cache = ResultCache(tmp_path / "campaign-cache")
    cached_runner = CampaignRunner(cache=cache)
    cold_result, cold_s = _timed(lambda: cached_runner.run(spec, evaluator))
    warm_result, warm_s = _timed(lambda: cached_runner.run(spec, evaluator))

    # --- parity with the seed's direct nested-loop extraction ---------------
    direct = [extractor.solve_point(x, v)
              for x in displacements for v in voltages]
    worst = 0.0
    for row, want in zip(serial_result, direct):
        assert row.params["displacement"] == want.displacement
        assert row.params["voltage"] == want.voltage
        for name, reference in (("capacitance", want.capacitance),
                                ("force", want.force),
                                ("charge", want.charge)):
            scale = max(abs(reference), 1e-30)
            worst = max(worst, abs(row[name] - reference) / scale)
    assert worst < 1e-9
    assert pool_result.to_rows() == serial_result.to_rows()
    assert warm_result.to_rows() == cold_result.to_rows()
    assert warm_result.num_cached == GRID_POINTS

    lines = [
        f"grid: {GRID_POINTS} boundary-condition points "
        f"(8 displacements x 8 voltages, {extractor.nx}x{extractor.ny} mesh)",
        f"serial backend     : {serial_s:8.3f} s  "
        f"({GRID_POINTS / serial_s:7.1f} points/s)",
        f"pool backend ({cpus:2d}p) : {pool_s:8.3f} s  "
        f"({GRID_POINTS / pool_s:7.1f} points/s)",
        f"cold disk cache    : {cold_s:8.3f} s  "
        f"({GRID_POINTS / cold_s:7.1f} points/s)",
        f"warm disk cache    : {warm_s:8.3f} s  "
        f"({GRID_POINTS / warm_s:7.1f} points/s, {cold_s / warm_s:.0f}x cold)",
        f"campaign vs direct solve_point parity: {worst:.2e} (<= 1e-9)",
    ]
    if cpus > 1:
        lines.append(f"pool speedup over serial: {serial_s / pool_s:.2f}x")
        assert pool_s < serial_s, (
            f"pool backend ({pool_s:.3f} s) should beat serial "
            f"({serial_s:.3f} s) on {cpus} CPUs")
    else:
        lines.append("pool speedup over serial: n/a "
                     "(single-CPU host; fork overhead only)")
    report("Campaign throughput: 64-point PXT grid", lines)

    assert warm_s * 10.0 <= cold_s, (
        f"warm cache ({warm_s:.4f} s) should be >= 10x faster than cold "
        f"({cold_s:.4f} s)")


def _build_ladder(params: dict) -> Circuit:
    """Nonlinear diode ladder; every device stamps batch-vectorized."""
    circuit = Circuit("ladder")
    circuit.voltage_source("VS", "n0", "0", params.get("vdd", 5.0))
    for i in range(BATCH_SECTIONS):
        resistance = params.get("rscale", 100.0) if i == 0 else 100.0
        circuit.resistor(f"R{i}", f"n{i}", f"n{i + 1}", resistance)
        circuit.diode(f"D{i}", f"n{i + 1}", "0")
    return circuit


def test_batched_backend_throughput(benchmark):
    spec = MonteCarlo({"vdd": Normal(5.0, 0.5),
                       "rscale": Normal(100.0, 10.0)},
                      samples=BATCH_POINTS, seed=42)
    serial_evaluator = CircuitEvaluator(_build_ladder)
    batch_evaluator = CircuitEvaluator(
        _build_ladder,
        param_map={"vdd": "VS.dc", "rscale": "R0.resistance"})

    batch_result = benchmark.pedantic(
        lambda: CampaignRunner(backend="batch").run(spec, batch_evaluator),
        rounds=1, iterations=1)
    _, batch_s = _timed(
        lambda: CampaignRunner(backend="batch").run(spec, batch_evaluator))
    serial_result, serial_s = _timed(
        lambda: CampaignRunner(backend="serial").run(spec, serial_evaluator))

    # --- parity: every point within 1e-12, no failures in either path ------
    worst = 0.0
    for a, b in zip(serial_result, batch_result):
        assert a.error is None and b.error is None
        for name, value in a.outputs.items():
            scale = max(1.0, abs(value))
            worst = max(worst, abs(b.outputs[name] - value) / scale)
    assert worst <= 1e-12, f"batched results drifted: {worst:.2e}"

    speedup = serial_s / batch_s
    report("Batched campaign throughput: 256-point Monte-Carlo op", [
        f"circuit: {BATCH_SECTIONS}-section diode ladder, "
        f"{BATCH_POINTS} Monte-Carlo samples (seed 42)",
        f"serial backend : {serial_s:8.3f} s  "
        f"({BATCH_POINTS / serial_s:7.1f} points/s)",
        f"batch backend  : {batch_s:8.3f} s  "
        f"({BATCH_POINTS / batch_s:7.1f} points/s)",
        f"batch speedup over serial: {speedup:.1f}x "
        f"(floor {BATCH_SPEEDUP_FLOOR:.0f}x)",
        f"worst per-point relative difference: {worst:.2e} (<= 1e-12)",
    ])
    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        f"batched backend ({batch_s:.3f} s) should be >= "
        f"{BATCH_SPEEDUP_FLOOR:.0f}x faster than serial ({serial_s:.3f} s); "
        f"measured {speedup:.2f}x")
