"""Table 1 -- generalized variables for different physical domains.

Regenerates the rows of Table 1 from the nature registry and verifies the
defining relations (flow = d state/dt, power = effort * flow) numerically for
each power-conjugate domain.
"""

from __future__ import annotations

import numpy as np

from conftest import report
from repro.natures import (
    ELECTRICAL,
    HYDRAULIC,
    MECHANICAL_ROTATION,
    MECHANICAL_TRANSLATION,
    GeneralizedVariables,
)

DOMAINS = (MECHANICAL_TRANSLATION, MECHANICAL_ROTATION, ELECTRICAL, HYDRAULIC)


def _build_table():
    rows = []
    t = np.linspace(0.0, 1e-3, 2001)
    for nature in DOMAINS:
        port = GeneralizedVariables(
            nature, t,
            effort=2.0 * np.cos(2.0 * np.pi * 5e3 * t),
            flow=0.5 * np.cos(2.0 * np.pi * 5e3 * t))
        # flow == d(state)/dt within numerical tolerance
        state_derivative = np.gradient(port.state, t)
        flow_error = float(np.max(np.abs(state_derivative[5:-5] - port.flow[5:-5])))
        mean_power = float(np.mean(port.power))
        rows.append((nature, flow_error, mean_power))
    return rows


def test_table1_generalized_variables(benchmark):
    rows = benchmark(_build_table)
    lines = [
        f"{'domain':<24} {'effort':<18} {'flow':<18} {'state':<14} "
        f"{'d(state)/dt - flow':<20} {'mean power [W]'}"
    ]
    for nature, flow_error, mean_power in rows:
        lines.append(
            f"{nature.name:<24} {nature.across_name:<18} {nature.through_name:<18} "
            f"{nature.state_name:<14} {flow_error:<20.3e} {mean_power:.3f}")
        assert flow_error < 1e-2
        assert abs(mean_power - 0.5) < 0.01  # Vm*Im/2 for in-phase sinusoids
        assert nature.is_power_conjugate
    report("Table 1: generalized variables per domain", lines)
