"""Factorization caching keyed on matrix fingerprints.

A *fingerprint* is an exact content hash of a matrix (values, dtype, shape
and -- for sparse matrices -- the sparsity structure).  Two matrices with the
same fingerprint are numerically identical, so a factorization computed for
one can answer right-hand sides for the other bit-for-bit.  That exactness
is what lets the analyses reuse factorizations *by default* without changing
any result: a linear circuit stamps the same Jacobian on every Newton
iteration of every fixed-step time point, so the whole transient runs on a
single LU.

:class:`FactorizationCache` is a small LRU over such fingerprints.  It is
deliberately tiny (a handful of entries): the use cases are "the same matrix
again" (chord iterations, fixed-step transients, repeated campaign points)
and "alternating between two step sizes", not a general matrix store.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict

import numpy as np
import scipy.sparse as sp

from .. import telemetry
from ..errors import LinAlgError
from . import metrics
from .solvers import Factorization, FactorizedSolver

__all__ = ["matrix_fingerprint", "FactorizationCache"]


def matrix_fingerprint(matrix) -> str:
    """Exact content hash of a dense or sparse matrix.

    Dense arrays hash their raw bytes; sparse matrices hash the CSR/CSC
    value, index and pointer arrays plus the format, so a structural change
    fingerprints differently even when the stored values coincide.
    """
    digest = hashlib.sha256()
    if sp.issparse(matrix):
        if matrix.format not in ("csr", "csc"):
            matrix = matrix.tocsr()
        digest.update(f"{matrix.format}:{matrix.shape}:{matrix.data.dtype}".encode())
        digest.update(np.ascontiguousarray(matrix.indptr).tobytes())
        digest.update(np.ascontiguousarray(matrix.indices).tobytes())
        digest.update(np.ascontiguousarray(matrix.data).tobytes())
    else:
        matrix = np.asarray(matrix)
        digest.update(f"dense:{matrix.shape}:{matrix.dtype}".encode())
        digest.update(np.ascontiguousarray(matrix).tobytes())
    return digest.hexdigest()


class FactorizationCache:
    """LRU cache of :class:`~repro.linalg.solvers.Factorization` handles.

    Parameters
    ----------
    solver:
        The :class:`FactorizedSolver` used on misses (a default-configured
        one when omitted).
    maxsize:
        Number of factorizations kept; least-recently-used entries are
        evicted beyond it.
    """

    def __init__(self, solver: FactorizedSolver | None = None,
                 maxsize: int = 8) -> None:
        if maxsize < 1:
            raise LinAlgError("FactorizationCache needs maxsize >= 1")
        self.solver = solver or FactorizedSolver()
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[str, Factorization] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def factorize(self, matrix, fingerprint: str | None = None) -> Factorization:
        """A factorization of ``matrix``, reused when the fingerprint is known.

        ``fingerprint`` may be passed when the caller has already computed
        it (e.g. to decide whether a refactor is due).
        """
        if fingerprint is None:
            # Hashing cost is part of the cache's overhead story -- surface
            # it in profiles so "cache on" vs "cache off" is explainable.
            t0 = time.perf_counter() if telemetry.enabled() else None
            key = matrix_fingerprint(matrix)
            if t0 is not None:
                telemetry.registry.observe("linalg.fingerprint_s",
                                           time.perf_counter() - t0)
        else:
            key = fingerprint
        handle = self._entries.get(key)
        if handle is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            metrics.record("factorization_cache_hits")
            return handle
        self.misses += 1
        metrics.record("factorization_cache_misses")
        handle = self.solver.factorize(matrix)
        self._entries[key] = handle
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            metrics.record("factorization_cache_evictions")
        return handle

    def solve(self, matrix, rhs) -> np.ndarray:
        """Cached factor + back-substitution of one right-hand side."""
        return self.factorize(matrix).solve(rhs)

    def clear(self) -> None:
        """Drop every cached factorization and reset the counters."""
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (f"FactorizationCache({len(self._entries)}/{self.maxsize} entries, "
                f"{self.hits} hits / {self.misses} misses)")
