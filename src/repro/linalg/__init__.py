"""repro.linalg -- the shared factorization-caching linear-solver core.

One subsystem owns every ``A x = b`` in the reproduction:

* :class:`~repro.linalg.solvers.FactorizedSolver` abstracts the backends
  (dense LAPACK LU, SuperLU, Jacobi-preconditioned CG with direct fallback)
  behind :class:`~repro.linalg.solvers.Factorization` handles -- factor
  once, back-substitute many times,
* :class:`~repro.linalg.cache.FactorizationCache` keys those handles on
  exact matrix fingerprints so an unchanged matrix (linear circuit, fixed
  transient step, repeated campaign point) is never factored twice,
* :class:`~repro.linalg.structure.StructureCache` caches the COO->CSR
  reduction of a repeated triplet assembly so per-iteration sparse assembly
  is a value update instead of a sort-and-deduplicate rebuild.

The circuit analyses (:mod:`repro.circuit.analysis`), the FE solvers
(:mod:`repro.fem`) and the reduced-order models (:mod:`repro.rom`) all
route through here; see the README architecture section for the reuse
semantics exposed on :class:`~repro.circuit.analysis.options.SimulationOptions`.
"""

from __future__ import annotations

from . import metrics
from .batch import (BATCH_BACKENDS, BatchedDenseLU, BatchedFactorization,
                    BatchedSparseLU, batched_factorize)
from .cache import FactorizationCache, matrix_fingerprint
from .sensitivity import (SENSITIVITY_METHODS, SensitivityResult,
                          SpectralSensitivities, solve_sensitivities,
                          sweep_spectral_sensitivities)
from .solvers import BACKENDS, Factorization, FactorizedSolver
from .structure import StructureCache

__all__ = [
    "BACKENDS",
    "BATCH_BACKENDS",
    "SENSITIVITY_METHODS",
    "BatchedDenseLU",
    "BatchedFactorization",
    "BatchedSparseLU",
    "Factorization",
    "FactorizedSolver",
    "FactorizationCache",
    "SensitivityResult",
    "SpectralSensitivities",
    "StructureCache",
    "batched_factorize",
    "matrix_fingerprint",
    "metrics",
    "solve_sensitivities",
    "sweep_spectral_sensitivities",
]
