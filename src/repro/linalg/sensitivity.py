"""Implicit-function sensitivity solves shared by every analysis layer.

For a converged implicit solve ``F(x, p) = 0`` with Jacobian ``J = dF/dx``
and a linear output ``y_m = g_m . x``, the implicit-function theorem gives

.. math::

    \\frac{dy_m}{dp_k} = - g_m^T J^{-1} \\frac{\\partial F}{\\partial p_k}.

Two evaluation orders exist, and both reuse the *forward* factorization of
``J`` (no new factorization is ever paid):

* **adjoint** -- one *transposed* back-substitution per output
  (``lambda_m = J^{-T} g_m``, then ``dy_m/dp = -lambda_m^T dF/dp``):
  the right choice when outputs are few and parameters many,
* **direct** -- one forward back-substitution per parameter
  (``s_k = -J^{-1} dF/dp_k``, then ``dy/dp_k = G s_k``): the right choice
  when parameters are few and outputs many.

``"auto"`` picks whichever needs fewer back-substitutions.  The circuit,
FEM and ROM sensitivity entry points all funnel through
:func:`solve_sensitivities`; the :class:`SensitivityResult` container they
return is the cross-layer protocol the optimization layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from ..errors import LinAlgError
from .solvers import Factorization, FactorizedSolver

__all__ = ["SENSITIVITY_METHODS", "SensitivityResult",
           "SpectralSensitivities", "solve_sensitivities",
           "sweep_spectral_sensitivities"]

SENSITIVITY_METHODS = ("auto", "adjoint", "direct")


def solve_sensitivities(factorization: Factorization, selectors: np.ndarray,
                        dres_dp: np.ndarray, method: str = "auto",
                        stats: dict | None = None) -> np.ndarray:
    """``(M, P)`` output sensitivities of a factored implicit solve.

    Parameters
    ----------
    factorization:
        The (forward) factorization of the Jacobian ``dF/dx`` at the
        converged solution.
    selectors:
        ``(M, n)`` output rows ``g_m`` (for plain unknown outputs these are
        unit vectors).
    dres_dp:
        ``(n, P)`` residual parameter derivatives ``dF/dp`` at the solution.
    method:
        ``"adjoint"``, ``"direct"`` or ``"auto"`` (fewest back-substitutions).
    stats:
        Optional dict whose ``"adjoint_solves"`` / ``"direct_solves"``
        counters are bumped by the number of transposed / forward
        back-substitutions performed.
    """
    if method not in SENSITIVITY_METHODS:
        raise LinAlgError(
            f"unknown sensitivity method {method!r} "
            f"(use one of {SENSITIVITY_METHODS})")
    selectors = np.atleast_2d(np.asarray(selectors))
    dres_dp = np.asarray(dres_dp)
    if dres_dp.ndim != 2:
        raise LinAlgError("dres_dp must be a (n, P) matrix")
    n = factorization.shape[0]
    if selectors.shape[1] != n or dres_dp.shape[0] != n:
        raise LinAlgError(
            f"selectors {selectors.shape} / dres_dp {dres_dp.shape} do not "
            f"match the factored system size {n}")
    num_outputs = selectors.shape[0]
    num_params = dres_dp.shape[1]
    if method == "auto":
        method = "adjoint" if num_outputs <= num_params else "direct"
    complex_result = np.iscomplexobj(dres_dp) or np.iscomplexobj(selectors)
    dtype = complex if complex_result else float
    out = np.zeros((num_outputs, num_params), dtype=dtype)
    if method == "adjoint":
        for m in range(num_outputs):
            adjoint = factorization.solve_transposed(selectors[m])
            out[m] = -(adjoint @ dres_dp)
        if stats is not None:
            stats["adjoint_solves"] = stats.get("adjoint_solves", 0) + num_outputs
    else:
        solution = factorization.solve(-dres_dp)
        out[:] = selectors @ solution
        if stats is not None:
            stats["direct_solves"] = stats.get("direct_solves", 0) + num_params
    return out


def sweep_spectral_sensitivities(
        frequencies: np.ndarray, selectors: np.ndarray,
        system_at: Callable[[int, float], tuple[np.ndarray, np.ndarray]],
        dres_at: Callable[[int, float, np.ndarray], np.ndarray],
        method: str = "auto", solver: FactorizedSolver | None = None,
        stats: dict | None = None, solve_counter: str | None = None,
        solve_error: Callable[[float, Exception], Exception] | None = None,
) -> tuple[np.ndarray, np.ndarray, str]:
    """Run the per-frequency implicit-solve sensitivity sweep.

    This is the skeleton shared by the circuit AC sweep, the FE harmonic
    solver and the ROM harmonic outputs: at each frequency, assemble the
    complex system ``Y(omega) x = b(omega)``, factor it once, solve the
    forward excitation, evaluate the residual parameter derivatives at the
    solution and push them through :func:`solve_sensitivities` on the same
    factorization.

    Parameters
    ----------
    frequencies:
        ``(F,)`` sweep frequencies in Hz.
    selectors:
        ``(M, n)`` output rows ``g_m``.
    system_at:
        ``(index, omega) -> (matrix, rhs)`` assembling the complex system at
        one frequency (``omega = 2*pi*frequencies[index]``).
    dres_at:
        ``(index, omega, solution) -> (n, P)`` residual parameter
        derivatives ``dF/dp`` at the solved point.
    method:
        Sensitivity method forwarded to :func:`solve_sensitivities`.
    solver:
        Factorization backend; a dense :class:`FactorizedSolver` by default.
        Callers that want factorization counts read ``solver.factorizations``
        after the sweep.
    stats:
        Optional dict accumulating ``adjoint_solves`` / ``direct_solves``
        (and ``solve_counter``, if given) across the sweep.
    solve_counter:
        Optional ``stats`` key bumped once per successful frequency solve
        (e.g. the FE layer's ``"field_solves"``).
    solve_error:
        Optional ``(frequency, exc) -> Exception`` factory used to re-brand
        a :class:`~repro.errors.LinAlgError` from the factor/solve step into
        the caller's domain error.  Without it the original error propagates.

    Returns
    -------
    ``(values, matrix, resolved)`` -- the ``(F, M)`` complex output phasors,
    the ``(F, M, P)`` complex phasor derivatives and the method that
    actually ran (``"adjoint"`` or ``"direct"``).
    """
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.size == 0:
        raise LinAlgError("spectral sensitivity sweep needs at least one "
                          "frequency")
    selectors = np.atleast_2d(np.asarray(selectors))
    if solver is None:
        solver = FactorizedSolver("dense")
    num_outputs = selectors.shape[0]
    values = np.zeros((frequencies.size, num_outputs), dtype=complex)
    matrix: np.ndarray | None = None
    resolved = method
    for f, frequency in enumerate(frequencies):
        omega = 2.0 * np.pi * float(frequency)
        try:
            sys_matrix, rhs = system_at(f, omega)
            factorization = solver.factorize(sys_matrix)
            solution = factorization.solve(rhs)
        except LinAlgError as exc:
            if solve_error is not None:
                raise solve_error(float(frequency), exc) from exc
            raise
        if stats is not None and solve_counter is not None:
            stats[solve_counter] = stats.get(solve_counter, 0) + 1
        values[f] = selectors @ solution
        dres = np.asarray(dres_at(f, omega, solution))
        if matrix is None:
            matrix = np.zeros(
                (frequencies.size, num_outputs, dres.shape[1]), dtype=complex)
        point_stats: dict = {}
        matrix[f] = solve_sensitivities(factorization, selectors, dres,
                                        method=method, stats=point_stats)
        if stats is not None:
            for key in ("adjoint_solves", "direct_solves"):
                stats[key] = stats.get(key, 0) + point_stats.get(key, 0)
        resolved = "adjoint" if point_stats.get("adjoint_solves") else "direct"
    assert matrix is not None
    return values, matrix, resolved


@dataclass
class SensitivityResult:
    """Exact output/parameter sensitivities of one implicit solve.

    This is the cross-layer sensitivity protocol: circuit operating points,
    FE solves and ROM outputs all return one, and
    :class:`repro.optim.objective.Objective` consumes the same shape through
    the evaluator-side ``evaluate_with_gradient`` protocol.

    Attributes
    ----------
    outputs:
        Output names, in row order of :attr:`matrix`.
    params:
        Parameter names, in column order of :attr:`matrix`.
    values:
        ``(M,)`` output values at the solution.
    matrix:
        ``(M, P)`` derivatives ``d output_m / d param_k``.
    method:
        ``"adjoint"`` or ``"direct"`` -- what actually ran.
    stats:
        Solve instrumentation (``newton_solves``, ``adjoint_solves``,
        ``direct_solves``, ``factorizations``, ...).
    """

    outputs: tuple[str, ...]
    params: tuple[str, ...]
    values: np.ndarray
    matrix: np.ndarray
    method: str = "adjoint"
    stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.outputs = tuple(self.outputs)
        self.params = tuple(self.params)
        self.values = np.asarray(self.values)
        self.matrix = np.atleast_2d(np.asarray(self.matrix))
        if self.matrix.shape != (len(self.outputs), len(self.params)):
            raise LinAlgError(
                f"sensitivity matrix has shape {self.matrix.shape}, expected "
                f"({len(self.outputs)}, {len(self.params)})")

    # ------------------------------------------------------------------ access
    def _output_index(self, output: str) -> int:
        try:
            return self.outputs.index(output)
        except ValueError:
            known = ", ".join(self.outputs)
            raise KeyError(
                f"unknown output {output!r}; available: {known}") from None

    def value(self, output: str):
        """Output value at the solution."""
        return self.values[self._output_index(output)]

    def gradient(self, output: str) -> dict[str, float]:
        """``{param: d output / d param}`` for one output."""
        row = self.matrix[self._output_index(output)]
        return {name: row[k] for k, name in enumerate(self.params)}

    def derivative(self, output: str, param: str):
        """One entry ``d output / d param``."""
        row = self.matrix[self._output_index(output)]
        try:
            return row[self.params.index(param)]
        except ValueError:
            known = ", ".join(self.params)
            raise KeyError(
                f"unknown parameter {param!r}; available: {known}") from None

    def as_dict(self) -> dict[str, dict[str, float]]:
        """``{output: {param: derivative}}`` for every output."""
        return {name: self.gradient(name) for name in self.outputs}

    def values_dict(self) -> Mapping[str, float]:
        """``{output: value}`` at the solution."""
        return {name: self.values[m] for m, name in enumerate(self.outputs)}

    def __repr__(self) -> str:
        return (f"SensitivityResult({len(self.outputs)} outputs x "
                f"{len(self.params)} params, method={self.method!r})")


class SpectralSensitivities:
    """Per-frequency complex sensitivities of a spectral (harmonic/AC) solve.

    ``matrix[f]`` is the complex ``(M, P)`` derivative of the output phasors
    at frequency index ``f``; :meth:`magnitude_matrix` converts to
    derivatives of ``|y|`` -- the quantity resonance/level specifications
    differentiate.  Shared by the circuit AC sweep, the FE harmonic solver
    and the ROM harmonic outputs.
    """

    def __init__(self, frequencies: np.ndarray, outputs, params,
                 values: np.ndarray, matrix: np.ndarray, method: str,
                 stats: dict) -> None:
        self.frequencies = np.asarray(frequencies, dtype=float)
        self.outputs = tuple(outputs)
        self.params = tuple(params)
        #: ``(F, M)`` complex output phasors.
        self.values = np.asarray(values, dtype=complex)
        #: ``(F, M, P)`` complex phasor derivatives.
        self.matrix = np.asarray(matrix, dtype=complex)
        self.method = method
        self.stats = dict(stats)
        expected = (self.frequencies.size, len(self.outputs),
                    len(self.params))
        if self.matrix.shape != expected:
            raise LinAlgError(
                f"spectral sensitivity matrix has shape {self.matrix.shape}, "
                f"expected {expected}")

    def at(self, index: int) -> SensitivityResult:
        """The (complex) :class:`SensitivityResult` of one frequency point."""
        return SensitivityResult(self.outputs, self.params,
                                 self.values[index], self.matrix[index],
                                 method=self.method, stats=self.stats)

    def derivative(self, output: str, param: str) -> np.ndarray:
        """Complex ``d y / d param`` trace of one output over frequency."""
        m = self.outputs.index(output)
        k = self.params.index(param)
        return self.matrix[:, m, k]

    def magnitude(self, output: str) -> np.ndarray:
        """``|y|`` of one output over frequency."""
        return np.abs(self.values[:, self.outputs.index(output)])

    def magnitude_matrix(self) -> np.ndarray:
        """``(F, M, P)`` derivatives of the output *magnitudes*.

        ``d|y|/dp = Re(conj(y) * dy/dp) / |y|`` (zero-magnitude points
        produce zero derivative rather than NaN).
        """
        magnitude = np.abs(self.values)
        safe = np.where(magnitude == 0.0, 1.0, magnitude)
        return np.real(np.conj(self.values)[:, :, None] * self.matrix) \
            / safe[:, :, None]

    def magnitude_derivative(self, output: str, param: str) -> np.ndarray:
        """``d|y|/dp`` trace of one output over frequency."""
        m = self.outputs.index(output)
        k = self.params.index(param)
        phasor = self.values[:, m]
        magnitude = np.abs(phasor)
        safe = np.where(magnitude == 0.0, 1.0, magnitude)
        return np.real(np.conj(phasor) * self.matrix[:, m, k]) / safe

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.frequencies.size} frequencies, "
                f"{len(self.outputs)} outputs x {len(self.params)} params)")
