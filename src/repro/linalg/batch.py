"""Batched factorizations: factor and back-substitute B systems at once.

A parameter campaign solves the *same* structure B times with different
values.  Serially that is B independent ``lu_factor``/``lu_solve`` round
trips through Python; batched, the dense backend hands LAPACK one
``(B, n, n)`` stack (``getrf``/``getrs`` loop entirely in compiled code)
and the sparse backend performs the SuperLU symbolic analysis (column
ordering) once and reuses it for every numeric factorization.

Failure stays per-lane: a singular or non-finite lane never raises -- it is
flagged in :attr:`BatchedFactorization.failed` and its solutions come back
as NaN rows, so the batched Newton driver can convert exactly that point to
the serial error path while the rest of the batch continues.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import LinAlgError
from . import metrics

__all__ = ["BatchedFactorization", "BatchedDenseLU", "BatchedSparseLU",
           "batched_factorize", "BATCH_BACKENDS"]

BATCH_BACKENDS = ("auto", "dense", "superlu")


class BatchedFactorization:
    """Handle to B factored systems sharing one structure.

    Attributes
    ----------
    batch, n:
        Number of lanes and system size.
    failed:
        Boolean ``(B,)`` mask of lanes whose factorization was singular or
        non-finite.  Failed lanes produce NaN solution rows instead of
        raising; the caller decides how to retire them.
    """

    backend = "abstract"

    def __init__(self, batch: int, n: int) -> None:
        self.batch = int(batch)
        self.n = int(n)
        self.failed = np.zeros(self.batch, dtype=bool)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute a ``(B, n)`` right-hand-side block."""
        raise NotImplementedError

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute ``A_b^T x_b = rhs_b`` per lane (same factors)."""
        raise NotImplementedError

    def _check_rhs(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != (self.batch, self.n):
            raise LinAlgError(
                f"batched right-hand side has shape {rhs.shape}, expected "
                f"({self.batch}, {self.n})")
        return rhs

    def _mask_failed(self, solutions: np.ndarray) -> np.ndarray:
        if self.failed.any():
            solutions[self.failed] = np.nan
        return solutions


class BatchedDenseLU(BatchedFactorization):
    """Stacked LAPACK LU of a ``(B, n, n)`` array.

    One ``lu_factor`` call factors every lane (SciPy broadcasts ``getrf``
    over the leading axis); singular lanes are detected from zero or
    non-finite U pivots afterwards instead of letting LAPACK raise, so one
    bad lane cannot kill the batch.
    """

    backend = "dense"

    def __init__(self, matrices: np.ndarray) -> None:
        matrices = np.asarray(matrices, dtype=float)
        if matrices.ndim != 3 or matrices.shape[1] != matrices.shape[2]:
            raise LinAlgError(
                f"batched dense input must have shape (B, n, n), got "
                f"{matrices.shape}")
        super().__init__(matrices.shape[0], matrices.shape[1])
        with warnings.catch_warnings():
            # Exactly singular lanes emit a LinAlgWarning; they are handled
            # through the per-lane pivot check below.
            warnings.simplefilter("ignore")
            try:
                self._lu, self._piv = la.lu_factor(matrices, check_finite=False)
            except Exception:
                # Per-lane fallback: keeps old SciPy (no stacked getrf) and
                # pathological inputs on the same per-lane-failure contract.
                self._lu, self._piv = self._factor_lanes(matrices)
        diag = np.diagonal(self._lu, axis1=1, axis2=2)
        self.failed = np.any(diag == 0.0, axis=1) \
            | ~np.all(np.isfinite(diag), axis=1)

    @staticmethod
    def _factor_lanes(matrices: np.ndarray):
        n = matrices.shape[1]
        lus, pivs = [], []
        for lane in matrices:
            try:
                lu, piv = la.lu_factor(lane, check_finite=False)
            except Exception:
                lu = np.full((n, n), np.nan)
                piv = np.arange(n, dtype=np.int32)
            lus.append(lu)
            pivs.append(piv)
        return np.stack(lus), np.stack(pivs)

    def _solve(self, rhs: np.ndarray, trans: int) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        with warnings.catch_warnings():
            # Zero pivots of failed lanes divide by zero inside getrs; the
            # rows are overwritten with NaN below.
            warnings.simplefilter("ignore")
            try:
                solutions = la.lu_solve((self._lu, self._piv), rhs[:, :, None],
                                        trans=trans, check_finite=False)[:, :, 0]
            except Exception:
                solutions = np.stack([
                    la.lu_solve((self._lu[b], self._piv[b]), rhs[b],
                                trans=trans, check_finite=False)
                    for b in range(self.batch)])
        return self._mask_failed(solutions)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return self._solve(rhs, trans=0)

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        metrics.record("transpose_solves", self.batch)
        return self._solve(rhs, trans=1)


class BatchedSparseLU(BatchedFactorization):
    """B SuperLU numeric factorizations sharing one symbolic analysis.

    The first healthy lane runs the full ``splu`` (COLAMD column ordering +
    numeric factorization); its column permutation is then applied to every
    later lane, which is factored with ``permc_spec="NATURAL"`` -- the
    numeric work on the identically permuted matrix, without re-running the
    ordering.  The pattern is shared across lanes by construction (the
    campaign batches points with one :class:`~repro.linalg.StructureCache`
    pattern), so the reused ordering is the one COLAMD would have produced.
    """

    backend = "superlu"

    def __init__(self, matrices: Sequence) -> None:
        lanes = [sp.csc_matrix(m) for m in matrices]
        if not lanes:
            raise LinAlgError("batched sparse input must contain >= 1 matrix")
        n = lanes[0].shape[0]
        super().__init__(len(lanes), n)
        self._perm_c: np.ndarray | None = None
        self._lus: list[tuple[object, bool] | None] = []
        for b, lane in enumerate(lanes):
            if lane.shape != (n, n):
                raise LinAlgError("batched sparse lanes must share one shape")
            try:
                if self._perm_c is None:
                    lu = spla.splu(lane)
                    self._perm_c = np.asarray(lu.perm_c)
                    self._lus.append((lu, False))
                else:
                    lu = spla.splu(lane[:, self._perm_c],
                                   permc_spec="NATURAL")
                    self._lus.append((lu, True))
            except RuntimeError:
                self._lus.append(None)
                self.failed[b] = True

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        solutions = np.full((self.batch, self.n), np.nan)
        for b, entry in enumerate(self._lus):
            if entry is None:
                continue
            lu, permuted = entry
            if permuted:
                # lu factors A[:, perm]; its solution y satisfies
                # A x = b with x[perm] = y.
                y = lu.solve(rhs[b])
                solutions[b, self._perm_c] = y
            else:
                solutions[b] = lu.solve(rhs[b])
        return solutions

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        metrics.record("transpose_solves", self.batch)
        solutions = np.full((self.batch, self.n), np.nan)
        for b, entry in enumerate(self._lus):
            if entry is None:
                continue
            lu, permuted = entry
            if permuted:
                # (A[:, perm])^T z = b[perm]  <=>  A^T z = b.
                solutions[b] = lu.solve(rhs[b][self._perm_c], trans="T")
            else:
                solutions[b] = lu.solve(rhs[b], trans="T")
        return solutions


def batched_factorize(matrices, backend: str = "auto") -> BatchedFactorization:
    """Factor a batch of same-structure systems.

    ``matrices`` is either a dense ``(B, n, n)`` array or a sequence of B
    sparse matrices.  ``backend`` mirrors the serial solver names: ``dense``
    (stacked LAPACK LU), ``superlu`` (shared-symbolic SuperLU) or ``auto``
    (follow the input representation).  Each lane counts as one
    factorization in the :mod:`repro.linalg.metrics` aggregate, so campaign
    solver stats stay comparable between the serial and batched paths.
    """
    dense_input = isinstance(matrices, np.ndarray)
    if backend not in BATCH_BACKENDS:
        raise LinAlgError(
            f"unknown batched backend {backend!r} (use one of {BATCH_BACKENDS})")
    if backend == "auto":
        backend = "dense" if dense_input else "superlu"
    if backend == "dense":
        if not dense_input:
            matrices = np.stack([np.asarray(sp.csr_matrix(m).toarray())
                                 for m in matrices])
        handle: BatchedFactorization = BatchedDenseLU(matrices)
    else:
        if dense_input:
            matrices = [sp.csc_matrix(matrices[b])
                        for b in range(matrices.shape[0])]
        handle = BatchedSparseLU(matrices)
    metrics.record("factorizations", handle.batch)
    return handle
