"""Backend-abstracted factorized linear solvers.

Every layer of the reproduction funnels its ``A x = b`` solves through
:class:`FactorizedSolver`: the MNA Newton loop, the AC sweep, the FE field
and harmonic solves and the reduced-order-model analyses.  The central
abstraction is the :class:`Factorization` handle -- factor once, then
back-substitute as many right-hand sides as the caller can reuse it for.
That split is what makes the solver-reuse optimizations of the analysis
layer possible: a chord-Newton iteration, a fixed-step transient or a
value-updated AC sweep all hold on to one factorization and pay only the
back-substitution per point.

Backends
--------
``dense``
    LAPACK LU (``getrf``/``getrs`` -- the same routines behind
    ``np.linalg.solve``), real or complex.
``superlu``
    SciPy's SuperLU direct factorization of a sparse matrix.
``cg``
    Jacobi-preconditioned conjugate gradients (SPD systems).  No true
    factorization exists; the handle re-runs the iteration per right-hand
    side and can fall back to a direct solve when the iteration stalls.
``auto``
    ``superlu`` for sparse input, ``dense`` otherwise.

All failure paths raise :class:`~repro.errors.LinAlgError` so callers can
map them onto their layer's exception type.
"""

from __future__ import annotations

import time
import warnings

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .. import telemetry
from ..errors import LinAlgError
from . import metrics

__all__ = ["Factorization", "FactorizedSolver", "BACKENDS"]

BACKENDS = ("auto", "dense", "superlu", "cg")

#: Iteration cap of the conjugate-gradient backend (matches the historical
#: FE solver setting).
_CG_MAXITER = 20000

#: Iteration cap of the Hager/Higham 1-norm inverse estimator.  Convergence
#: in 2-3 iterations is typical; the cap only bounds pathological cycling.
_CONDEST_MAXITER = 5


def _norm1(matrix) -> float:
    """The matrix 1-norm (max absolute column sum), dense or sparse."""
    if matrix.shape[0] == 0:
        return 0.0
    if sp.issparse(matrix):
        return float(np.abs(matrix).sum(axis=0).max())
    return float(np.abs(matrix).sum(axis=0).max())


def _hager_inverse_norm1(solve, solve_transposed, n: int) -> float:
    """Deterministic Hager/Higham estimate of ``||A^-1||_1``.

    Needs only forward and transposed back-substitutions against an existing
    factorization (no access to ``A^-1`` itself), which is what makes the
    condition estimate cheap: O(a few solves), not O(n^3).  The deliberately
    non-random final safeguard vector keeps repeated estimates bit-identical
    run to run (scipy's ``onenormest`` is randomized and therefore unusable
    for deterministic diagnostics).
    """
    if n == 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    estimate = 0.0
    last_index = -1
    for _ in range(_CONDEST_MAXITER):
        y = np.asarray(solve(x))
        if not np.all(np.isfinite(y)):
            return float("inf")
        estimate = float(np.abs(y).sum())
        if np.iscomplexobj(y):
            magnitude = np.abs(y)
            unit = np.where(magnitude == 0.0, 1.0, magnitude)
            xi = np.where(magnitude == 0.0, 1.0 + 0.0j, y / unit)
        else:
            xi = np.sign(y)
            xi[xi == 0.0] = 1.0
        z = np.asarray(solve_transposed(xi))
        if not np.all(np.isfinite(z)):
            return float("inf")
        magnitude_z = np.abs(z)
        index = int(np.argmax(magnitude_z))
        if magnitude_z[index] <= abs(np.vdot(z, x)) or index == last_index:
            break
        x = np.zeros(n)
        x[index] = 1.0
        last_index = index
    # Higham's alternating safeguard vector catches the unit-vector blind
    # spots of the iteration above; keep the larger of the two bounds.
    safeguard = np.empty(n)
    for i in range(n):
        safeguard[i] = (1.0 + i / (n - 1) if n > 1 else 1.0) * (-1.0) ** i
    y = np.asarray(solve(safeguard))
    if not np.all(np.isfinite(y)):
        return float("inf")
    return max(estimate, 2.0 * float(np.abs(y).sum()) / (3.0 * n))


class Factorization:
    """Handle to a factored (or otherwise solvable) system matrix."""

    #: Name of the backend that produced this handle.
    backend: str = "abstract"

    def __init__(self, shape: tuple[int, int]) -> None:
        self.shape = shape
        #: Number of transposed back-substitutions performed (adjoint-solve
        #: instrumentation: the sensitivity layer counts these).
        self.transpose_solves = 0
        self._condition: float | None = None

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute one right-hand side (or a column block)."""
        raise NotImplementedError

    def condition_estimate(self) -> float:
        """Cheap 1-norm condition-number estimate of the factored matrix.

        Dense LU uses LAPACK ``gecon`` on the stored factors; the sparse and
        iterative backends run a deterministic Hager/Higham iteration on
        forward/transposed back-substitutions.  Costs a handful of
        back-substitutions, is cached on the handle, and never refactors.
        Returns ``inf`` for a numerically singular matrix.
        """
        if self._condition is None:
            self._condition = float(self._estimate_condition())
        return self._condition

    def _estimate_condition(self) -> float:
        raise LinAlgError(
            f"backend {self.backend!r} does not support condition estimation")

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        """Back-substitute against ``A^T`` using the *same* factorization.

        This is the primitive behind adjoint sensitivities: the transposed
        system reuses the forward LU (LAPACK ``trans`` flag, SuperLU
        ``trans='T'``), so an adjoint solve never pays a second
        factorization.  The plain (non-conjugated) transpose is used for
        complex matrices -- the form the implicit-function theorem needs.
        """
        raise NotImplementedError

    def _check_rhs(self, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs)
        if rhs.ndim not in (1, 2) or rhs.shape[0] != self.shape[0]:
            raise LinAlgError(
                f"right-hand side has shape {rhs.shape}, expected "
                f"({self.shape[0]},) or ({self.shape[0]}, k)")
        return rhs


class _DenseLU(Factorization):
    """LAPACK LU of a dense real or complex matrix."""

    backend = "dense"

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix)
        super().__init__(matrix.shape)
        # Reference only (no copy): needed lazily for the 1-norm in
        # condition_estimate(); analysis workspaces already retain the
        # assembled matrices, so this costs no extra memory.
        self._matrix = matrix
        with warnings.catch_warnings():
            # An exactly singular U triggers a LinAlgWarning before we can
            # turn it into the LinAlgError below.
            warnings.simplefilter("ignore")
            try:
                self._lu, self._piv = la.lu_factor(matrix, check_finite=False)
            except (la.LinAlgError, ValueError) as exc:
                raise LinAlgError(f"dense LU factorization failed: {exc}") from exc
        diag = np.diagonal(self._lu)
        if np.any(diag == 0.0) or not np.all(np.isfinite(diag)):
            raise LinAlgError("matrix is singular (zero pivot in LU)")

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        return la.lu_solve((self._lu, self._piv), rhs, check_finite=False)

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        self.transpose_solves += 1
        metrics.record("transpose_solves")
        if np.iscomplexobj(rhs) and not np.iscomplexobj(self._lu):
            # Real factorization, complex right-hand side: two real passes.
            return la.lu_solve((self._lu, self._piv),
                               np.ascontiguousarray(rhs.real),
                               trans=1, check_finite=False) \
                + 1j * la.lu_solve((self._lu, self._piv),
                                   np.ascontiguousarray(rhs.imag),
                                   trans=1, check_finite=False)
        # trans=1 is the plain transpose (no conjugation) for complex LUs.
        return la.lu_solve((self._lu, self._piv), rhs, trans=1,
                           check_finite=False)

    def _estimate_condition(self) -> float:
        anorm = _norm1(self._matrix)
        if anorm == 0.0:
            return float("inf")
        (gecon,) = la.get_lapack_funcs(("gecon",), (self._lu,))
        rcond, info = gecon(self._lu, anorm)
        if info < 0:
            raise LinAlgError(f"gecon failed (illegal argument {-info})")
        return float("inf") if rcond == 0.0 else 1.0 / float(rcond)


class _SparseLU(Factorization):
    """SuperLU factorization of a sparse (real or complex) matrix."""

    backend = "superlu"

    def __init__(self, matrix) -> None:
        matrix = sp.csc_matrix(matrix)
        super().__init__(matrix.shape)
        self._matrix = matrix
        self._complex = np.iscomplexobj(matrix)
        try:
            self._lu = spla.splu(matrix)
        except RuntimeError as exc:
            raise LinAlgError(f"sparse LU factorization failed: {exc}") from exc

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        if self._complex:
            solution = self._lu.solve(np.asarray(rhs, dtype=complex))
        elif np.iscomplexobj(rhs):
            # Real factorization, complex right-hand side: two real
            # back-substitutions instead of silently dropping Im(rhs).
            solution = self._lu.solve(np.ascontiguousarray(rhs.real)) \
                + 1j * self._lu.solve(np.ascontiguousarray(rhs.imag))
        else:
            solution = self._lu.solve(np.asarray(rhs, dtype=float))
        if not np.all(np.isfinite(solution)):
            raise LinAlgError(
                "sparse direct solve produced non-finite values "
                "(singular system; missing boundary conditions?)")
        return solution

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        self.transpose_solves += 1
        metrics.record("transpose_solves")
        if self._complex:
            solution = self._lu.solve(np.asarray(rhs, dtype=complex), trans="T")
        elif np.iscomplexobj(rhs):
            solution = self._lu.solve(np.ascontiguousarray(rhs.real), trans="T") \
                + 1j * self._lu.solve(np.ascontiguousarray(rhs.imag), trans="T")
        else:
            solution = self._lu.solve(np.asarray(rhs, dtype=float), trans="T")
        if not np.all(np.isfinite(solution)):
            raise LinAlgError(
                "sparse transposed solve produced non-finite values "
                "(singular system; missing boundary conditions?)")
        return solution

    def _estimate_condition(self) -> float:
        anorm = _norm1(self._matrix)
        if anorm == 0.0:
            return float("inf")
        # Raw SuperLU back-substitutions: do not route through
        # solve_transposed(), whose counter feeds adjoint-solve accounting.
        dtype = complex if self._complex else float

        def forward(vec):
            return self._lu.solve(np.asarray(vec, dtype=dtype))

        def transposed(vec):
            return self._lu.solve(np.asarray(vec, dtype=dtype), trans="T")

        return anorm * _hager_inverse_norm1(forward, transposed, self.shape[0])


class _JacobiCG(Factorization):
    """Jacobi-preconditioned conjugate gradients with optional direct fallback.

    There is no factorization to hold; the handle keeps the matrix and the
    preconditioner and re-runs the iteration per right-hand side.  When the
    iteration fails to converge and ``fallback`` is enabled, the handle
    factors the matrix with SuperLU once and answers this and every later
    right-hand side directly.
    """

    backend = "cg"

    def __init__(self, matrix, rtol: float, fallback: bool) -> None:
        if np.iscomplexobj(matrix):
            raise LinAlgError(
                "the cg backend handles real symmetric-positive-definite "
                "systems only; use the dense or superlu backend for complex "
                "matrices")
        self._matrix = sp.csr_matrix(matrix)
        super().__init__(self._matrix.shape)
        self._rtol = float(rtol)
        self._fallback_allowed = bool(fallback)
        self._direct: _SparseLU | None = None
        self._symmetric: bool | None = None
        #: Number of right-hand sides answered by the direct fallback.
        self.fallback_solves = 0
        self._preconditioner = None
        diagonal = self._matrix.diagonal()
        if np.any(diagonal == 0.0):
            # No Jacobi preconditioner exists (e.g. MNA voltage-source rows).
            if not self._fallback_allowed:
                raise LinAlgError(
                    "zero diagonal entry; cannot build Jacobi preconditioner")
            self._direct = _SparseLU(self._matrix)
        else:
            self._preconditioner = spla.LinearOperator(
                self._matrix.shape, matvec=lambda x, d=diagonal: x / d)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        if rhs.ndim == 2:
            return np.column_stack([self.solve(rhs[:, j])
                                    for j in range(rhs.shape[1])])
        if np.iscomplexobj(rhs):
            # The matrix is real (enforced at construction): solve the real
            # and imaginary parts independently.
            return self.solve(np.ascontiguousarray(rhs.real)) \
                + 1j * self.solve(np.ascontiguousarray(rhs.imag))
        if self._direct is None:
            solution, info = spla.cg(self._matrix, np.asarray(rhs, dtype=float),
                                     rtol=self._rtol, maxiter=_CG_MAXITER,
                                     M=self._preconditioner)
            if info == 0:
                return np.asarray(solution, dtype=float)
            if not self._fallback_allowed:
                raise LinAlgError(
                    f"conjugate-gradient solve did not converge (info={info})")
            self._direct = _SparseLU(self._matrix)
        self.fallback_solves += 1
        return self._direct.solve(rhs)

    def _is_symmetric(self) -> bool:
        if self._symmetric is None:
            difference = (self._matrix - self._matrix.T).tocoo()
            if difference.nnz == 0:
                self._symmetric = True
            else:
                scale = float(np.abs(self._matrix.data).max()) \
                    if self._matrix.nnz else 1.0
                self._symmetric = bool(
                    np.abs(difference.data).max() <= 1e-14 * max(scale, 1e-300))
        return self._symmetric

    def solve_transposed(self, rhs: np.ndarray) -> np.ndarray:
        rhs = self._check_rhs(rhs)
        self.transpose_solves += 1
        metrics.record("transpose_solves")
        if self._direct is None:
            if self._is_symmetric():
                # A^T == A: the transposed solve IS the forward CG solve.
                return self.solve(rhs)
            # Non-symmetric matrix (e.g. an MNA Jacobian routed through the
            # cg backend): CG never applied, and silently answering the
            # forward system would corrupt adjoint gradients.
            if not self._fallback_allowed:
                raise LinAlgError(
                    "cg transposed solve needs a symmetric matrix "
                    "(A^T != A and the direct fallback is disabled)")
            self._direct = _SparseLU(self._matrix)
        self.fallback_solves += 1
        return self._direct.solve_transposed(rhs)

    def _estimate_condition(self) -> float:
        anorm = _norm1(self._matrix)
        if anorm == 0.0:
            return float("inf")
        if self._direct is None and not self._is_symmetric():
            if not self._fallback_allowed:
                raise LinAlgError(
                    "cg condition estimate needs a symmetric matrix "
                    "(A^T != A and the direct fallback is disabled)")
            self._direct = _SparseLU(self._matrix)
        if self._direct is not None:
            return self._direct._estimate_condition()
        # Symmetric system: the transposed solve IS the forward CG solve.
        return anorm * _hager_inverse_norm1(self.solve, self.solve,
                                            self.shape[0])


class FactorizedSolver:
    """Factory for :class:`Factorization` handles with backend selection.

    Parameters
    ----------
    backend:
        One of ``"auto"``, ``"dense"``, ``"superlu"``, ``"cg"``.
    rtol:
        Relative tolerance of the iterative (CG) backend.
    cg_fallback:
        Whether a stalled CG iteration falls back to a SuperLU direct solve
        instead of raising.
    """

    def __init__(self, backend: str = "auto", rtol: float = 1e-10,
                 cg_fallback: bool = True) -> None:
        if backend not in BACKENDS:
            raise LinAlgError(
                f"unknown linear-solver backend {backend!r} (use one of {BACKENDS})")
        if rtol <= 0.0:
            raise LinAlgError("rtol must be positive")
        self.backend = backend
        self.rtol = float(rtol)
        self.cg_fallback = bool(cg_fallback)
        #: Number of factorizations produced (reuse diagnostics).
        self.factorizations = 0

    def resolve_backend(self, matrix) -> str:
        """The concrete backend used for ``matrix``."""
        if self.backend != "auto":
            return self.backend
        return "superlu" if sp.issparse(matrix) else "dense"

    def factorize(self, matrix) -> Factorization:
        """Factor ``matrix`` and return a reusable solve handle."""
        shape = matrix.shape
        if len(shape) != 2 or shape[0] != shape[1]:
            raise LinAlgError(f"system matrix must be square, got {shape}")
        backend = self.resolve_backend(matrix)
        self.factorizations += 1
        metrics.record("factorizations")
        # Timing is only worth two perf_counter calls while someone collects.
        t0 = time.perf_counter() if telemetry.enabled() else None
        if backend == "dense":
            dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix)
            handle = _DenseLU(dense)
        elif backend == "superlu":
            handle = _SparseLU(matrix)
        else:
            handle = _JacobiCG(matrix, rtol=self.rtol, fallback=self.cg_fallback)
        if t0 is not None:
            telemetry.registry.observe(f"linalg.factorize.{backend}_s",
                                       time.perf_counter() - t0)
        return handle

    def solve(self, matrix, rhs: np.ndarray) -> np.ndarray:
        """One-shot ``matrix @ x = rhs`` (factor + back-substitute)."""
        return self.factorize(matrix).solve(rhs)
