"""Sparsity-pattern caching for repeated triplet assemblies.

The MNA and FE assemblers produce COO triplets ``(row, col, value)`` by
replaying every device/element stamp.  The *pattern* of those triplets --
which (row, col) pairs appear, in which order -- is a property of the
topology, not of the values: on the next Newton iteration or time point the
same stamps land on the same coordinates with different numbers.  Rebuilding
the CSR matrix from scratch (sort, deduplicate, sum) on every assembly
therefore repeats work whose answer never changes.

:class:`StructureCache` computes the COO->CSR reduction once and keeps the
triplet->slot mapping.  Subsequent assemblies with an unchanged pattern
reduce to one ``np.bincount`` (summing duplicate stamps into their CSR slot)
and a copy-free CSR construction.  The pattern check is an exact array
comparison, so a changed topology -- a device added or removed, a stamp that
vanished because a derivative became exactly zero -- transparently falls
back to a rebuild and bumps :attr:`generation`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import LinAlgError
from . import metrics

__all__ = ["StructureCache"]


class StructureCache:
    """Cache of one triplet stream's COO->CSR reduction.

    Attributes
    ----------
    generation:
        Incremented on every pattern rebuild; callers can use it as a cheap
        structure tag (e.g. in factorization-cache keys).
    rebuilds / reuses:
        Diagnostic counters of pattern rebuilds versus cached assemblies.
    """

    def __init__(self) -> None:
        self.generation = 0
        self.rebuilds = 0
        self.reuses = 0
        self._n = 0
        self._rows: np.ndarray | None = None
        self._cols: np.ndarray | None = None
        self._mapping: np.ndarray | None = None
        self._indices: np.ndarray | None = None
        self._indptr: np.ndarray | None = None
        self._nnz = 0

    # ------------------------------------------------------------------ build
    def assemble(self, rows, cols, values, n: int) -> sp.csr_matrix:
        """CSR matrix of the triplet stream, summing duplicate coordinates.

        ``rows``/``cols``/``values`` are equal-length sequences; ``n`` is the
        system size.  Duplicates are summed in triplet order, identically on
        the cached and rebuild paths, so the result does not depend on
        whether the pattern was reused.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        values = np.asarray(values, dtype=float)
        if not (rows.shape == cols.shape == values.shape) or rows.ndim != 1:
            raise LinAlgError("triplet arrays must be equal-length 1-D sequences")
        if rows.size and (rows.min() < 0 or cols.min() < 0
                          or rows.max() >= n or cols.max() >= n):
            raise LinAlgError(f"triplet coordinates out of range for size {n}")
        if not self._matches(rows, cols, n):
            self._rebuild(rows, cols, n)
        else:
            self.reuses += 1
            metrics.record("structure_reuses")
        data = np.bincount(self._mapping, weights=values,
                           minlength=self._nnz) if values.size else \
            np.zeros(self._nnz)
        return sp.csr_matrix((data, self._indices, self._indptr),
                             shape=(n, n), copy=False)

    def assemble_batch(self, rows, cols, values, n: int) -> list[sp.csr_matrix]:
        """Per-lane CSR matrices of a ``(T, B)`` batched value array.

        The pattern reduction (sort, deduplicate, slot mapping) runs once
        for the whole batch; each of the B lanes then costs one
        ``np.bincount`` value reduction -- the batched analogue of
        :meth:`assemble` for campaign points that share a topology.  Lane b
        of the result equals ``assemble(rows, cols, values[:, b], n)``
        exactly (identical summation order).
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        values = np.asarray(values, dtype=float)
        if rows.ndim != 1 or rows.shape != cols.shape:
            raise LinAlgError("triplet arrays must be equal-length 1-D sequences")
        if values.ndim != 2 or values.shape[0] != rows.size:
            raise LinAlgError(
                f"batched values must have shape ({rows.size}, B), got "
                f"{values.shape}")
        if rows.size and (rows.min() < 0 or cols.min() < 0
                          or rows.max() >= n or cols.max() >= n):
            raise LinAlgError(f"triplet coordinates out of range for size {n}")
        if not self._matches(rows, cols, n):
            self._rebuild(rows, cols, n)
        else:
            self.reuses += 1
            metrics.record("structure_reuses")
        lanes = []
        for b in range(values.shape[1]):
            data = np.bincount(self._mapping, weights=values[:, b],
                               minlength=self._nnz) if rows.size else \
                np.zeros(self._nnz)
            lanes.append(sp.csr_matrix((data, self._indices, self._indptr),
                                       shape=(n, n), copy=False))
        return lanes

    # ---------------------------------------------------------------- helpers
    def _matches(self, rows: np.ndarray, cols: np.ndarray, n: int) -> bool:
        return (self._rows is not None and n == self._n
                and rows.size == self._rows.size
                and np.array_equal(rows, self._rows)
                and np.array_equal(cols, self._cols))

    def _rebuild(self, rows: np.ndarray, cols: np.ndarray, n: int) -> None:
        if rows.size:
            order = np.lexsort((cols, rows))
            sorted_rows = rows[order]
            sorted_cols = cols[order]
            first = np.ones(order.size, dtype=bool)
            first[1:] = ((sorted_rows[1:] != sorted_rows[:-1])
                         | (sorted_cols[1:] != sorted_cols[:-1]))
            slot_of_sorted = np.cumsum(first) - 1
            mapping = np.empty(order.size, dtype=np.intp)
            mapping[order] = slot_of_sorted
            unique_rows = sorted_rows[first]
            unique_cols = sorted_cols[first]
        else:
            mapping = np.zeros(0, dtype=np.intp)
            unique_rows = np.zeros(0, dtype=np.intp)
            unique_cols = np.zeros(0, dtype=np.intp)
        self._rows = rows
        self._cols = cols
        self._n = n
        self._mapping = mapping
        self._nnz = unique_rows.size
        self._indices = unique_cols.astype(np.int32, copy=False)
        self._indptr = np.concatenate(
            ([0], np.cumsum(np.bincount(unique_rows, minlength=n)))
        ).astype(np.int32, copy=False)
        self.generation += 1
        self.rebuilds += 1
        metrics.record("structure_rebuilds")

    def __repr__(self) -> str:
        return (f"StructureCache(n={self._n}, nnz={self._nnz}, "
                f"{self.rebuilds} rebuilds / {self.reuses} reuses)")
