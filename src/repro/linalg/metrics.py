"""Back-compat shim over :mod:`repro.telemetry.registry` for linalg counters.

Every :class:`~repro.linalg.solvers.FactorizedSolver`,
:class:`~repro.linalg.cache.FactorizationCache` and
:class:`~repro.linalg.structure.StructureCache` instance reports its events
here in addition to its own per-instance counters.  The counters now live in
the general telemetry registry under a ``linalg.`` prefix; this module keeps
the original seven-counter API (`record`/`snapshot`/`counter_delta`/
`merge_counters`/`reset`) so existing callers and the campaign plumbing work
unchanged, including the contract that unknown counter names raise
``KeyError`` (the registry itself auto-creates counters).

The aggregate view is what crosses process boundaries: campaign pool
workers snapshot the counters around each chunk and ship the *delta* back
with the results, so a :class:`~repro.campaign.results.CampaignResult` can
report how effective the factorization/pattern caches were across the whole
fan-out -- even though the cache instances themselves live and die inside
the workers.
"""

from __future__ import annotations

from repro.telemetry import registry

__all__ = ["COUNTER_NAMES", "record", "snapshot", "counter_delta",
           "merge_counters", "reset"]

#: Every aggregate counter, in reporting order.
COUNTER_NAMES = (
    "factorizations",
    "factorization_cache_hits",
    "factorization_cache_misses",
    "factorization_cache_evictions",
    "structure_rebuilds",
    "structure_reuses",
    "transpose_solves",
)

#: Registry prefix the linalg counters live under.
PREFIX = "linalg."

_KNOWN = frozenset(COUNTER_NAMES)


def record(name: str, amount: int = 1) -> None:
    """Bump one aggregate counter (unknown names raise ``KeyError``)."""
    if name not in _KNOWN:
        raise KeyError(name)
    registry.inc(PREFIX + name, amount)


def snapshot() -> dict[str, int]:
    """A copy of the current counter values."""
    return {name: int(registry.counter_value(PREFIX + name))
            for name in COUNTER_NAMES}


def counter_delta(before: dict[str, int],
                  after: dict[str, int] | None = None) -> dict[str, int]:
    """Per-counter difference ``after - before`` (``after`` defaults to now)."""
    if after is None:
        after = snapshot()
    return {name: after.get(name, 0) - before.get(name, 0)
            for name in COUNTER_NAMES}


def merge_counters(total: dict[str, int], delta: dict[str, int]) -> None:
    """Accumulate one delta into a running total, in place."""
    for name in COUNTER_NAMES:
        total[name] = total.get(name, 0) + int(delta.get(name, 0))


def reset() -> None:
    """Zero every aggregate counter (test isolation helper)."""
    registry.reset(names=[PREFIX + name for name in COUNTER_NAMES])
