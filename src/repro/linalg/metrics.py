"""Process-wide aggregate counters of the linalg caching layers.

Every :class:`~repro.linalg.solvers.FactorizedSolver`,
:class:`~repro.linalg.cache.FactorizationCache` and
:class:`~repro.linalg.structure.StructureCache` instance reports its events
here in addition to its own per-instance counters.  The aggregate view is
what crosses process boundaries: campaign pool workers snapshot the counters
around each chunk and ship the *delta* back with the results, so a
:class:`~repro.campaign.results.CampaignResult` can report how effective the
factorization/pattern caches were across the whole fan-out -- even though
the cache instances themselves live and die inside the workers.

The counters are plain module-level integers (no locks): each process
mutates only its own copy, and the deltas are merged by the campaign runner
in the parent.
"""

from __future__ import annotations

__all__ = ["COUNTER_NAMES", "record", "snapshot", "counter_delta",
           "merge_counters", "reset"]

#: Every aggregate counter, in reporting order.
COUNTER_NAMES = (
    "factorizations",
    "factorization_cache_hits",
    "factorization_cache_misses",
    "factorization_cache_evictions",
    "structure_rebuilds",
    "structure_reuses",
    "transpose_solves",
)

_counters: dict[str, int] = {name: 0 for name in COUNTER_NAMES}


def record(name: str, amount: int = 1) -> None:
    """Bump one aggregate counter (unknown names raise ``KeyError``)."""
    _counters[name] += amount


def snapshot() -> dict[str, int]:
    """A copy of the current counter values."""
    return dict(_counters)


def counter_delta(before: dict[str, int],
                  after: dict[str, int] | None = None) -> dict[str, int]:
    """Per-counter difference ``after - before`` (``after`` defaults to now)."""
    if after is None:
        after = snapshot()
    return {name: after.get(name, 0) - before.get(name, 0)
            for name in COUNTER_NAMES}


def merge_counters(total: dict[str, int], delta: dict[str, int]) -> None:
    """Accumulate one delta into a running total, in place."""
    for name in COUNTER_NAMES:
        total[name] = total.get(name, 0) + int(delta.get(name, 0))


def reset() -> None:
    """Zero every aggregate counter (test isolation helper)."""
    for name in COUNTER_NAMES:
        _counters[name] = 0
