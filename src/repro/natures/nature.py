"""Nature (physical-domain) definitions and registry.

A *nature* names a physical discipline and the units of its conjugate
across/through pair.  Terminals (pins) of devices are typed by nature; the
netlist refuses to connect pins of different natures to the same node, which
catches the classic error of wiring a mechanical port straight into an
electrical net without a transducer in between.

The built-in natures reproduce the columns of the paper's Table 1 plus the
thermal domain (pseudo bond-graph convention: effort = temperature,
flow = heat flow, so the product is *not* a power -- flagged by
``is_power_conjugate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NatureError

__all__ = [
    "Nature",
    "ELECTRICAL",
    "MECHANICAL_TRANSLATION",
    "MECHANICAL_ROTATION",
    "HYDRAULIC",
    "THERMAL",
    "MECHANICAL1",
    "register_nature",
    "get_nature",
    "all_natures",
]


@dataclass(frozen=True)
class Nature:
    """A physical discipline with named across/through/state variables.

    Attributes
    ----------
    name:
        Canonical lower-case identifier (``"electrical"``).
    across_name / across_unit:
        The effort (intensive) variable, e.g. voltage [V] or velocity [m/s].
    through_name / through_unit:
        The flow variable, e.g. current [A] or force [N].
    state_name / state_unit:
        The extensive variable, the time integral of the flow
        (charge [C], displacement [m], volume [m^3]).
    momentum_name / momentum_unit:
        The time integral of the effort (flux linkage, momentum, ...).
    is_power_conjugate:
        True when across x through has units of watts.  All Table 1 domains
        are power-conjugate; the pseudo-bond-graph thermal domain is not.
    aliases:
        Alternative names accepted by :func:`get_nature` (HDL-A spells the
        translational domain ``mechanical1``).
    """

    name: str
    across_name: str
    across_unit: str
    through_name: str
    through_unit: str
    state_name: str
    state_unit: str
    momentum_name: str
    momentum_unit: str
    is_power_conjugate: bool = True
    aliases: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not self.name.islower():
            raise NatureError(f"nature name must be non-empty lower-case: {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def across_symbol(self) -> str:
        """Conventional one-letter symbol of the across variable."""
        return _SYMBOLS.get(self.name, ("e", "f", "q"))[0]

    @property
    def through_symbol(self) -> str:
        """Conventional one-letter symbol of the through variable."""
        return _SYMBOLS.get(self.name, ("e", "f", "q"))[1]

    @property
    def state_symbol(self) -> str:
        """Conventional one-letter symbol of the state variable."""
        return _SYMBOLS.get(self.name, ("e", "f", "q"))[2]

    def describe(self) -> str:
        """Return a one-line human-readable description (Table 1 row)."""
        return (
            f"{self.name}: effort={self.across_name} [{self.across_unit}], "
            f"flow={self.through_name} [{self.through_unit}], "
            f"state={self.state_name} [{self.state_unit}], "
            f"momentum={self.momentum_name} [{self.momentum_unit}]"
        )


_SYMBOLS = {
    "electrical": ("v", "i", "q"),
    "mechanical_translation": ("v", "f", "x"),
    "mechanical_rotation": ("w", "t", "theta"),
    "hydraulic": ("p", "phi", "V"),
    "thermal": ("T", "q", "Q"),
}


ELECTRICAL = Nature(
    name="electrical",
    across_name="voltage",
    across_unit="V",
    through_name="current",
    through_unit="A",
    state_name="charge",
    state_unit="C",
    momentum_name="flux linkage",
    momentum_unit="Wb",
    aliases=("electric", "elec"),
)

MECHANICAL_TRANSLATION = Nature(
    name="mechanical_translation",
    across_name="velocity",
    across_unit="m/s",
    through_name="force",
    through_unit="N",
    state_name="displacement",
    state_unit="m",
    momentum_name="momentum",
    momentum_unit="kg*m/s",
    aliases=("mechanical1", "mechanical", "translation", "kinematic"),
)

MECHANICAL_ROTATION = Nature(
    name="mechanical_rotation",
    across_name="angular velocity",
    across_unit="rad/s",
    through_name="torque",
    through_unit="N*m",
    state_name="angle",
    state_unit="rad",
    momentum_name="angular momentum",
    momentum_unit="kg*m^2/s",
    aliases=("mechanical2", "rotation", "rotational"),
)

HYDRAULIC = Nature(
    name="hydraulic",
    across_name="pressure",
    across_unit="Pa",
    through_name="volume flow rate",
    through_unit="m^3/s",
    state_name="volume",
    state_unit="m^3",
    momentum_name="pressure momentum",
    momentum_unit="Pa*s",
    aliases=("fluidic", "fluid"),
)

THERMAL = Nature(
    name="thermal",
    across_name="temperature",
    across_unit="K",
    through_name="heat flow",
    through_unit="W",
    state_name="heat",
    state_unit="J",
    momentum_name="(none)",
    momentum_unit="-",
    is_power_conjugate=False,
    aliases=("thermic",),
)

#: HDL-A name for the translational mechanical nature (used in Listing 1).
MECHANICAL1 = MECHANICAL_TRANSLATION

_REGISTRY: dict[str, Nature] = {}


def register_nature(nature: Nature) -> Nature:
    """Register ``nature`` (and its aliases) so :func:`get_nature` finds it.

    Re-registering the same object is a no-op; registering a different nature
    under an existing name raises :class:`~repro.errors.NatureError`.
    """
    for key in (nature.name, *nature.aliases):
        key = key.lower()
        existing = _REGISTRY.get(key)
        if existing is not None and existing != nature:
            raise NatureError(f"nature name {key!r} already registered for {existing.name}")
        _REGISTRY[key] = nature
    return nature


def get_nature(name: str | Nature) -> Nature:
    """Look up a nature by name or alias (case-insensitive).

    Passing a :class:`Nature` instance returns it unchanged, which lets API
    functions accept either form.
    """
    if isinstance(name, Nature):
        return name
    if not isinstance(name, str):
        raise NatureError(f"expected nature name, got {type(name).__name__}")
    nature = _REGISTRY.get(name.lower())
    if nature is None:
        known = ", ".join(sorted({n.name for n in _REGISTRY.values()}))
        raise NatureError(f"unknown nature {name!r}; known natures: {known}")
    return nature


def all_natures() -> list[Nature]:
    """Return the distinct registered natures in registration order."""
    seen: list[Nature] = []
    for nature in _REGISTRY.values():
        if nature not in seen:
            seen.append(nature)
    return seen


for _nature in (ELECTRICAL, MECHANICAL_TRANSLATION, MECHANICAL_ROTATION, HYDRAULIC, THERMAL):
    register_nature(_nature)
