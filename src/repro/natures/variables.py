"""Generalized power/state variables (Table 1 of the paper).

The functions here express the algebra the paper summarises in Table 1:

* instantaneous power is the product of the conjugate effort and flow,
* the flow is the time derivative of the state variable,
* the effort is the time derivative of the momentum variable,
* energy increments are ``effort * d(state)`` or ``flow * d(momentum)``.

They operate on plain floats or numpy arrays and are primarily used by the
tests and by ``benchmarks/bench_table1_domains.py`` to check that every
registered nature is a consistent power-conjugate pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .nature import Nature

__all__ = ["VariableRole", "GeneralizedVariables", "power", "energy_increment"]


class VariableRole(enum.Enum):
    """Role of a generalized variable within a nature."""

    EFFORT = "effort"
    FLOW = "flow"
    STATE = "state"
    MOMENTUM = "momentum"


@dataclass
class GeneralizedVariables:
    """Time histories of the four generalized variables of one port.

    The class is a small container used by tests, the energy-method
    derivation and the PXT report generator.  Arrays must share one time
    base ``t``.
    """

    nature: Nature
    t: np.ndarray
    effort: np.ndarray
    flow: np.ndarray

    def __post_init__(self) -> None:
        self.t = np.asarray(self.t, dtype=float)
        self.effort = np.asarray(self.effort, dtype=float)
        self.flow = np.asarray(self.flow, dtype=float)
        if not (self.t.shape == self.effort.shape == self.flow.shape):
            raise ValueError("t, effort and flow must have identical shapes")

    @property
    def state(self) -> np.ndarray:
        """State variable: cumulative time integral of the flow."""
        return cumulative_integral(self.t, self.flow)

    @property
    def momentum(self) -> np.ndarray:
        """Momentum variable: cumulative time integral of the effort."""
        return cumulative_integral(self.t, self.effort)

    @property
    def power(self) -> np.ndarray:
        """Instantaneous power flowing into the port."""
        return self.effort * self.flow

    @property
    def energy(self) -> np.ndarray:
        """Cumulative energy delivered into the port."""
        return cumulative_integral(self.t, self.power)


def power(effort: float | np.ndarray, flow: float | np.ndarray) -> float | np.ndarray:
    """Instantaneous power of a conjugate effort/flow pair."""
    return effort * flow


def energy_increment(effort: float | np.ndarray, dstate: float | np.ndarray) -> float | np.ndarray:
    """Energy increment ``effort * d(state)`` (the integrands of Table 1)."""
    return effort * dstate


def cumulative_integral(t: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Trapezoidal cumulative integral of ``y`` over ``t`` starting at zero."""
    t = np.asarray(t, dtype=float)
    y = np.asarray(y, dtype=float)
    if t.shape != y.shape:
        raise ValueError("t and y must have the same shape")
    if t.size == 0:
        return np.zeros(0)
    out = np.zeros_like(y)
    if t.size > 1:
        dt = np.diff(t)
        out[1:] = np.cumsum(0.5 * (y[1:] + y[:-1]) * dt)
    return out
