"""Electrical/mechanical analogies (force-voltage and force-current).

The paper uses the force-current (FI, "mobility") analogy throughout because
it preserves the topology of the mechanical network when it is mapped onto an
electrical one:

====================  =======================  =======================
mechanical element    FI analogy (paper)       FV analogy
====================  =======================  =======================
velocity  v           node voltage             branch current
force     F           branch current           branch voltage
mass      m           capacitor  C = m         inductor  L = m
spring    k           inductor   L = 1/k       capacitor C = 1/k
damper    alpha       resistor   R = 1/alpha   resistor  R = alpha
====================  =======================  =======================

:class:`Analogy` captures both mappings so the same mechanical resonator can
be instantiated either way; ``benchmarks/bench_ablation_analogy.py`` checks
that both give identical resonant behaviour.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import NatureError

__all__ = ["Analogy", "AnalogMapping", "FORCE_CURRENT", "FORCE_VOLTAGE"]


class Analogy(enum.Enum):
    """Which electrical/mechanical analogy is in force."""

    FORCE_CURRENT = "force_current"
    FORCE_VOLTAGE = "force_voltage"

    @property
    def mapping(self) -> "AnalogMapping":
        """Return the :class:`AnalogMapping` implementing this analogy."""
        return _MAPPINGS[self]


@dataclass(frozen=True)
class AnalogMapping:
    """Concrete element-value mapping for one analogy.

    Methods return the electrical element value equivalent to a mechanical
    element, and the inverse mappings recover the mechanical parameter from
    an electrical one.  All parameters must be strictly positive.
    """

    analogy: "Analogy"

    # -- mechanical -> electrical -------------------------------------------------
    def mass_to_element(self, mass: float) -> float:
        """Capacitance (FI) or inductance (FV) equivalent to ``mass`` [kg]."""
        _require_positive("mass", mass)
        return mass

    def spring_to_element(self, stiffness: float) -> float:
        """Inductance (FI) or capacitance (FV) equivalent to ``stiffness`` [N/m]."""
        _require_positive("stiffness", stiffness)
        return 1.0 / stiffness

    def damper_to_element(self, damping: float) -> float:
        """Resistance equivalent to the damping coefficient ``damping`` [N*s/m]."""
        _require_positive("damping", damping)
        if self.analogy is Analogy.FORCE_CURRENT:
            return 1.0 / damping
        return damping

    # -- electrical -> mechanical -------------------------------------------------
    def element_to_mass(self, value: float) -> float:
        """Inverse of :meth:`mass_to_element`."""
        _require_positive("element value", value)
        return value

    def element_to_spring(self, value: float) -> float:
        """Inverse of :meth:`spring_to_element`."""
        _require_positive("element value", value)
        return 1.0 / value

    def element_to_damper(self, value: float) -> float:
        """Inverse of :meth:`damper_to_element`."""
        _require_positive("element value", value)
        if self.analogy is Analogy.FORCE_CURRENT:
            return 1.0 / value
        return value

    # -- derived system quantities ------------------------------------------------
    def resonant_frequency(self, mass: float, stiffness: float) -> float:
        """Undamped natural frequency ``sqrt(k/m)/(2*pi)`` [Hz].

        The analogy does not change the physics; this helper exists so that
        tests can confirm both mappings predict the same resonance from their
        electrical element values.
        """
        _require_positive("mass", mass)
        _require_positive("stiffness", stiffness)
        return math.sqrt(stiffness / mass) / (2.0 * math.pi)

    def quality_factor(self, mass: float, stiffness: float, damping: float) -> float:
        """Quality factor ``sqrt(k*m)/alpha`` of the mass-spring-damper."""
        _require_positive("mass", mass)
        _require_positive("stiffness", stiffness)
        _require_positive("damping", damping)
        return math.sqrt(stiffness * mass) / damping

    def damping_ratio(self, mass: float, stiffness: float, damping: float) -> float:
        """Damping ratio ``alpha / (2*sqrt(k*m))`` (1 = critical damping)."""
        return 0.5 / self.quality_factor(mass, stiffness, damping)


def _require_positive(name: str, value: float) -> None:
    if not (value > 0.0) or math.isinf(value) or math.isnan(value):
        raise NatureError(f"{name} must be a positive finite number, got {value!r}")


FORCE_CURRENT = AnalogMapping(Analogy.FORCE_CURRENT)
FORCE_VOLTAGE = AnalogMapping(Analogy.FORCE_VOLTAGE)

_MAPPINGS = {
    Analogy.FORCE_CURRENT: FORCE_CURRENT,
    Analogy.FORCE_VOLTAGE: FORCE_VOLTAGE,
}
