"""Physical domains ("natures") and the generalized-variable framework.

This package implements Table 1 of the paper: every physical domain is
described by a conjugate pair of an *effort* (across, intensive) variable and
a *flow* (through) variable whose product is a power, plus the *state*
(extensive) variable obtained by integrating the flow and the *momentum*
obtained by integrating the effort.

The :class:`~repro.natures.nature.Nature` registry is what the circuit
simulator and the HDL elaborator use to type-check terminal connections, and
:mod:`repro.natures.analogies` provides the force-voltage / force-current
mappings used to translate mechanical networks into electrical equivalents.
"""

from .nature import (
    Nature,
    ELECTRICAL,
    MECHANICAL_TRANSLATION,
    MECHANICAL_ROTATION,
    HYDRAULIC,
    THERMAL,
    MECHANICAL1,
    get_nature,
    register_nature,
    all_natures,
)
from .variables import GeneralizedVariables, VariableRole, power, energy_increment
from .analogies import Analogy, FORCE_CURRENT, FORCE_VOLTAGE, AnalogMapping

__all__ = [
    "Nature",
    "ELECTRICAL",
    "MECHANICAL_TRANSLATION",
    "MECHANICAL_ROTATION",
    "HYDRAULIC",
    "THERMAL",
    "MECHANICAL1",
    "get_nature",
    "register_nature",
    "all_natures",
    "GeneralizedVariables",
    "VariableRole",
    "power",
    "energy_increment",
    "Analogy",
    "FORCE_CURRENT",
    "FORCE_VOLTAGE",
    "AnalogMapping",
]
