"""Global assembly and Dirichlet boundary conditions for the FE solver.

The stiffness assembly routes its COO triplet stream through
:class:`~repro.linalg.structure.StructureCache`: the triplet *pattern* of a
structured mesh depends only on its ``(nx, ny)`` topology, not on the
physical dimensions or the permittivity, so repeated solves -- a PXT
boundary-condition sweep re-meshing only the gap height, an optimization
loop iterating a geometry -- pay the sort-and-dedup COO->CSR reduction once
and every later assembly is a single ``bincount``.  Patterns are shared
process-wide per topology via :func:`structure_cache_for`; the cache
verifies the triplet arrays exactly, so a topology collision can only cost
a rebuild, never produce a wrong matrix.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import FEMError
from ..linalg import StructureCache
from .elements import element_stiffness
from .mesh import RectangularMesh

__all__ = ["assemble_stiffness", "apply_dirichlet", "structure_cache_for"]

#: Process-wide pattern caches keyed by mesh topology.  Bounded: topologies
#: beyond the cap evict the whole table (optimization sweeps cycle through a
#: handful of mesh densities, not hundreds).
_PATTERN_CACHES: dict[tuple[int, int], StructureCache] = {}
_PATTERN_CACHE_LIMIT = 32


def structure_cache_for(mesh: RectangularMesh) -> StructureCache:
    """The shared COO->CSR pattern cache for ``mesh``'s topology.

    Meshes with the same ``(nx, ny)`` divisions produce identical triplet
    patterns regardless of their physical size, so one cache serves every
    geometry variant of a sweep.
    """
    key = (mesh.nx, mesh.ny)
    cache = _PATTERN_CACHES.get(key)
    if cache is None:
        if len(_PATTERN_CACHES) >= _PATTERN_CACHE_LIMIT:
            _PATTERN_CACHES.clear()
        cache = StructureCache()
        _PATTERN_CACHES[key] = cache
    return cache


def assemble_stiffness(mesh: RectangularMesh,
                       permittivity: float | np.ndarray = 1.0,
                       structure_cache: StructureCache | None = None
                       ) -> sp.csr_matrix:
    """Assemble the global stiffness (Laplace) matrix of a structured mesh.

    ``permittivity`` is either a scalar or a per-element array, enabling
    layered dielectrics in the gap.  ``structure_cache`` overrides the
    process-wide per-topology pattern cache (pass a private instance to
    isolate a long-lived solver from unrelated assemblies).

    All elements of a structured rectangular mesh are congruent and the
    element stiffness is linear in the permittivity, so the ``(4, 4)``
    element matrix is integrated once and scaled per element; the returned
    CSR matrix shares its index structure with the pattern cache and should
    be treated as read-only (downstream consumers copy before mutating).
    """
    coords = mesh.node_coordinates()
    connectivity = np.asarray(mesh.element_connectivity(), dtype=np.intp)
    if np.isscalar(permittivity):
        eps = np.full(mesh.num_elements, float(permittivity))
    else:
        eps = np.asarray(permittivity, dtype=float)
        if eps.shape != (mesh.num_elements,):
            raise FEMError(
                f"per-element permittivity needs {mesh.num_elements} entries, got {eps.shape}")
    ke_unit = element_stiffness(coords[connectivity[0]], 1.0)
    values = eps[:, None, None] * ke_unit[None, :, :]
    # Triplet order matches the historical (element, a, b) nested loop.
    rows = np.repeat(connectivity, 4, axis=1).ravel()
    cols = np.tile(connectivity, (1, 4)).ravel()
    if structure_cache is None:
        structure_cache = structure_cache_for(mesh)
    return structure_cache.assemble(rows, cols, values.ravel(), mesh.num_nodes)


def apply_dirichlet(matrix: sp.csr_matrix, rhs: np.ndarray,
                    node_values: dict[int, float]) -> tuple[sp.csr_matrix, np.ndarray]:
    """Impose ``phi[node] = value`` constraints by row/column elimination.

    Returns the modified matrix and right-hand side (copies; the inputs are
    untouched).  The elimination keeps the matrix symmetric, which matters
    for the conjugate-gradient option of the solver.
    """
    if not node_values:
        raise FEMError("at least one Dirichlet constraint is required")
    matrix = matrix.tolil(copy=True)
    rhs = np.array(rhs, dtype=float, copy=True)
    n = matrix.shape[0]
    constrained = np.array(sorted(node_values), dtype=int)
    if constrained.min() < 0 or constrained.max() >= n:
        raise FEMError("Dirichlet node index out of range")
    values = np.array([node_values[int(node)] for node in constrained], dtype=float)
    # Move the known values to the right-hand side.
    csr = matrix.tocsr()
    rhs -= csr[:, constrained] @ values
    matrix = csr.tolil()
    for node, value in zip(constrained, values):
        matrix.rows[node] = [node]
        matrix.data[node] = [1.0]
        rhs[node] = value
    # Zero the columns of constrained nodes (except the diagonal already set).
    csr = matrix.tocsr()
    mask = np.ones(n, dtype=bool)
    mask[constrained] = False
    csc = csr.tocsc()
    for node in constrained:
        start, end = csc.indptr[node], csc.indptr[node + 1]
        for pos in range(start, end):
            row = csc.indices[pos]
            if row != node:
                csc.data[pos] = 0.0
    result = csc.tocsr()
    result.eliminate_zeros()
    return result, rhs
