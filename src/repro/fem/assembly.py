"""Global assembly and Dirichlet boundary conditions for the FE solver."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import FEMError
from .elements import element_stiffness
from .mesh import RectangularMesh

__all__ = ["assemble_stiffness", "apply_dirichlet"]


def assemble_stiffness(mesh: RectangularMesh,
                       permittivity: float | np.ndarray = 1.0) -> sp.csr_matrix:
    """Assemble the global stiffness (Laplace) matrix of a structured mesh.

    ``permittivity`` is either a scalar or a per-element array, enabling
    layered dielectrics in the gap.
    """
    coords = mesh.node_coordinates()
    connectivity = mesh.element_connectivity()
    if np.isscalar(permittivity):
        eps = np.full(mesh.num_elements, float(permittivity))
    else:
        eps = np.asarray(permittivity, dtype=float)
        if eps.shape != (mesh.num_elements,):
            raise FEMError(
                f"per-element permittivity needs {mesh.num_elements} entries, got {eps.shape}")
    rows: list[int] = []
    cols: list[int] = []
    values: list[float] = []
    for element, nodes in enumerate(connectivity):
        ke = element_stiffness(coords[nodes], eps[element])
        for a in range(4):
            for b in range(4):
                rows.append(int(nodes[a]))
                cols.append(int(nodes[b]))
                values.append(float(ke[a, b]))
    matrix = sp.coo_matrix((values, (rows, cols)),
                           shape=(mesh.num_nodes, mesh.num_nodes))
    return matrix.tocsr()


def apply_dirichlet(matrix: sp.csr_matrix, rhs: np.ndarray,
                    node_values: dict[int, float]) -> tuple[sp.csr_matrix, np.ndarray]:
    """Impose ``phi[node] = value`` constraints by row/column elimination.

    Returns the modified matrix and right-hand side (copies; the inputs are
    untouched).  The elimination keeps the matrix symmetric, which matters
    for the conjugate-gradient option of the solver.
    """
    if not node_values:
        raise FEMError("at least one Dirichlet constraint is required")
    matrix = matrix.tolil(copy=True)
    rhs = np.array(rhs, dtype=float, copy=True)
    n = matrix.shape[0]
    constrained = np.array(sorted(node_values), dtype=int)
    if constrained.min() < 0 or constrained.max() >= n:
        raise FEMError("Dirichlet node index out of range")
    values = np.array([node_values[int(node)] for node in constrained], dtype=float)
    # Move the known values to the right-hand side.
    csr = matrix.tocsr()
    rhs -= csr[:, constrained] @ values
    matrix = csr.tolil()
    for node, value in zip(constrained, values):
        matrix.rows[node] = [node]
        matrix.data[node] = [1.0]
        rhs[node] = value
    # Zero the columns of constrained nodes (except the diagonal already set).
    csr = matrix.tocsr()
    mask = np.ones(n, dtype=bool)
    mask[constrained] = False
    csc = csr.tocsc()
    for node in constrained:
        start, end = csc.indptr[node], csc.indptr[node + 1]
        for pos in range(start, end):
            row = csc.indices[pos]
            if row != node:
                csc.data[pos] = 0.0
    result = csc.tocsr()
    result.eliminate_zeros()
    return result, rhs
