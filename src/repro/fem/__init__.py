"""Finite-element substrate (the ANSYS substitute).

The paper characterizes devices with ANSYS field solutions and extracts
lumped parameters from them with PXT.  This package provides the minimum FE
capability those extractions need, implemented from scratch on numpy/scipy:

* :mod:`repro.fem.mesh` -- structured 2D quadrilateral meshes,
* :mod:`repro.fem.elements` -- bilinear quad element matrices for the Laplace
  / Poisson operator (electrostatics) with Gauss quadrature,
* :mod:`repro.fem.assembly` / :mod:`repro.fem.solver` -- sparse assembly,
  Dirichlet boundary conditions and the linear solve,
* :mod:`repro.fem.electrostatics` -- the parallel-plate field problem of
  figure 6: potential, field, energy, capacitance, electrode charge and the
  Maxwell-stress force integral,
* :mod:`repro.fem.structural` -- Euler-Bernoulli beam / spring-mass models
  for mechanical stiffness and modal extraction,
* :mod:`repro.fem.harmonic` -- harmonic (frequency-response) analysis used by
  PXT's data-flow model generation,
* :mod:`repro.fem.sensitivity` -- exact adjoint/direct output sensitivities
  of static and harmonic FE solves (assembly-level matrix derivatives +
  factorization-free transposed solves).
"""

from .mesh import RectangularMesh
from .electrostatics import ElectrostaticSolution, ParallelPlateProblem
from .structural import CantileverBeam, SpringMassChain
from .harmonic import (HarmonicResponse, harmonic_response,
                       interpolate_peak_frequency)
from .sensitivity import (harmonic_sensitivities, matrix_derivatives,
                          static_sensitivities)
from .solver import solve_generalized_eig, solve_sparse

__all__ = [
    "RectangularMesh",
    "ElectrostaticSolution",
    "ParallelPlateProblem",
    "CantileverBeam",
    "SpringMassChain",
    "HarmonicResponse",
    "harmonic_response",
    "harmonic_sensitivities",
    "interpolate_peak_frequency",
    "matrix_derivatives",
    "solve_sparse",
    "solve_generalized_eig",
    "static_sensitivities",
]
