"""Electrostatic field problem of the paper's figure 6.

The PXT screenshot of figure 6 shows ANSYS solving the electric field in the
gap of the transverse electrostatic transducer (no fringe field modelled) and
PXT integrating ``1/2 * eps * E^2`` over the movable electrode surface to
obtain the electrostatic force.  :class:`ParallelPlateProblem` reproduces
exactly that workflow on the structured FE mesh:

* the analysis domain is the rectangular gap cross-section
  (``plate width`` x ``gap``); the out-of-plane ``depth`` scales all
  integral quantities,
* the bottom edge is the grounded fixed plate, the top edge the movable
  electrode at the applied potential, the side edges are natural (zero
  normal field) boundaries -- the no-fringe-field assumption of the paper,
* post-processing provides the potential, element fields, stored energy,
  capacitance, electrode charge and the Maxwell-stress force integral
  ``F = 1/2 eps integral(E^2) dS`` of the paper's equation.

For the ideal parallel-plate geometry the FE solution is the uniform field
``E = V / gap``, so every extracted quantity can be verified against the
closed forms of Tables 2/3 -- which is what the figure-6 benchmark does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import EPSILON_0
from ..errors import FEMError
from .assembly import apply_dirichlet, assemble_stiffness
from .elements import element_gradient
from .mesh import RectangularMesh
from .solver import solve_sparse

__all__ = ["ElectrostaticSolution", "ParallelPlateProblem"]


@dataclass
class ElectrostaticSolution:
    """Post-processed result of one electrostatic FE solve."""

    mesh: RectangularMesh
    potential: np.ndarray
    #: (num_elements, 2) electric field at the element centroids [V/m].
    field: np.ndarray
    #: Out-of-plane depth used to scale integral quantities [m].
    depth: float
    #: Permittivity (eps0 * epsr) used in the solve [F/m].
    permittivity: float
    #: Applied electrode voltage [V].
    voltage: float

    @property
    def energy(self) -> float:
        """Stored field energy ``1/2 eps integral(E^2) dV`` [J]."""
        e_squared = np.sum(self.field ** 2, axis=1)
        return 0.5 * self.permittivity * float(np.sum(e_squared)) \
            * self.mesh.element_area() * self.depth

    @property
    def capacitance(self) -> float:
        """Capacitance from the stored energy, ``2 W / V^2`` [F]."""
        if self.voltage == 0.0:
            raise FEMError("capacitance from energy needs a non-zero voltage")
        return 2.0 * self.energy / (self.voltage * self.voltage)

    def electrode_charge(self) -> float:
        """Charge on the driven (top) electrode from the normal field [C].

        ``q = integral( eps * E_n ) dS`` over the electrode surface; the
        normal field is taken from the element row adjacent to the top edge.
        """
        field_y = self._top_row_normal_field()
        return self.permittivity * float(np.sum(field_y)) * self.mesh.dx * self.depth

    def electrode_force(self) -> float:
        """Maxwell-stress force on the movable electrode [N].

        Implements the paper's ``f = 1/2 integral( eps E^2 n ) dS`` over the
        electrode surface.  The force is attractive (directed from the
        movable electrode towards the fixed one); the magnitude is returned.
        """
        field_y = self._top_row_normal_field()
        return 0.5 * self.permittivity * float(np.sum(field_y ** 2)) \
            * self.mesh.dx * self.depth

    def _top_row_normal_field(self) -> np.ndarray:
        """Normal (y) field sampled in the element row touching the top edge."""
        field_y = self.field[:, 1]
        top_row = np.arange((self.mesh.ny - 1) * self.mesh.nx, self.mesh.num_elements)
        return np.abs(field_y[top_row])

    def field_magnitude(self) -> np.ndarray:
        """Per-element |E| [V/m]."""
        return np.sqrt(np.sum(self.field ** 2, axis=1))

    def uniform_field_estimate(self) -> float:
        """Mean |E| over the domain (equals V/gap for the ideal problem)."""
        return float(np.mean(self.field_magnitude()))


class ParallelPlateProblem:
    """Electrostatic FE model of the transverse transducer's gap region.

    Parameters
    ----------
    plate_width:
        In-plane width of the electrodes [m].
    gap:
        Electrode separation [m] (already including any displacement).
    depth:
        Out-of-plane depth [m]; ``plate_width * depth`` is the electrode
        area ``A`` of the lumped models.
    epsilon_r:
        Relative permittivity of the gap dielectric.
    nx, ny:
        Mesh divisions across the width and the gap.
    epsilon_0:
        Vacuum permittivity (paper value by default).
    """

    def __init__(self, plate_width: float, gap: float, depth: float,
                 epsilon_r: float = 1.0, nx: int = 24, ny: int = 16,
                 epsilon_0: float = EPSILON_0) -> None:
        if plate_width <= 0.0 or gap <= 0.0 or depth <= 0.0:
            raise FEMError("plate_width, gap and depth must be positive")
        if epsilon_r <= 0.0:
            raise FEMError("epsilon_r must be positive")
        self.plate_width = float(plate_width)
        self.gap = float(gap)
        self.depth = float(depth)
        self.epsilon_r = float(epsilon_r)
        self.epsilon_0 = float(epsilon_0)
        self.mesh = RectangularMesh(width=self.plate_width, height=self.gap, nx=nx, ny=ny)

    @classmethod
    def from_area(cls, area: float, gap: float, epsilon_r: float = 1.0,
                  aspect: float = 1.0, **kwargs) -> "ParallelPlateProblem":
        """Build the problem from an electrode area (square plate by default)."""
        if area <= 0.0:
            raise FEMError("area must be positive")
        width = float(np.sqrt(area * aspect))
        depth = area / width
        return cls(plate_width=width, gap=gap, depth=depth, epsilon_r=epsilon_r, **kwargs)

    @property
    def area(self) -> float:
        """Electrode area ``plate_width * depth`` [m^2]."""
        return self.plate_width * self.depth

    @property
    def permittivity(self) -> float:
        """Absolute permittivity ``eps0 * epsr`` [F/m]."""
        return self.epsilon_0 * self.epsilon_r

    def analytic_capacitance(self) -> float:
        """Fringe-free capacitance ``eps A / gap`` for cross-checks."""
        return self.permittivity * self.area / self.gap

    def analytic_force(self, voltage: float) -> float:
        """Fringe-free attractive force ``eps A V^2 / (2 gap^2)``."""
        return 0.5 * self.permittivity * self.area * voltage * voltage / (self.gap * self.gap)

    def solve(self, voltage: float, method: str = "direct") -> ElectrostaticSolution:
        """Solve the potential problem with the top electrode at ``voltage``."""
        mesh = self.mesh
        stiffness = assemble_stiffness(mesh, permittivity=self.permittivity)
        rhs = np.zeros(mesh.num_nodes)
        constraints: dict[int, float] = {}
        for node in mesh.bottom_nodes():
            constraints[int(node)] = 0.0
        for node in mesh.top_nodes():
            constraints[int(node)] = float(voltage)
        matrix, rhs = apply_dirichlet(stiffness, rhs, constraints)
        potential = solve_sparse(matrix, rhs, method=method)
        coords = mesh.node_coordinates()
        connectivity = mesh.element_connectivity()
        field = np.zeros((mesh.num_elements, 2))
        for element, nodes in enumerate(connectivity):
            gradient = element_gradient(coords[nodes], potential[nodes])
            field[element] = -gradient
        return ElectrostaticSolution(
            mesh=mesh, potential=potential, field=field, depth=self.depth,
            permittivity=self.permittivity, voltage=float(voltage))
