"""Bilinear quadrilateral element matrices for scalar field problems.

The electrostatic problems solved here are Laplace/Poisson equations for the
potential ``phi`` with element-wise constant permittivity::

    div( eps grad(phi) ) = 0

The 4-node bilinear quad uses the standard isoparametric shape functions on
the reference square ``xi, eta in [-1, 1]`` and 2x2 Gauss quadrature, which
integrates the stiffness matrix exactly for rectangular elements (the only
shape produced by :class:`~repro.fem.mesh.RectangularMesh`).
"""

from __future__ import annotations

import numpy as np

from ..errors import FEMError

__all__ = [
    "GAUSS_POINTS_2X2",
    "shape_functions",
    "shape_function_derivatives",
    "element_stiffness",
    "element_mass",
    "element_gradient",
]

_G = 1.0 / np.sqrt(3.0)
#: 2x2 Gauss points (xi, eta) and weights on the reference square.
GAUSS_POINTS_2X2: tuple[tuple[float, float, float], ...] = (
    (-_G, -_G, 1.0),
    (_G, -_G, 1.0),
    (_G, _G, 1.0),
    (-_G, _G, 1.0),
)


def shape_functions(xi: float, eta: float) -> np.ndarray:
    """Bilinear shape functions N1..N4 at a reference point (CCW node order)."""
    return 0.25 * np.array([
        (1.0 - xi) * (1.0 - eta),
        (1.0 + xi) * (1.0 - eta),
        (1.0 + xi) * (1.0 + eta),
        (1.0 - xi) * (1.0 + eta),
    ])


def shape_function_derivatives(xi: float, eta: float) -> np.ndarray:
    """(2, 4) derivatives of the shape functions w.r.t. (xi, eta)."""
    return 0.25 * np.array([
        [-(1.0 - eta), (1.0 - eta), (1.0 + eta), -(1.0 + eta)],
        [-(1.0 - xi), -(1.0 + xi), (1.0 + xi), (1.0 - xi)],
    ])


def _jacobian(coords: np.ndarray, dshape: np.ndarray) -> tuple[np.ndarray, float]:
    jac = dshape @ coords  # (2, 2)
    det = float(np.linalg.det(jac))
    if det <= 0.0:
        raise FEMError("element Jacobian is not positive (bad node ordering?)")
    return jac, det


def element_stiffness(coords: np.ndarray, permittivity: float = 1.0) -> np.ndarray:
    """(4, 4) stiffness matrix ``integral( eps grad(N)^T grad(N) dA )``.

    ``coords`` is the (4, 2) array of corner coordinates in CCW order.
    """
    coords = np.asarray(coords, dtype=float)
    if coords.shape != (4, 2):
        raise FEMError("element_stiffness expects 4 corner coordinates")
    stiffness = np.zeros((4, 4))
    for xi, eta, weight in GAUSS_POINTS_2X2:
        dshape = shape_function_derivatives(xi, eta)
        jac, det = _jacobian(coords, dshape)
        grad = np.linalg.solve(jac, dshape)  # (2, 4) derivatives w.r.t. x, y
        stiffness += weight * permittivity * det * (grad.T @ grad)
    return stiffness


def element_mass(coords: np.ndarray, density: float = 1.0) -> np.ndarray:
    """(4, 4) consistent mass matrix ``integral( rho N^T N dA )``."""
    coords = np.asarray(coords, dtype=float)
    if coords.shape != (4, 2):
        raise FEMError("element_mass expects 4 corner coordinates")
    mass = np.zeros((4, 4))
    for xi, eta, weight in GAUSS_POINTS_2X2:
        shapes = shape_functions(xi, eta)
        dshape = shape_function_derivatives(xi, eta)
        _, det = _jacobian(coords, dshape)
        mass += weight * density * det * np.outer(shapes, shapes)
    return mass


def element_gradient(coords: np.ndarray, nodal_values: np.ndarray,
                     xi: float = 0.0, eta: float = 0.0) -> np.ndarray:
    """Gradient of the interpolated field at a reference point (default: centroid)."""
    coords = np.asarray(coords, dtype=float)
    nodal_values = np.asarray(nodal_values, dtype=float)
    if coords.shape != (4, 2) or nodal_values.shape != (4,):
        raise FEMError("element_gradient expects 4 corners and 4 nodal values")
    dshape = shape_function_derivatives(xi, eta)
    jac, _ = _jacobian(coords, dshape)
    grad_ref = dshape @ nodal_values
    return np.linalg.solve(jac, grad_ref)
