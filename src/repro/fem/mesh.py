"""Structured 2D rectangular meshes of bilinear quadrilateral elements.

The electrostatic problems of figure 6 are solved on the rectangular gap
region between the electrodes, so a structured mesh is sufficient and keeps
the node numbering trivial: node ``(i, j)`` (column ``i`` along x, row ``j``
along y) has index ``j * (nx + 1) + i``.  Elements are numbered row-major the
same way and store their four corner nodes counter-clockwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MeshError

__all__ = ["RectangularMesh"]


@dataclass(frozen=True)
class RectangularMesh:
    """A structured quadrilateral mesh of the rectangle [0, width] x [0, height].

    Attributes
    ----------
    width, height:
        Physical dimensions [m].
    nx, ny:
        Number of elements along x and y (so ``(nx+1)*(ny+1)`` nodes).
    """

    width: float
    height: float
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.width <= 0.0 or self.height <= 0.0:
            raise MeshError("mesh dimensions must be positive")
        if self.nx < 1 or self.ny < 1:
            raise MeshError("the mesh needs at least one element in each direction")

    # ------------------------------------------------------------------ sizes
    @property
    def num_nodes(self) -> int:
        """Total number of nodes."""
        return (self.nx + 1) * (self.ny + 1)

    @property
    def num_elements(self) -> int:
        """Total number of elements."""
        return self.nx * self.ny

    @property
    def dx(self) -> float:
        """Element width along x."""
        return self.width / self.nx

    @property
    def dy(self) -> float:
        """Element height along y."""
        return self.height / self.ny

    # ------------------------------------------------------------------ nodes
    def node_index(self, i: int, j: int) -> int:
        """Index of the node in column ``i`` (x) and row ``j`` (y)."""
        if not (0 <= i <= self.nx and 0 <= j <= self.ny):
            raise MeshError(f"node ({i}, {j}) outside mesh {self.nx}x{self.ny}")
        return j * (self.nx + 1) + i

    def node_coordinates(self) -> np.ndarray:
        """(num_nodes, 2) array of node coordinates."""
        xs = np.linspace(0.0, self.width, self.nx + 1)
        ys = np.linspace(0.0, self.height, self.ny + 1)
        grid_x, grid_y = np.meshgrid(xs, ys)
        return np.column_stack([grid_x.ravel(), grid_y.ravel()])

    # ---------------------------------------------------------------- elements
    def element_connectivity(self) -> np.ndarray:
        """(num_elements, 4) corner-node indices, counter-clockwise."""
        connectivity = np.zeros((self.num_elements, 4), dtype=int)
        element = 0
        for j in range(self.ny):
            for i in range(self.nx):
                n0 = self.node_index(i, j)
                n1 = self.node_index(i + 1, j)
                n2 = self.node_index(i + 1, j + 1)
                n3 = self.node_index(i, j + 1)
                connectivity[element] = (n0, n1, n2, n3)
                element += 1
        return connectivity

    def element_centroids(self) -> np.ndarray:
        """(num_elements, 2) element centroid coordinates."""
        coords = self.node_coordinates()
        connectivity = self.element_connectivity()
        return coords[connectivity].mean(axis=1)

    def element_area(self) -> float:
        """Area of one element (uniform for a structured mesh)."""
        return self.dx * self.dy

    # ---------------------------------------------------------------- boundaries
    def bottom_nodes(self) -> np.ndarray:
        """Node indices on the y = 0 edge."""
        return np.array([self.node_index(i, 0) for i in range(self.nx + 1)], dtype=int)

    def top_nodes(self) -> np.ndarray:
        """Node indices on the y = height edge."""
        return np.array([self.node_index(i, self.ny) for i in range(self.nx + 1)], dtype=int)

    def left_nodes(self) -> np.ndarray:
        """Node indices on the x = 0 edge."""
        return np.array([self.node_index(0, j) for j in range(self.ny + 1)], dtype=int)

    def right_nodes(self) -> np.ndarray:
        """Node indices on the x = width edge."""
        return np.array([self.node_index(self.nx, j) for j in range(self.ny + 1)], dtype=int)

    def nodes_where(self, predicate) -> np.ndarray:
        """Indices of nodes whose (x, y) coordinates satisfy ``predicate``."""
        coords = self.node_coordinates()
        mask = np.array([bool(predicate(x, y)) for x, y in coords])
        return np.nonzero(mask)[0]

    def refined(self, factor: int = 2) -> "RectangularMesh":
        """A mesh with ``factor`` times more elements in each direction."""
        if factor < 1:
            raise MeshError("refinement factor must be >= 1")
        return RectangularMesh(self.width, self.height, self.nx * factor, self.ny * factor)
