"""Sparse linear solves and eigensolves for the FE problems.

The plain linear solves are thin wrappers over :mod:`repro.linalg` -- the
shared factorization-caching solver core -- keeping the historical FE-facing
signature and :class:`~repro.errors.FEMError` semantics.  Callers that solve
the same matrix repeatedly should hold a
:class:`~repro.linalg.FactorizedSolver` factorization (or a
:class:`~repro.linalg.FactorizationCache`) instead of calling
:func:`solve_sparse` per right-hand side.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from .. import telemetry
from ..errors import FEMError, LinAlgError
from ..linalg import FactorizedSolver

__all__ = ["solve_sparse", "solve_generalized_eig"]


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray, method: str = "direct",
                 rtol: float = 1e-10) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` with a sparse direct or iterative method.

    ``method`` is ``"direct"`` (SuperLU, default) or ``"cg"`` (conjugate
    gradients with a Jacobi preconditioner -- the assembled Laplace matrices
    are symmetric positive definite after Dirichlet elimination).  ``rtol``
    is the relative tolerance of the iterative method.  A non-converging CG
    iteration raises (no silent fallback): the FE callers choose ``"cg"``
    deliberately and the failure usually indicates a modelling error.
    """
    rhs = np.asarray(rhs, dtype=float)
    if matrix.shape[0] != matrix.shape[1]:
        raise FEMError("system matrix must be square")
    if rhs.shape != (matrix.shape[0],):
        raise FEMError(
            f"right-hand side has shape {rhs.shape}, expected ({matrix.shape[0]},)")
    if method not in ("direct", "cg"):
        raise FEMError(f"unknown solve method {method!r} (use 'direct' or 'cg')")
    solver = FactorizedSolver("superlu" if method == "direct" else "cg",
                              rtol=rtol, cg_fallback=False)
    try:
        with telemetry.span("fem.solve", method=method, size=int(matrix.shape[0])):
            return solver.solve(sp.csr_matrix(matrix), rhs)
    except LinAlgError as exc:
        # The failure path always captures forensics (no knob: FE callers
        # have no SimulationOptions, and the diagnosis only runs on failure).
        message = f"sparse {method} solve failed: {exc}"
        report = telemetry.forensics.newton_failure(
            kind="fem", analysis=f"fem.{method}", message=message,
            error_type="FEMError", matrix=matrix,
            context={"size": int(matrix.shape[0]), "rtol": rtol})
        error = FEMError(message)
        error.report = report
        raise error from exc


def solve_generalized_eig(stiffness, mass, count: int, *,
                          method: str = "auto",
                          sigma: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """The ``count`` eigenpairs of ``K phi = lambda M phi`` nearest ``sigma``.

    With the default ``sigma = 0.0`` (and positive-semidefinite ``K``) these
    are the lowest modes.  The returned eigenvalues are ascending
    (``lambda = omega^2`` for a structural system) and the eigenvectors are
    mass-normalized columns (``phi.T @ M @ phi == I``) with a deterministic
    sign convention (the largest-magnitude component of each mode is
    positive).  Both paths honour ``sigma``, so the selected modes do not
    depend on which algorithm runs.

    ``method`` selects the algorithm: ``"dense"`` (LAPACK ``eigh`` on
    densified matrices), ``"sparse"`` (ARPACK shift-invert about ``sigma``,
    appropriate for large sparse systems where only a few modes are needed)
    or ``"auto"`` which picks the sparse path only when both matrices are
    sparse and the requested mode count is a small fraction of the system.
    """
    n = stiffness.shape[0]
    if stiffness.shape != (n, n) or mass.shape != (n, n):
        raise FEMError(
            f"stiffness and mass must be square and matching, got "
            f"{stiffness.shape} and {mass.shape}")
    if count < 1 or count > n:
        raise FEMError(f"requested {count} modes of a {n}-DOF system")
    if method not in ("auto", "dense", "sparse"):
        raise FEMError(f"unknown eigensolve method {method!r} "
                       "(use 'auto', 'dense' or 'sparse')")
    is_sparse = sp.issparse(stiffness) and sp.issparse(mass)
    if method == "auto":
        # ARPACK needs count < n and only wins when few modes are wanted.
        method = "sparse" if is_sparse and count < max(1, n // 4) else "dense"
    if method == "sparse" and count >= n:
        method = "dense"
    with telemetry.span("fem.eig", method=method, count=int(count), size=int(n)):
        if method == "dense":
            k_dense = stiffness.toarray() if sp.issparse(stiffness) else np.asarray(
                stiffness, dtype=float)
            m_dense = mass.toarray() if sp.issparse(mass) else np.asarray(mass, dtype=float)
            def _nearest_sigma():
                # Full decomposition, then keep the modes nearest the shift
                # (matching the sparse shift-invert selection), re-sorted
                # ascending.
                all_values, all_vectors = la.eigh(k_dense, m_dense)
                nearest = np.argsort(np.abs(all_values - sigma))[:count]
                nearest = nearest[np.argsort(all_values[nearest])]
                return all_values[nearest], all_vectors[:, nearest]

            try:
                if sigma == 0.0:
                    values, vectors = la.eigh(k_dense, m_dense,
                                              subset_by_index=[0, count - 1])
                    if values[0] < 0.0:
                        # Indefinite K (buckling/prestress): "lowest" is not
                        # "nearest zero", so redo with the uniform selection.
                        values, vectors = _nearest_sigma()
                else:
                    values, vectors = _nearest_sigma()
            except la.LinAlgError as exc:
                raise FEMError(f"generalized eigensolve failed: {exc}") from exc
        else:
            k_sparse = sp.csc_matrix(stiffness)
            m_sparse = sp.csc_matrix(mass)
            try:
                values, vectors = spla.eigsh(k_sparse, k=count, M=m_sparse,
                                             sigma=sigma, which="LM",
                                             mode="normal")
            except (spla.ArpackError, RuntimeError) as exc:
                raise FEMError(f"sparse shift-invert eigensolve failed: {exc}") from exc
            order = np.argsort(values)
            values = values[order]
            vectors = vectors[:, order]
    # eigh/eigsh already M-orthonormalize; fix the sign for determinism.
    for j in range(vectors.shape[1]):
        pivot = int(np.argmax(np.abs(vectors[:, j])))
        if vectors[pivot, j] < 0.0:
            vectors[:, j] = -vectors[:, j]
    return np.asarray(values, dtype=float), np.asarray(vectors, dtype=float)
