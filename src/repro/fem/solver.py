"""Sparse linear solves for the FE problems."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..errors import FEMError

__all__ = ["solve_sparse"]


def solve_sparse(matrix: sp.spmatrix, rhs: np.ndarray, method: str = "direct",
                 rtol: float = 1e-10) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` with a sparse direct or iterative method.

    ``method`` is ``"direct"`` (SuperLU, default) or ``"cg"`` (conjugate
    gradients with a Jacobi preconditioner -- the assembled Laplace matrices
    are symmetric positive definite after Dirichlet elimination).  ``rtol``
    is the relative tolerance of the iterative method.
    """
    rhs = np.asarray(rhs, dtype=float)
    if matrix.shape[0] != matrix.shape[1]:
        raise FEMError("system matrix must be square")
    if rhs.shape != (matrix.shape[0],):
        raise FEMError(
            f"right-hand side has shape {rhs.shape}, expected ({matrix.shape[0]},)")
    if method == "direct":
        try:
            solution = spla.spsolve(matrix.tocsr(), rhs)
        except RuntimeError as exc:  # pragma: no cover - SuperLU failure path
            raise FEMError(f"sparse direct solve failed: {exc}") from exc
        if not np.all(np.isfinite(solution)):
            raise FEMError("sparse direct solve produced non-finite values "
                           "(singular system; missing boundary conditions?)")
        return np.asarray(solution, dtype=float)
    if method == "cg":
        diagonal = matrix.diagonal()
        if np.any(diagonal == 0.0):
            raise FEMError("zero diagonal entry; cannot build Jacobi preconditioner")
        preconditioner = spla.LinearOperator(
            matrix.shape, matvec=lambda x: x / diagonal)
        solution, info = spla.cg(matrix.tocsr(), rhs, rtol=rtol, maxiter=20000,
                                 M=preconditioner)
        if info != 0:
            raise FEMError(f"conjugate-gradient solve did not converge (info={info})")
        return np.asarray(solution, dtype=float)
    raise FEMError(f"unknown solve method {method!r} (use 'direct' or 'cg')")
