"""Harmonic (frequency-response) analysis of structural FE models.

The paper's PXT uses harmonic FE analyses to build data-flow macromodels:
"Harmonic FE analysis produces real and imaginary data of DOFs as discrete
functions of frequencies, i.e. the frequency response (amplitude and phase).
A polynomial filter is fitted to such a macro model."  This module produces
those discrete complex responses; :mod:`repro.pxt.fitting` does the fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import FEMError, LinAlgError
from ..linalg import FactorizedSolver

__all__ = ["HarmonicResponse", "harmonic_response",
           "interpolate_peak_frequency"]


def interpolate_peak_frequency(frequencies: np.ndarray,
                               magnitudes: np.ndarray) -> float:
    """Sub-grid peak frequency from a sampled magnitude response.

    Refines the grid maximum with a parabola through the peak sample and its
    two neighbours on log-magnitude (locally parabolic for a resonance),
    using the non-uniform three-point vertex formula so linear and
    logarithmic grids are both handled without bias.  Falls back to the raw
    grid point when the peak sits on a boundary, a neighbour is
    non-positive, or the fitted parabola is not concave.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    magnitudes = np.asarray(magnitudes, dtype=float)
    peak = int(np.argmax(magnitudes))
    if peak == 0 or peak == magnitudes.size - 1:
        return float(frequencies[peak])
    left, mid, right = magnitudes[peak - 1:peak + 2]
    if left <= 0.0 or mid <= 0.0 or right <= 0.0:
        return float(frequencies[peak])
    x0, x1, x2 = frequencies[peak - 1:peak + 2]
    y0, y1, y2 = np.log(left), np.log(mid), np.log(right)
    # Vertex of the parabola through three unequally spaced points.
    h01, h12 = x1 - x0, x2 - x1
    numerator = h01 * h01 * (y1 - y2) - h12 * h12 * (y1 - y0)
    denominator = h01 * (y1 - y2) + h12 * (y1 - y0)
    if denominator <= 0.0:  # not a concave fit around the sample maximum
        return float(x1)
    vertex = x1 - 0.5 * numerator / denominator
    return float(np.clip(vertex, x0, x2))


@dataclass
class HarmonicResponse:
    """Complex frequency response of selected DOFs of a structural model."""

    frequencies: np.ndarray
    #: (num_frequencies, num_dofs) complex displacement amplitudes.
    displacements: np.ndarray
    #: Index of the driven DOF.
    drive_dof: int

    def dof(self, index: int) -> np.ndarray:
        """Complex response of one DOF over frequency."""
        return self.displacements[:, index]

    def magnitude(self, index: int) -> np.ndarray:
        """Amplitude of one DOF over frequency."""
        return np.abs(self.dof(index))

    def phase_deg(self, index: int) -> np.ndarray:
        """Phase of one DOF over frequency [degrees]."""
        return np.degrees(np.angle(self.dof(index)))

    def resonance_frequency(self, index: int | None = None) -> float:
        """Frequency of the amplitude peak of a DOF (default: driven DOF).

        Refined to sub-grid resolution by
        :func:`interpolate_peak_frequency`.
        """
        index = self.drive_dof if index is None else index
        return interpolate_peak_frequency(self.frequencies,
                                          self.magnitude(index))

    def static_compliance(self, index: int | None = None) -> float:
        """Low-frequency limit of the response (per unit drive force) [m/N]."""
        index = self.drive_dof if index is None else index
        return float(np.abs(self.displacements[0, index]))


def harmonic_response(mass: np.ndarray, damping: np.ndarray, stiffness: np.ndarray,
                      frequencies: Iterable[float], drive_dof: int = -1,
                      force_amplitude: float = 1.0, method: str = "full",
                      rom_order: int = 10) -> HarmonicResponse:
    """Solve ``(K + j w C - w^2 M) u = F`` over a frequency grid.

    ``drive_dof`` selects where the unit (or ``force_amplitude``) harmonic
    force is applied; negative indices follow numpy conventions.

    ``method`` selects the solver: ``"full"`` factorizes the full ``n x n``
    dynamic-stiffness matrix at every frequency, ``"rom"`` first projects the
    system onto an order-``rom_order`` modal basis (:func:`repro.rom.modal_rom`
    with its default static-correction augmentation: ``rom_order - 1`` of the
    lowest mass-normalized modes plus the static response of the drive) and
    sweeps the small reduced system -- one eigensolve up front, then
    ``r x r`` solves per frequency, which is how the PXT flow amortizes
    dense FE cost over large frequency grids.
    """
    mass = np.asarray(mass, dtype=float)
    damping = np.asarray(damping, dtype=float)
    stiffness = np.asarray(stiffness, dtype=float)
    n = mass.shape[0]
    for name, matrix in (("mass", mass), ("damping", damping), ("stiffness", stiffness)):
        if matrix.shape != (n, n):
            raise FEMError(f"{name} matrix must be {n}x{n}, got {matrix.shape}")
    frequencies = np.asarray(list(frequencies), dtype=float)
    if frequencies.size == 0:
        raise FEMError("harmonic analysis needs at least one frequency")
    if np.any(frequencies < 0.0):
        raise FEMError("frequencies must be non-negative")
    drive = int(np.arange(n)[drive_dof])
    if method == "rom":
        # Local import: repro.rom builds on fem.solver, so importing it at
        # module scope would be circular through the fem package __init__.
        from ..rom.modal import modal_rom

        rom = modal_rom(mass, stiffness, damping=damping,
                        order=min(int(rom_order), n), inputs=drive)
        responses = force_amplitude * rom.harmonic(frequencies)
        return HarmonicResponse(frequencies=frequencies,
                                displacements=np.asarray(responses, dtype=complex),
                                drive_dof=drive)
    if method != "full":
        raise FEMError(f"unknown harmonic method {method!r} (use 'full' or 'rom')")
    force = np.zeros(n, dtype=complex)
    force[drive] = force_amplitude
    responses = np.zeros((frequencies.size, n), dtype=complex)
    solver = FactorizedSolver("dense")
    for k, frequency in enumerate(frequencies):
        omega = 2.0 * np.pi * frequency
        dynamic = stiffness + 1j * omega * damping - omega * omega * mass
        try:
            responses[k] = solver.solve(dynamic, force)
        except LinAlgError as exc:
            raise FEMError(
                f"harmonic solve failed at f={frequency:g} Hz (resonance of an "
                f"undamped mode?): {exc}") from exc
    return HarmonicResponse(frequencies=frequencies, displacements=responses,
                            drive_dof=drive)
