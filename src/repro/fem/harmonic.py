"""Harmonic (frequency-response) analysis of structural FE models.

The paper's PXT uses harmonic FE analyses to build data-flow macromodels:
"Harmonic FE analysis produces real and imaginary data of DOFs as discrete
functions of frequencies, i.e. the frequency response (amplitude and phase).
A polynomial filter is fitted to such a macro model."  This module produces
those discrete complex responses; :mod:`repro.pxt.fitting` does the fitting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..errors import FEMError

__all__ = ["HarmonicResponse", "harmonic_response"]


@dataclass
class HarmonicResponse:
    """Complex frequency response of selected DOFs of a structural model."""

    frequencies: np.ndarray
    #: (num_frequencies, num_dofs) complex displacement amplitudes.
    displacements: np.ndarray
    #: Index of the driven DOF.
    drive_dof: int

    def dof(self, index: int) -> np.ndarray:
        """Complex response of one DOF over frequency."""
        return self.displacements[:, index]

    def magnitude(self, index: int) -> np.ndarray:
        """Amplitude of one DOF over frequency."""
        return np.abs(self.dof(index))

    def phase_deg(self, index: int) -> np.ndarray:
        """Phase of one DOF over frequency [degrees]."""
        return np.degrees(np.angle(self.dof(index)))

    def resonance_frequency(self, index: int | None = None) -> float:
        """Frequency of the amplitude peak of a DOF (default: driven DOF)."""
        index = self.drive_dof if index is None else index
        peak = int(np.argmax(self.magnitude(index)))
        return float(self.frequencies[peak])

    def static_compliance(self, index: int | None = None) -> float:
        """Low-frequency limit of the response (per unit drive force) [m/N]."""
        index = self.drive_dof if index is None else index
        return float(np.abs(self.displacements[0, index]))


def harmonic_response(mass: np.ndarray, damping: np.ndarray, stiffness: np.ndarray,
                      frequencies: Iterable[float], drive_dof: int = -1,
                      force_amplitude: float = 1.0) -> HarmonicResponse:
    """Solve ``(K + j w C - w^2 M) u = F`` over a frequency grid.

    ``drive_dof`` selects where the unit (or ``force_amplitude``) harmonic
    force is applied; negative indices follow numpy conventions.
    """
    mass = np.asarray(mass, dtype=float)
    damping = np.asarray(damping, dtype=float)
    stiffness = np.asarray(stiffness, dtype=float)
    n = mass.shape[0]
    for name, matrix in (("mass", mass), ("damping", damping), ("stiffness", stiffness)):
        if matrix.shape != (n, n):
            raise FEMError(f"{name} matrix must be {n}x{n}, got {matrix.shape}")
    frequencies = np.asarray(list(frequencies), dtype=float)
    if frequencies.size == 0:
        raise FEMError("harmonic analysis needs at least one frequency")
    if np.any(frequencies < 0.0):
        raise FEMError("frequencies must be non-negative")
    drive = int(np.arange(n)[drive_dof])
    force = np.zeros(n, dtype=complex)
    force[drive] = force_amplitude
    responses = np.zeros((frequencies.size, n), dtype=complex)
    for k, frequency in enumerate(frequencies):
        omega = 2.0 * np.pi * frequency
        dynamic = stiffness + 1j * omega * damping - omega * omega * mass
        try:
            responses[k] = np.linalg.solve(dynamic, force)
        except np.linalg.LinAlgError as exc:
            raise FEMError(
                f"harmonic solve failed at f={frequency:g} Hz (resonance of an "
                f"undamped mode?): {exc}") from exc
    return HarmonicResponse(frequencies=frequencies, displacements=responses,
                            drive_dof=drive)
