"""Structural finite elements: cantilever beams and spring-mass chains.

MEMS suspensions are usually beams; the paper's PXT extracts mechanical
macro-parameters (stiffness, modal data) from structural FE models.  Two
small structural models are provided:

* :class:`CantileverBeam` -- Euler-Bernoulli beam elements with the standard
  cubic Hermite shape functions, clamped at one end.  Static tip stiffness
  and the first natural frequencies are available and can be compared with
  the textbook closed forms (``k = 3EI/L^3``,
  ``f1 = (1.875^2 / 2 pi) sqrt(EI / (rho A L^4))``).
* :class:`SpringMassChain` -- a lumped chain of masses and springs used by
  the harmonic-analysis tests and by PXT's frequency-response fitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as la

from ..errors import FEMError, LinAlgError
from ..linalg import FactorizedSolver

__all__ = ["CantileverBeam", "SpringMassChain"]


class CantileverBeam:
    """Euler-Bernoulli cantilever discretised into 2-DOF-per-node beam elements.

    Parameters
    ----------
    length:
        Beam length [m].
    width, thickness:
        Rectangular cross-section dimensions [m]; bending is about the axis
        parallel to ``width`` (thickness enters the inertia cubed).
    youngs_modulus:
        Young's modulus [Pa].
    density:
        Mass density [kg/m^3].
    elements:
        Number of beam elements along the length.
    """

    def __init__(self, length: float, width: float, thickness: float,
                 youngs_modulus: float, density: float, elements: int = 16) -> None:
        if min(length, width, thickness, youngs_modulus, density) <= 0.0:
            raise FEMError("all beam parameters must be positive")
        if elements < 1:
            raise FEMError("at least one beam element is required")
        self.length = float(length)
        self.width = float(width)
        self.thickness = float(thickness)
        self.youngs_modulus = float(youngs_modulus)
        self.density = float(density)
        self.elements = int(elements)

    # ------------------------------------------------------------------ section
    @property
    def area(self) -> float:
        """Cross-section area [m^2]."""
        return self.width * self.thickness

    @property
    def inertia(self) -> float:
        """Second moment of area ``w t^3 / 12`` [m^4]."""
        return self.width * self.thickness ** 3 / 12.0

    def analytic_tip_stiffness(self) -> float:
        """Closed-form static tip stiffness ``3 E I / L^3`` [N/m]."""
        return 3.0 * self.youngs_modulus * self.inertia / self.length ** 3

    def analytic_first_frequency(self) -> float:
        """Closed-form first bending frequency of a cantilever [Hz]."""
        beta_l = 1.8751040687119611
        omega = beta_l ** 2 * np.sqrt(
            self.youngs_modulus * self.inertia
            / (self.density * self.area * self.length ** 4))
        return float(omega / (2.0 * np.pi))

    # ------------------------------------------------------------------ matrices
    def _element_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        le = self.length / self.elements
        ei = self.youngs_modulus * self.inertia
        k = ei / le ** 3 * np.array([
            [12.0, 6.0 * le, -12.0, 6.0 * le],
            [6.0 * le, 4.0 * le ** 2, -6.0 * le, 2.0 * le ** 2],
            [-12.0, -6.0 * le, 12.0, -6.0 * le],
            [6.0 * le, 2.0 * le ** 2, -6.0 * le, 4.0 * le ** 2],
        ])
        rho_a = self.density * self.area
        m = rho_a * le / 420.0 * np.array([
            [156.0, 22.0 * le, 54.0, -13.0 * le],
            [22.0 * le, 4.0 * le ** 2, 13.0 * le, -3.0 * le ** 2],
            [54.0, 13.0 * le, 156.0, -22.0 * le],
            [-13.0 * le, -3.0 * le ** 2, -22.0 * le, 4.0 * le ** 2],
        ])
        return k, m

    def assemble(self) -> tuple[np.ndarray, np.ndarray]:
        """Assemble the clamped (cantilever) stiffness and mass matrices.

        DOFs per node are (deflection, rotation); the clamped node's DOFs are
        eliminated, so the returned matrices have ``2 * elements`` DOFs with
        the tip deflection at index ``-2``.
        """
        ndof = 2 * (self.elements + 1)
        stiffness = np.zeros((ndof, ndof))
        mass = np.zeros((ndof, ndof))
        ke, me = self._element_matrices()
        for element in range(self.elements):
            dofs = np.arange(2 * element, 2 * element + 4)
            stiffness[np.ix_(dofs, dofs)] += ke
            mass[np.ix_(dofs, dofs)] += me
        free = np.arange(2, ndof)
        return stiffness[np.ix_(free, free)], mass[np.ix_(free, free)]

    # ------------------------------------------------------------------ results
    def tip_stiffness(self) -> float:
        """Static tip stiffness from a unit tip force [N/m]."""
        stiffness, _ = self.assemble()
        force = np.zeros(stiffness.shape[0])
        force[-2] = 1.0
        try:
            deflection = FactorizedSolver("dense").solve(stiffness, force)
        except LinAlgError as exc:
            raise FEMError(f"static tip solve failed: {exc}") from exc
        return 1.0 / float(deflection[-2])

    def tip_deflection(self, force: float) -> float:
        """Static tip deflection under a point force at the tip [m]."""
        return force / self.tip_stiffness()

    def natural_frequencies(self, count: int = 3) -> np.ndarray:
        """First ``count`` natural frequencies [Hz] from the generalized EVP."""
        stiffness, mass = self.assemble()
        eigenvalues = la.eigh(stiffness, mass, eigvals_only=True)
        eigenvalues = np.clip(eigenvalues, 0.0, None)
        frequencies = np.sqrt(eigenvalues) / (2.0 * np.pi)
        return frequencies[:count]

    def effective_mass(self) -> float:
        """Modal (effective) mass of the first mode referred to the tip [kg].

        Computed from the first natural frequency and the static tip
        stiffness, ``m_eff = k_tip / omega_1^2`` -- the quantity a lumped
        mass-spring model of the beam should use.
        """
        f1 = float(self.natural_frequencies(1)[0])
        return self.tip_stiffness() / (2.0 * np.pi * f1) ** 2


@dataclass
class SpringMassChain:
    """A chain of point masses connected by springs (and dampers) to ground.

    The first mass is anchored to ground through the first spring; a force is
    applied to the last mass.  Used for harmonic-response extraction tests.
    """

    masses: tuple[float, ...]
    stiffnesses: tuple[float, ...]
    dampings: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if len(self.masses) == 0:
            raise FEMError("the chain needs at least one mass")
        if len(self.stiffnesses) != len(self.masses):
            raise FEMError("one spring per mass is required (mass i to mass i-1)")
        if self.dampings is not None and len(self.dampings) != len(self.masses):
            raise FEMError("one damper per mass is required when dampings are given")
        if min(self.masses) <= 0.0 or min(self.stiffnesses) <= 0.0:
            raise FEMError("masses and stiffnesses must be positive")

    @property
    def size(self) -> int:
        """Number of degrees of freedom."""
        return len(self.masses)

    def matrices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(M, C, K) matrices of the chain.

        Spring/damper 0 anchors mass 0 to ground; spring/damper ``i > 0``
        couples masses ``i-1`` and ``i``.
        """
        n = self.size
        mass = np.diag(self.masses)
        damping = np.zeros((n, n))
        stiffness = np.zeros((n, n))
        dampings = self.dampings or tuple(0.0 for _ in self.masses)
        stiffness[0, 0] += self.stiffnesses[0]
        damping[0, 0] += dampings[0]
        for i in range(1, n):
            k = self.stiffnesses[i]
            c = dampings[i]
            stiffness[i, i] += k
            stiffness[i - 1, i - 1] += k
            stiffness[i, i - 1] -= k
            stiffness[i - 1, i] -= k
            damping[i, i] += c
            damping[i - 1, i - 1] += c
            damping[i, i - 1] -= c
            damping[i - 1, i] -= c
        return mass, damping, stiffness

    def natural_frequencies(self) -> np.ndarray:
        """Undamped natural frequencies [Hz]."""
        mass, _, stiffness = self.matrices()
        eigenvalues = la.eigh(stiffness, mass, eigvals_only=True)
        return np.sqrt(np.clip(eigenvalues, 0.0, None)) / (2.0 * np.pi)

    def static_compliance(self) -> float:
        """Displacement of the last mass per unit force applied to it [m/N]."""
        _, _, stiffness = self.matrices()
        force = np.zeros(self.size)
        force[-1] = 1.0
        try:
            displacement = FactorizedSolver("dense").solve(stiffness, force)
        except LinAlgError as exc:
            raise FEMError(f"static compliance solve failed: {exc}") from exc
        return float(displacement[-1])
