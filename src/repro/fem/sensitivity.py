"""Exact-solve sensitivities of FE static and harmonic analyses.

The FE layer assembles parameterized matrices with vectorized numpy kernels
(no scalar arithmetic for dual numbers to ride), so the *assembly*
derivatives are formed by matrix-level central differences of the caller's
assembly function -- two cheap re-assemblies per parameter, **no solves of
any kind**.  Every linear solve stays exact and factorization-free beyond
the forward solve: the implicit-function theorem is applied through
:func:`repro.linalg.solve_sensitivities` on the forward factorization
(adjoint: one transposed back-substitution per output DOF; direct: one
forward back-substitution per parameter).

Both entry points implement the cross-layer sensitivity protocol
(:class:`~repro.linalg.SensitivityResult` /
:class:`~repro.linalg.SpectralSensitivities`), mirroring the circuit
analyses' ``sensitivities()`` methods.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import FEMError, LinAlgError
from ..linalg import (FactorizedSolver, SensitivityResult,
                      SpectralSensitivities, solve_sensitivities,
                      sweep_spectral_sensitivities)

__all__ = ["matrix_derivatives", "static_sensitivities",
           "harmonic_sensitivities"]

#: Relative parameter step of the matrix-level central differences.
_ASSEMBLY_STEP = 1e-6


def _as_tuple(assembled) -> tuple:
    return assembled if isinstance(assembled, tuple) else (assembled,)


def _dense(matrix) -> np.ndarray:
    """Densify a (possibly sparse) matrix for the dense harmonic solver."""
    if sp.issparse(matrix):
        return matrix.toarray()
    return np.asarray(matrix, dtype=float)


def matrix_derivatives(assemble: Callable[[dict], object],
                       params: Mapping[str, float],
                       rel_step: float = _ASSEMBLY_STEP) -> list[tuple]:
    """Central-difference derivatives of an assembly function's matrices.

    ``assemble(params_dict)`` returns a matrix/vector or a tuple of them;
    the result is one tuple of elementwise derivatives per parameter, in
    ``params`` iteration order.  Sparse matrices stay sparse.  This is an
    *assembly-level* differentiation -- it never solves anything, so its
    cost is two re-assemblies per parameter.
    """
    if rel_step <= 0.0:
        raise FEMError("rel_step must be positive")
    base = {name: float(value) for name, value in params.items()}
    derivatives: list[tuple] = []
    for name in base:
        value = base[name]
        h = rel_step * (abs(value) if value != 0.0 else 1.0)
        up = dict(base)
        up[name] = value + h
        down = dict(base)
        down[name] = value - h
        plus = _as_tuple(assemble(up))
        minus = _as_tuple(assemble(down))
        if len(plus) != len(minus):
            raise FEMError("assemble returned tuples of different lengths")
        derivatives.append(tuple(
            (p - m) / (2.0 * h) for p, m in zip(plus, minus)))
    return derivatives


def _dof_selectors(n: int, output_dofs: Sequence[int] | None
                   ) -> tuple[list[int], np.ndarray]:
    if output_dofs is None:
        dofs = list(range(n))
    else:
        dofs = [int(np.arange(n)[dof]) for dof in output_dofs]
    selectors = np.zeros((len(dofs), n))
    selectors[np.arange(len(dofs)), dofs] = 1.0
    return dofs, selectors


def static_sensitivities(assemble: Callable[[dict], tuple],
                         params: Mapping[str, float],
                         output_dofs: Sequence[int] | None = None,
                         method: str = "auto",
                         backend: str = "auto",
                         rel_step: float = _ASSEMBLY_STEP
                         ) -> SensitivityResult:
    """Sensitivities of a static FE solve ``K(p) u = f(p)``.

    ``assemble(params) -> (K, f)`` with ``K`` dense or sparse.  One
    factorization and one forward solve total; adjoint outputs cost one
    transposed back-substitution each, on the same factorization.  Output
    names are ``u[<dof>]``.
    """
    base = {name: float(value) for name, value in params.items()}
    assembled = _as_tuple(assemble(base))
    if len(assembled) != 2:
        raise FEMError("static assemble(params) must return (K, f)")
    stiffness, force = assembled
    n = stiffness.shape[0]
    force = np.asarray(force, dtype=float)
    if stiffness.shape != (n, n) or force.shape != (n,):
        raise FEMError(
            f"inconsistent static system: K {stiffness.shape}, f {force.shape}")
    stats = {"field_solves": 1, "adjoint_solves": 0, "direct_solves": 0}
    solver = FactorizedSolver(backend)
    try:
        factorization = solver.factorize(stiffness)
        solution = factorization.solve(force)
    except LinAlgError as exc:
        raise FEMError(f"static FE solve failed: {exc}") from exc
    dofs, selectors = _dof_selectors(n, output_dofs)
    dres = np.zeros((n, len(base)))
    for k, (d_stiffness, d_force) in enumerate(
            matrix_derivatives(assemble, base, rel_step=rel_step)):
        dres[:, k] = d_stiffness @ solution - np.asarray(d_force, dtype=float)
    matrix = solve_sensitivities(factorization, selectors, dres,
                                 method=method, stats=stats)
    stats["factorizations"] = solver.factorizations
    resolved = "adjoint" if stats["adjoint_solves"] else "direct"
    return SensitivityResult(
        outputs=tuple(f"u[{dof}]" for dof in dofs),
        params=tuple(base), values=solution[dofs], matrix=matrix,
        method=resolved, stats=stats)


def harmonic_sensitivities(assemble: Callable[[dict], tuple],
                           params: Mapping[str, float],
                           frequencies: Iterable[float],
                           drive_dof: int = -1,
                           output_dofs: Sequence[int] | None = None,
                           force_amplitude: float = 1.0,
                           method: str = "auto",
                           rel_step: float = _ASSEMBLY_STEP
                           ) -> SpectralSensitivities:
    """Sensitivities of the harmonic response ``(K + jwC - w^2 M) u = F``.

    ``assemble(params) -> (M, C, K)`` (the
    :func:`~repro.fem.harmonic.harmonic_response` matrix convention).  Per
    frequency: one factorization + one forward solve, then one transposed
    back-substitution per output DOF (adjoint) or one forward
    back-substitution per parameter (direct) -- the parameter derivative of
    the dynamic stiffness comes from assembly-level central differences of
    ``(M, C, K)``, formed once and reused across the whole grid.  Output
    names are ``u[<dof>]``.
    """
    base = {name: float(value) for name, value in params.items()}
    assembled = _as_tuple(assemble(base))
    if len(assembled) != 3:
        raise FEMError("harmonic assemble(params) must return (M, C, K)")
    # Sparse assemblies densify here: the harmonic path factors the dense
    # dynamic-stiffness matrix per frequency anyway.
    mass, damping, stiffness = (_dense(matrix) for matrix in assembled)
    n = mass.shape[0]
    for name, matrix in (("mass", mass), ("damping", damping),
                         ("stiffness", stiffness)):
        if matrix.shape != (n, n):
            raise FEMError(f"{name} matrix must be {n}x{n}, got {matrix.shape}")
    frequencies = np.asarray(list(frequencies), dtype=float)
    if frequencies.size == 0:
        raise FEMError("harmonic sensitivities need at least one frequency")
    drive = int(np.arange(n)[drive_dof])
    dofs, selectors = _dof_selectors(n, output_dofs)
    derivatives = [tuple(_dense(matrix) for matrix in triple)
                   for triple in matrix_derivatives(assemble, base,
                                                    rel_step=rel_step)]
    force = np.zeros(n, dtype=complex)
    force[drive] = force_amplitude
    stats = {"field_solves": 0, "adjoint_solves": 0, "direct_solves": 0}
    solver = FactorizedSolver("dense")

    def system_at(f: int, omega: float):
        return stiffness + 1j * omega * damping - omega * omega * mass, force

    def dres_at(f: int, omega: float, solution: np.ndarray) -> np.ndarray:
        dres = np.zeros((n, len(base)), dtype=complex)
        for k, (d_mass, d_damping, d_stiffness) in enumerate(derivatives):
            d_dynamic = d_stiffness + 1j * omega * d_damping \
                - omega * omega * d_mass
            dres[:, k] = d_dynamic @ solution
        return dres

    values, matrix, resolved = sweep_spectral_sensitivities(
        frequencies, selectors, system_at, dres_at, method=method,
        solver=solver, stats=stats, solve_counter="field_solves",
        solve_error=lambda frequency, exc: FEMError(
            f"harmonic solve failed at f={frequency:g} Hz: {exc}"))
    stats["factorizations"] = solver.factorizations
    return SpectralSensitivities(
        frequencies, tuple(f"u[{dof}]" for dof in dofs), tuple(base),
        values, matrix, resolved, stats)
