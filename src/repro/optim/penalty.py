"""Inequality constraints by quadratic (exterior) penalty escalation.

The solvers in :mod:`repro.optim.solvers` handle box bounds only (by
projection onto the unit cube).  General inequality constraints --
"pull-in margin >= X while the area stays <= Y" -- are folded into the
objective here with the classic quadratic exterior penalty:

.. math::

    \\Phi_w(z) = f(z) + w \\sum_c \\max(0, v_c(p(z)))^2

where ``v_c`` is the (scaled) violation of constraint ``c``.  A finite
weight ``w`` leaves a small residual violation; :func:`minimize_with_penalty`
therefore escalates the weight geometrically (the augmented-quadratic
sequential scheme) until the solution is feasible to tolerance, warm-starting
every round from the previous optimum.

:class:`PenaltyObjective` exposes the same protocol the local solvers
consume (``space``/``value``/``value_and_gradient``), so it drops into
:class:`~repro.optim.solvers.NelderMead`,
:class:`~repro.optim.solvers.GradientDescent`,
:class:`~repro.optim.multistart.MultiStart` and
:class:`~repro.optim.surrogate.SurrogateStrategy` unchanged.  Constraint
gradients chain through the bound/log transforms by dual seeding (exact for
closed-form constraint functions), with a central-difference fallback for
constraints that cannot propagate duals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..ad import Dual
from ..errors import OptimizationError
from .objective import Objective
from .solvers import NelderMead, OptimResult

__all__ = ["Constraint", "PenaltyObjective", "minimize_with_penalty"]


@dataclass
class Constraint:
    """One inequality constraint on the physical parameters.

    ``fn(params_dict)`` evaluates the constrained quantity; feasibility is
    ``lower <= fn(p) <= upper`` (either bound may be omitted).  ``scale``
    normalizes the violation (defaults to ``max(|bound|, 1)`` per side) so
    constraints of different magnitudes see comparable penalty weights.
    For AD-exact penalty gradients ``fn`` must propagate
    :class:`~repro.ad.Dual` parameter values; otherwise the wrapper falls
    back to central differences for that constraint.
    """

    fn: Callable[[dict], object]
    lower: float | None = None
    upper: float | None = None
    scale: float | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise OptimizationError("constraint fn must be callable")
        if self.lower is None and self.upper is None:
            raise OptimizationError(
                f"constraint {self.name or self.fn!r} needs a lower and/or "
                "upper bound")
        if self.lower is not None and self.upper is not None \
                and self.lower > self.upper:
            raise OptimizationError(
                f"constraint {self.name!r}: lower bound exceeds upper bound")
        if self.scale is not None and self.scale <= 0.0:
            raise OptimizationError("constraint scale must be positive")
        if not self.name:
            self.name = getattr(self.fn, "__name__", "constraint")

    def _scale_for(self, bound: float) -> float:
        return self.scale if self.scale is not None else max(abs(bound), 1.0)

    def violation(self, params: Mapping[str, object]):
        """Scaled violation (0 when feasible); dual-valued for dual params."""
        value = self.fn(dict(params))
        violation = 0.0
        if self.lower is not None:
            deficit = (self.lower - value) / self._scale_for(self.lower)
            if float(getattr(deficit, "value", deficit)) > 0.0:
                violation = violation + deficit
        if self.upper is not None:
            excess = (value - self.upper) / self._scale_for(self.upper)
            if float(getattr(excess, "value", excess)) > 0.0:
                violation = violation + excess
        return violation


class PenaltyObjective:
    """A bounded objective plus quadratically penalized inequality constraints.

    Parameters
    ----------
    objective:
        The underlying :class:`~repro.optim.objective.Objective` (its
        evaluation counters and caching keep working unchanged).
    constraints:
        The :class:`Constraint` list.
    weight:
        Penalty weight ``w`` (see :func:`minimize_with_penalty` for the
        escalating sequence that drives violations to zero).
    fd_step:
        Internal-coordinate step of the constraint-gradient fallback.
    """

    def __init__(self, objective: Objective, constraints,
                 weight: float = 1e3, fd_step: float = 1e-7) -> None:
        if not isinstance(objective, Objective):
            raise OptimizationError(
                "PenaltyObjective wraps a repro.optim Objective")
        self.objective = objective
        self.constraints = list(constraints)
        if not self.constraints:
            raise OptimizationError("at least one constraint is required")
        for constraint in self.constraints:
            if not isinstance(constraint, Constraint):
                raise OptimizationError(
                    f"constraints must be Constraint instances, got "
                    f"{type(constraint).__name__}")
        if weight <= 0.0:
            raise OptimizationError("penalty weight must be positive")
        if fd_step <= 0.0:
            raise OptimizationError("fd_step must be positive")
        self.weight = float(weight)
        self.fd_step = float(fd_step)

    # ------------------------------------------------------------------ protocol
    @property
    def space(self):
        return self.objective.space

    @property
    def evaluations(self) -> int:
        return self.objective.evaluations

    def constraint_violations(self, z) -> np.ndarray:
        """Scaled violations of every constraint at internal coordinates."""
        params = self.space.decode(self.space.clip(z))
        return np.array([float(getattr(v, "value", v)) for v in
                         (c.violation(params) for c in self.constraints)])

    def max_violation(self, z) -> float:
        """The worst scaled constraint violation (0 when feasible)."""
        violations = self.constraint_violations(z)
        return float(violations.max()) if violations.size else 0.0

    def _penalty(self, params) -> float:
        total = 0.0
        for constraint in self.constraints:
            violation = constraint.violation(params)
            violation = float(getattr(violation, "value", violation))
            total += violation * violation
        return self.weight * total

    def value(self, z) -> float:
        z = self.space.clip(z)
        return self.objective.value(z) + self._penalty(self.space.decode(z))

    def __call__(self, z) -> float:
        return self.value(z)

    def value_and_gradient(self, z) -> tuple[float, np.ndarray]:
        z = self.space.clip(z)
        value, grad = self.objective.value_and_gradient(z)
        penalty, penalty_grad = self._penalty_and_gradient(z)
        return value + penalty, grad + penalty_grad

    # ------------------------------------------------------------------ internals
    def _penalty_and_gradient(self, z) -> tuple[float, np.ndarray]:
        duals = self.space.decode_dual(z)
        total = 0.0
        grad = np.zeros(self.space.size)
        for constraint in self.constraints:
            try:
                violation = constraint.violation(duals)
            except (TypeError, ValueError):
                violation = None  # constraint cannot carry duals
            if isinstance(violation, Dual):
                total += violation.value ** 2
                grad += 2.0 * violation.value * np.real(violation.deriv)
                continue
            if violation is not None and float(violation) == 0.0:
                continue  # inactive constraint: no penalty, no gradient
            # Active constraint whose fn dropped the duals (or rejected
            # them): central differences on the squared violation.
            total_k, grad_k = self._fd_violation_sq(constraint, z)
            total += total_k
            grad += grad_k
        return self.weight * total, self.weight * grad

    def _fd_violation_sq(self, constraint: Constraint,
                         z) -> tuple[float, np.ndarray]:
        def squared(at) -> float:
            params = self.space.decode(self.space.clip(at))
            violation = constraint.violation(params)
            violation = float(getattr(violation, "value", violation))
            return violation * violation

        base = squared(z)
        grad = np.zeros(self.space.size)
        for i in range(self.space.size):
            forward = np.array(z, dtype=float)
            backward = np.array(z, dtype=float)
            forward[i] = min(forward[i] + self.fd_step, 1.0)
            backward[i] = max(backward[i] - self.fd_step, 0.0)
            span = forward[i] - backward[i]
            if span > 0.0:
                grad[i] = (squared(forward) - squared(backward)) / span
        return base, grad

    def __repr__(self) -> str:
        names = ", ".join(c.name for c in self.constraints)
        return (f"PenaltyObjective({self.objective!r} s.t. [{names}], "
                f"weight={self.weight:g})")


def minimize_with_penalty(objective: Objective, constraints, solver=None,
                          x0=None, initial_weight: float = 10.0,
                          growth: float = 10.0, max_rounds: int = 6,
                          feasibility_tol: float = 1e-6
                          ) -> tuple[OptimResult, PenaltyObjective]:
    """Sequential quadratic-penalty minimization until feasible.

    Solves a sequence of :class:`PenaltyObjective` problems with
    geometrically increasing weight, warm-starting each round from the
    previous optimum, and stops as soon as the worst scaled violation falls
    below ``feasibility_tol``.  Returns the final round's
    :class:`~repro.optim.solvers.OptimResult` plus the last penalty
    objective (whose :meth:`~PenaltyObjective.max_violation` the caller can
    re-check).
    """
    if growth <= 1.0:
        raise OptimizationError("growth must exceed 1")
    if max_rounds < 1:
        raise OptimizationError("max_rounds must be at least 1")
    solver = solver or NelderMead()
    weight = float(initial_weight)
    start = x0
    result = None
    penalized = None
    for _ in range(max_rounds):
        penalized = PenaltyObjective(objective, constraints, weight=weight)
        result = solver.minimize(penalized, x0=start)
        start = result.x
        if penalized.max_violation(result.x) <= feasibility_tol:
            break
        weight *= growth
    return result, penalized
