"""Parameter transforms: bounded physical parameters <-> unit design space.

Every optimizer in :mod:`repro.optim` works on an *internal* design vector
``z`` living in the unit box ``[0, 1]^n``; a :class:`ParameterSpace` maps it
to the physical parameter dict an evaluator understands.  Centralising the
transform buys three things:

* **bounds** are enforced by construction -- solvers clip to the unit box
  (projection), so an FE mesh is never asked for a negative gap,
* **scaling** -- a ``log`` parameter spanning decades (gaps of 1e-7..1e-4 m)
  becomes as well-conditioned as a ``linear`` one; Nelder-Mead simplex steps
  and gradient-descent line searches see O(1) coordinates either way,
* **gradients** chain automatically: decoding with dual-seeded coordinates
  (:meth:`ParameterSpace.decode_dual`) yields physical parameters whose
  derivative parts are exactly ``d p / d z``, so an AD evaluation returns
  the gradient in internal coordinates with no extra bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..ad import Dual, exp, value_of
from ..errors import OptimizationError

__all__ = ["Parameter", "ParameterSpace"]

_SCALES = ("linear", "log")


@dataclass(frozen=True)
class Parameter:
    """One bounded design parameter.

    Parameters
    ----------
    name:
        The key the evaluator receives in its parameter dict.
    lower, upper:
        Physical bounds (inclusive); a ``log`` parameter needs both positive.
    scale:
        ``"linear"`` (affine map from the unit interval) or ``"log"``
        (exponential map -- equal internal steps are equal *ratios*).
    """

    name: str
    lower: float
    upper: float
    scale: str = "linear"

    def __post_init__(self) -> None:
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise OptimizationError(f"parameter {self.name!r} needs finite bounds")
        if not self.upper > self.lower:
            raise OptimizationError(
                f"parameter {self.name!r} needs upper > lower "
                f"(got [{self.lower:g}, {self.upper:g}])")
        if self.scale not in _SCALES:
            raise OptimizationError(
                f"parameter {self.name!r}: unknown scale {self.scale!r} "
                f"(use one of {_SCALES})")
        if self.scale == "log" and self.lower <= 0.0:
            raise OptimizationError(
                f"log-scaled parameter {self.name!r} needs positive bounds")

    # ------------------------------------------------------------------ maps
    def decode(self, z):
        """Physical value at internal coordinate ``z`` (float or dual)."""
        if self.scale == "log":
            lo, hi = np.log(self.lower), np.log(self.upper)
            return exp(lo + z * (hi - lo))
        return self.lower + z * (self.upper - self.lower)

    def encode(self, value) -> float:
        """Internal coordinate of a physical ``value``, clipped to [0, 1]."""
        value = value_of(value)
        if self.scale == "log":
            if value <= 0.0:
                raise OptimizationError(
                    f"cannot encode non-positive value {value:g} on the "
                    f"log-scaled parameter {self.name!r}")
            z = (np.log(value) - np.log(self.lower)) \
                / (np.log(self.upper) - np.log(self.lower))
        else:
            z = (value - self.lower) / (self.upper - self.lower)
        return float(np.clip(z, 0.0, 1.0))

    def payload(self) -> dict:
        return {"name": self.name, "lower": self.lower, "upper": self.upper,
                "scale": self.scale}


class ParameterSpace:
    """An ordered set of bounded parameters defining the design space.

    Construct from :class:`Parameter` objects or keyword shorthand::

        ParameterSpace(thickness=(1e-6, 10e-6, "log"), length=(50e-6, 500e-6))

    The keyword tuples are ``(lower, upper)`` or ``(lower, upper, scale)``.
    """

    def __init__(self, parameters: Sequence[Parameter] | None = None,
                 **bounds) -> None:
        merged: list[Parameter] = list(parameters or [])
        for name, spec in bounds.items():
            if isinstance(spec, Parameter):
                if spec.name != name:
                    raise OptimizationError(
                        f"keyword {name!r} binds a Parameter named {spec.name!r}")
                merged.append(spec)
                continue
            spec = tuple(spec)
            if len(spec) == 2:
                merged.append(Parameter(name, float(spec[0]), float(spec[1])))
            elif len(spec) == 3:
                merged.append(Parameter(name, float(spec[0]), float(spec[1]),
                                        str(spec[2])))
            else:
                raise OptimizationError(
                    f"parameter {name!r}: expected (lower, upper[, scale])")
        if not merged:
            raise OptimizationError("a parameter space needs at least one parameter")
        seen: set[str] = set()
        for parameter in merged:
            if parameter.name in seen:
                raise OptimizationError(
                    f"parameter {parameter.name!r} given twice")
            seen.add(parameter.name)
        self.parameters: tuple[Parameter, ...] = tuple(merged)

    # ------------------------------------------------------------------ basics
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.parameters)

    @property
    def size(self) -> int:
        return len(self.parameters)

    def __len__(self) -> int:
        return len(self.parameters)

    def __repr__(self) -> str:
        return f"ParameterSpace({', '.join(self.names)})"

    # ------------------------------------------------------------------ maps
    def clip(self, z) -> np.ndarray:
        """Project an internal vector onto the unit box."""
        return np.clip(np.asarray(z, dtype=float), 0.0, 1.0)

    def center(self) -> np.ndarray:
        """The middle of the design space in internal coordinates."""
        return np.full(self.size, 0.5)

    def decode(self, z) -> dict[str, float]:
        """Physical parameter dict at internal coordinates ``z``."""
        z = self._checked(z)
        return {p.name: float(p.decode(float(z[i])))
                for i, p in enumerate(self.parameters)}

    def decode_dual(self, z) -> dict[str, Dual]:
        """Decode with dual-seeded coordinates.

        Each physical parameter comes back as a :class:`~repro.ad.Dual`
        whose derivative part is ``d p_i / d z`` (one slot per internal
        coordinate), so evaluating a model on the returned dict produces the
        objective gradient *in internal coordinates* in one forward pass.
        """
        z = self._checked(z)
        n = self.size
        return {p.name: p.decode(Dual.variable(float(z[i]), index=i, nvars=n))
                for i, p in enumerate(self.parameters)}

    def encode(self, params: Mapping[str, float]) -> np.ndarray:
        """Internal coordinates of a physical parameter dict."""
        missing = [p.name for p in self.parameters if p.name not in params]
        if missing:
            raise OptimizationError(f"encode is missing parameter(s) {missing}")
        return np.array([p.encode(params[p.name]) for p in self.parameters])

    def random(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """``(count, size)`` internal start vectors from a seeded generator."""
        if count < 1:
            raise OptimizationError("need at least one random point")
        return rng.uniform(0.0, 1.0, size=(count, self.size))

    def payload(self) -> dict:
        """Canonical content-address payload (cache keys cover the space)."""
        return {"parameters": [p.payload() for p in self.parameters]}

    def _checked(self, z) -> np.ndarray:
        try:
            z = np.asarray(z, dtype=float)
        except (TypeError, ValueError) as exc:
            raise OptimizationError(
                f"design vector for {self!r} must be numeric: {exc}") from exc
        if z.shape != (self.size,):
            raise OptimizationError(
                f"design vector for {self!r} must have exactly one entry per "
                f"parameter -- expected shape ({self.size},) for "
                f"({', '.join(self.names)}), got shape {z.shape}; "
                "decode/decode_dual never broadcast or truncate")
        return z
