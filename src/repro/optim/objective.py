"""The objective layer: wrap any evaluator in the stack as ``f(z) -> float``.

An :class:`Objective` binds

* an **evaluator** -- any callable ``params_dict -> float | {name: value}``:
  a closed-form transducer expression, a circuit analysis reduction, an FE
  harmonic solve, a :class:`~repro.rom.convert.BeamROMEvaluator`, a PXT
  extraction error ... anything the rest of the repo can evaluate,
* a :class:`~repro.optim.transforms.ParameterSpace` mapping the internal
  unit-box design vector to the evaluator's physical parameters,
* optional **memoization** through a content-addressed
  :class:`~repro.campaign.cache.ResultCache` -- the cache key covers the
  evaluator identity (via :func:`repro.campaign.runner.evaluator_payload`),
  the fixed config, the parameter space and the decoded point, so restarted
  or multi-start optimizations never pay twice for the same design,
* **gradients**, in three exactness tiers:

  - ``"adjoint"`` -- the evaluator implements the sensitivity protocol
    (``evaluate_with_gradient(params) -> (result, gradients)``, e.g.
    :class:`repro.circuit.analysis.sensitivity.CircuitSensitivityEvaluator`
    or anything built on :class:`repro.linalg.SensitivityResult`): exact
    gradients *through implicit solves* at the cost of one forward solve
    plus adjoint back-substitutions -- independent of the parameter count,
  - ``"ad"`` -- forward-AD by dual-seeding the decoded parameters through
    the evaluator (exact, one pass; requires dual-propagating evaluators),
  - ``"fd"`` -- central finite differences (``2n`` extra evaluations).

  ``"auto"`` (default) picks the best available: adjoint when the evaluator
  exposes the protocol, else AD with automatic FD demotion.

Counters (:attr:`evaluations`, :attr:`cache_hits`) report how many *real*
model evaluations were spent -- the currency the surrogate benchmark pins.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from .. import telemetry
from ..ad import Dual
from ..campaign.cache import ResultCache, canonicalize, scenario_key
from ..campaign.runner import evaluator_payload
from ..errors import OptimizationError, SensitivityError
from .transforms import ParameterSpace

__all__ = ["Objective"]

_GRADIENT_MODES = ("adjoint", "ad", "fd", "auto")


class Objective:
    """A scalar design objective over a bounded parameter space.

    Parameters
    ----------
    fn:
        Evaluator ``params_dict -> float`` (or a mapping; see ``output``).
        For multi-start fan-out on the multiprocessing backend it must be
        picklable (module-level function, or an instance of a picklable
        class).  For AD gradients it must tolerate
        :class:`~repro.ad.Dual` parameter values.
    space:
        The design space; the optimizers work in its internal coordinates.
    config:
        Fixed parameters merged into every point (``fn`` receives
        ``{**config, **decoded}``); part of the cache key.
    output:
        When ``fn`` returns a mapping, the name of the entry to minimize.
    target:
        Optional set-point: the objective becomes the squared relative
        miss ``((y - target) / target)**2`` -- the natural form for
        "hit this resonance" design problems.  ``target`` must be non-zero.
    minimize:
        ``False`` negates the raw value (maximization), before any
        ``target`` transform is applied.
    cache:
        Optional :class:`ResultCache` for content-addressed memoization.
    gradient:
        ``"adjoint"`` (the evaluator must implement
        ``evaluate_with_gradient``), ``"ad"`` (dual seeding, raise if the
        evaluator cannot propagate), ``"fd"`` (central differences), or
        ``"auto"`` (adjoint when the evaluator offers it, else AD with
        automatic FD demotion if the evaluator rejects duals).
    fd_step:
        Relative finite-difference step in internal coordinates.
    """

    def __init__(self, fn: Callable[[dict], object], space: ParameterSpace,
                 *, config: Mapping[str, object] | None = None,
                 output: str | None = None, target: float | None = None,
                 minimize: bool = True, cache: ResultCache | None = None,
                 gradient: str = "auto", fd_step: float = 1e-6) -> None:
        if not callable(fn):
            raise OptimizationError("the objective evaluator must be callable")
        if gradient not in _GRADIENT_MODES:
            raise OptimizationError(
                f"unknown gradient mode {gradient!r} (use one of {_GRADIENT_MODES})")
        if target is not None and target == 0.0:
            raise OptimizationError(
                "target must be non-zero (the miss is measured relative to it)")
        if fd_step <= 0.0:
            raise OptimizationError("fd_step must be positive")
        if gradient == "adjoint" and not self._has_sensitivity_protocol(fn):
            raise OptimizationError(
                "gradient='adjoint' needs an evaluator implementing "
                "evaluate_with_gradient(params) -> (result, gradients)")
        self.fn = fn
        self.space = space
        self.config = dict(config or {})
        self.output = output
        self.target = None if target is None else float(target)
        self.minimize = bool(minimize)
        self.cache = cache
        self.gradient = gradient
        self.fd_step = float(fd_step)
        self.evaluations = 0
        self.cache_hits = 0
        self.ad_failures = 0
        #: Gradients served by the evaluator's adjoint/sensitivity protocol.
        self.adjoint_gradients = 0
        #: Adjoint attempts the model rejected (auto mode demotes to AD/FD).
        self.adjoint_failures = 0
        self._adjoint_demoted = False

    @staticmethod
    def _has_sensitivity_protocol(fn) -> bool:
        return callable(getattr(fn, "evaluate_with_gradient", None))

    # ------------------------------------------------------------------ identity
    def cache_payload(self) -> dict:
        """Content-address identity of this objective (not including ``z``)."""
        return {
            "objective": evaluator_payload(self.fn),
            "space": self.space.payload(),
            "config": canonicalize(self.config),
            "output": self.output,
            "target": self.target,
            "minimize": self.minimize,
        }

    def params_of(self, z) -> dict[str, float]:
        """Physical parameters at internal coordinates ``z``."""
        return self.space.decode(z)

    def statistics(self) -> dict[str, int]:
        return {"evaluations": self.evaluations, "cache_hits": self.cache_hits,
                "ad_failures": self.ad_failures,
                "adjoint_gradients": self.adjoint_gradients,
                "adjoint_failures": self.adjoint_failures}

    # ------------------------------------------------------------------ raw calls
    def _call_raw(self, params: dict):
        """One evaluator call on (possibly dual-valued) physical parameters."""
        result = self.fn({**self.config, **params})
        if isinstance(result, Mapping):
            if self.output is None:
                raise OptimizationError(
                    "the evaluator returned a mapping; construct the "
                    "Objective with output=<name> to select an entry")
            try:
                result = result[self.output]
            except KeyError:
                known = ", ".join(sorted(map(str, result)))
                raise OptimizationError(
                    f"evaluator output {self.output!r} not found "
                    f"(available: {known})") from None
        return result

    def _shape(self, raw):
        """Apply the goal transform (sign, target) in value or dual space."""
        if not self.minimize:
            raw = -raw
        if self.target is not None:
            miss = (raw - self.target) / self.target
            raw = miss * miss
        return raw

    # ------------------------------------------------------------------ value
    def value(self, z) -> float:
        """The objective at internal coordinates ``z`` (cached when possible)."""
        z = self.space.clip(z)
        params = self.space.decode(z)
        key = None
        if self.cache is not None:
            key = scenario_key(self.cache_payload(), params)
            row = self.cache.get(key)
            if row is not None:
                self.cache_hits += 1
                return float(row["value"])
        with telemetry.span("optim.evaluate"):
            value = float(self._shape(self._call_raw(params)))
        self.evaluations += 1
        if key is not None and np.isfinite(value):
            self.cache.put(key, {"value": value})
        return value

    def __call__(self, z) -> float:
        return self.value(z)

    # ------------------------------------------------------------------ gradient
    def value_and_gradient(self, z) -> tuple[float, np.ndarray]:
        """Objective value and gradient w.r.t. the internal coordinates.

        The AD path dual-seeds the decoded physical parameters (chain rule
        through the bound/log transforms included) and evaluates the model
        once.  The FD path uses central differences of :meth:`value`, which
        reuses the cache.
        """
        z = self.space.clip(z)
        key = None
        if self.cache is not None:
            params = self.space.decode(z)
            key = scenario_key({**self.cache_payload(), "record": "gradient"},
                               params)
            row = self.cache.get(key)
            if row is not None:
                self.cache_hits += 1
                return float(row["value"]), np.asarray(row["grad"], dtype=float)
        if self.gradient == "adjoint" or (
                self.gradient == "auto" and not self._adjoint_demoted
                and self._has_sensitivity_protocol(self.fn)):
            try:
                value, grad = self._adjoint_gradient(z)
            except SensitivityError as exc:
                # The model cannot serve exact parameter sensitivities here
                # (e.g. an energy-method transducer device).  In auto mode
                # fall back to the plain-call gradient tiers; an explicit
                # adjoint request stays a hard error.
                if self.gradient == "adjoint":
                    raise OptimizationError(
                        f"adjoint gradient failed: {exc}") from exc
                self.adjoint_failures += 1
                self._adjoint_demoted = True
                value, grad = self.value_and_gradient(z)
            if key is not None and np.isfinite(value) \
                    and np.all(np.isfinite(grad)):
                self.cache.put(key, {"value": value,
                                     "grad": [float(g) for g in grad]})
            return value, grad
        if self.gradient in ("ad", "auto"):
            try:
                value, grad = self._ad_gradient(z)
            except TypeError as exc:
                # TypeError is the dual-incompatibility signal (including the
                # explicit probe in _ad_gradient).  Other evaluator failures
                # -- an infeasible point raising ValueError mid line-search,
                # say -- propagate: they would fail the FD path identically
                # and must not silently demote every future gradient to
                # 2n+1 model evaluations.
                if self.gradient == "ad":
                    raise OptimizationError(
                        f"AD gradient failed (evaluator cannot propagate "
                        f"duals?): {type(exc).__name__}: {exc}") from exc
                # auto: this evaluator cannot carry duals; remember that and
                # use finite differences from now on.
                self.ad_failures += 1
                self.gradient = "fd"
                value, grad = self._fd_gradient(z)
        else:
            value, grad = self._fd_gradient(z)
        if key is not None and np.isfinite(value) and np.all(np.isfinite(grad)):
            self.cache.put(key, {"value": value, "grad": [float(g) for g in grad]})
        return value, grad

    def _adjoint_gradient(self, z) -> tuple[float, np.ndarray]:
        """Exact gradient through the evaluator's sensitivity protocol.

        ``evaluate_with_gradient`` returns the same shape the plain call
        would (scalar or mapping selected by ``output``) plus matching
        gradients ``{param: d}`` (scalar) / ``{output: {param: d}}``
        (mapping).  The adjoint machinery behind the protocol makes this
        cost one forward solve regardless of the parameter count; here only
        the bound/log transform and goal shaping are chained on top.
        """
        params = self.space.decode(z)
        with telemetry.span("optim.gradient", mode="adjoint"):
            result = self.fn.evaluate_with_gradient({**self.config, **params})
        self.evaluations += 1
        self.adjoint_gradients += 1
        try:
            values, gradients = result
        except (TypeError, ValueError):
            raise OptimizationError(
                "evaluate_with_gradient must return (result, gradients), "
                f"got {type(result).__name__}") from None
        if isinstance(values, Mapping):
            if self.output is None:
                raise OptimizationError(
                    "the evaluator returned a mapping; construct the "
                    "Objective with output=<name> to select an entry")
            try:
                raw = values[self.output]
                grad_map = gradients[self.output]
            except KeyError:
                known = ", ".join(sorted(map(str, values)))
                raise OptimizationError(
                    f"evaluator output {self.output!r} not found "
                    f"(available: {known})") from None
        else:
            raw, grad_map = values, gradients
        if not isinstance(grad_map, Mapping):
            raise OptimizationError(
                "evaluate_with_gradient gradients must map parameter names "
                f"to derivatives, got {type(grad_map).__name__}")
        missing = [name for name in self.space.names if name not in grad_map]
        if missing:
            raise OptimizationError(
                f"evaluator gradient is missing parameter(s) {missing}; "
                "report 0.0 for genuinely independent parameters")
        # Chain rule through the bound/log transforms: decode_dual's
        # derivative parts are exactly d p_i / d z_i.
        duals = self.space.decode_dual(z)
        deriv = np.array([
            float(grad_map[name]) * float(duals[name].deriv[i])
            for i, name in enumerate(self.space.names)])
        shaped = self._shape(Dual(float(raw), deriv))
        if isinstance(shaped, Dual):
            return float(shaped.value), np.asarray(shaped.deriv,
                                                   dtype=float).copy()
        return float(shaped), deriv

    def _ad_gradient(self, z) -> tuple[float, np.ndarray]:
        duals = self.space.decode_dual(z)
        with telemetry.span("optim.gradient", mode="ad"):
            result = self._shape(self._call_raw(duals))
        self.evaluations += 1
        if isinstance(result, Dual):
            return float(result.value), np.asarray(result.deriv, dtype=float).copy()
        # The evaluator dropped the derivative (e.g. coerced to float):
        # constant as far as AD can see -- make "auto" fall back instead of
        # silently reporting a zero gradient.
        raise TypeError("the evaluator returned a plain number for dual inputs")

    def _fd_gradient(self, z) -> tuple[float, np.ndarray]:
        with telemetry.span("optim.gradient", mode="fd"):
            value = self.value(z)
            grad = np.zeros(self.space.size)
            for i in range(self.space.size):
                h = self.fd_step
                forward = np.array(z, dtype=float)
                backward = np.array(z, dtype=float)
                forward[i] = min(z[i] + h, 1.0)
                backward[i] = max(z[i] - h, 0.0)
                span = forward[i] - backward[i]
                if span <= 0.0:  # degenerate axis (lower == upper after clip)
                    continue
                grad[i] = (self.value(forward) - self.value(backward)) / span
        return value, grad

    def __repr__(self) -> str:
        name = getattr(self.fn, "__name__", type(self.fn).__name__)
        return (f"Objective({name} over {self.space!r}, "
                f"{self.evaluations} evaluations)")
