"""Surrogate-accelerated optimization: search the ROM, verify on the truth.

The paper's whole flow exists because full-physics evaluation is expensive
and reduced models are cheap.  :class:`SurrogateStrategy` turns that into an
optimization loop:

1. optimize the **surrogate** objective (a ROM / macromodel / closed form)
   with a local solver, starting from the incumbent design,
2. **verify** the accepted iterate against the **full** objective (one real
   evaluation),
3. if full and surrogate agree within ``agree_rtol``, accept and stop when
   converged; if they disagree, re-anchor the surrogate with an additive
   offset correction (zeroth-order model alignment, the classic
   "corrected surrogate" trust scheme) and re-optimize,
4. if the surrogate keeps disagreeing (``max_rejections`` consecutive
   misses), **fall back automatically** to optimizing the full model from
   the best design found so far -- the strategy degrades to a plain local
   solve instead of silently returning a surrogate artifact.

The full model is only evaluated once per outer iteration (plus the final
fallback, when taken), which is where the pinned >= 5x evaluation saving of
``benchmarks/bench_optim.py`` comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import OptimizationError
from .objective import Objective
from .solvers import NelderMead, OptimResult

__all__ = ["SurrogateStrategy", "SurrogateResult"]


class _CorrectedSurrogate:
    """The surrogate objective plus an additive anchor correction.

    Exposes the small protocol the solvers need (``space``, ``value``,
    ``value_and_gradient``); the constant offset leaves gradients untouched.
    """

    def __init__(self, surrogate: Objective, offset: float = 0.0) -> None:
        self.surrogate = surrogate
        self.offset = float(offset)

    @property
    def space(self):
        return self.surrogate.space

    def value(self, z) -> float:
        return self.surrogate.value(z) + self.offset

    def __call__(self, z) -> float:
        return self.value(z)

    def value_and_gradient(self, z):
        value, grad = self.surrogate.value_and_gradient(z)
        return value + self.offset, grad


@dataclass
class SurrogateResult:
    """Outcome of a surrogate-accelerated optimization."""

    x: np.ndarray
    params: dict[str, float]
    #: Full-model objective at the returned design (always verified).
    fun: float
    #: Outer accept/verify iterations.
    iterations: int
    #: Real full-model evaluations spent (the expensive currency).
    full_evaluations: int
    #: Real surrogate evaluations spent.
    surrogate_evaluations: int
    converged: bool
    #: True when the strategy had to abandon the surrogate.
    fallback_used: bool
    message: str
    #: Full-model value after each outer iteration.
    history: tuple[float, ...] = field(default_factory=tuple)


class SurrogateStrategy:
    """Optimize a cheap surrogate, verify accepted iterates on the full model.

    Parameters
    ----------
    solver:
        Local solver used on the (corrected) surrogate and for the fallback
        full-model solve (default: :class:`NelderMead`).
    max_outer:
        Cap on outer optimize/verify rounds.
    agree_rtol:
        Relative agreement required between the full and (corrected)
        surrogate values at a candidate for the iterate to count as
        verified.
    fun_tol:
        Optional absolute objective target: stop as soon as the *verified
        full-model* value falls below it (natural for squared relative-miss
        objectives: ``fun_tol = miss_fraction**2``).
    ftol:
        Relative improvement floor between verified iterates; two
        consecutive verified iterates closer than this converge the loop.
    max_rejections:
        Consecutive disagreements tolerated before falling back to the full
        model.
    """

    def __init__(self, solver=None, max_outer: int = 10,
                 agree_rtol: float = 1e-2, fun_tol: float | None = None,
                 ftol: float = 1e-9, max_rejections: int = 2) -> None:
        if max_outer < 1:
            raise OptimizationError("max_outer must be at least 1")
        if agree_rtol <= 0.0:
            raise OptimizationError("agree_rtol must be positive")
        if max_rejections < 1:
            raise OptimizationError("max_rejections must be at least 1")
        self.solver = solver or NelderMead()
        self.max_outer = int(max_outer)
        self.agree_rtol = float(agree_rtol)
        self.fun_tol = None if fun_tol is None else float(fun_tol)
        self.ftol = float(ftol)
        self.max_rejections = int(max_rejections)

    # ------------------------------------------------------------------ minimize
    def minimize(self, full: Objective, surrogate: Objective,
                 x0=None) -> SurrogateResult:
        """Minimize ``full`` using ``surrogate`` for the search work.

        Both objectives must share the same parameter space (the candidate
        vectors are exchanged in internal coordinates).
        """
        if full.space.names != surrogate.space.names:
            raise OptimizationError(
                "full and surrogate objectives must share a parameter space "
                f"({full.space.names} vs {surrogate.space.names})")
        space = full.space
        full_start = full.evaluations
        surrogate_start = surrogate.evaluations

        x = space.center() if x0 is None else space.clip(x0)
        f_full = full.value(x)
        s_raw = surrogate.value(x)
        offset = f_full - s_raw  # anchor the surrogate at the incumbent
        best_x, best_f = np.array(x, dtype=float), f_full

        history: list[float] = []
        rejections = 0
        fallback_used = False
        converged = False
        message = "outer iteration limit reached"
        outer = 0
        for outer in range(1, self.max_outer + 1):
            corrected = _CorrectedSurrogate(surrogate, offset)
            local = self.solver.minimize(corrected, x0=best_x)
            candidate = local.x
            f_candidate = full.value(candidate)
            s_candidate = local.fun  # corrected surrogate value at candidate
            history.append(float(f_candidate))
            scale = max(abs(f_candidate), abs(s_candidate), 1e-30)
            agree = abs(f_candidate - s_candidate) <= self.agree_rtol * scale \
                or abs(f_candidate - s_candidate) <= 1e-30
            improved = f_candidate < best_f
            # An "agreeing" candidate that is materially worse than the best
            # verified design is no progress either: the (re-anchored)
            # surrogate matches the full model at its own optimum while
            # pointing away from the true one, so it counts as a rejection.
            near_best = f_candidate <= best_f + self.ftol * (1.0 + abs(best_f))
            if improved:
                best_x, best_f = np.array(candidate, dtype=float), f_candidate
            if agree and near_best:
                rejections = 0
                if self.fun_tol is not None and best_f <= self.fun_tol:
                    converged = True
                    message = "verified objective reached fun_tol"
                    break
                if abs(f_full - f_candidate) <= \
                        self.ftol * (1.0 + abs(f_candidate)):
                    converged = True
                    message = "verified iterate stationary"
                    break
            else:
                rejections += 1
                if rejections >= self.max_rejections:
                    # The surrogate cannot be trusted here: finish the job on
                    # the full model from the best verified design.
                    fallback_used = True
                    local_full = self.solver.minimize(full, x0=best_x)
                    if local_full.fun < best_f:
                        best_x, best_f = local_full.x, local_full.fun
                    history.append(float(best_f))
                    converged = local_full.converged
                    message = ("surrogate rejected "
                               f"{rejections}x; fell back to the full model "
                               f"({local_full.message})")
                    break
            # Re-anchor: zeroth-order correction at the newest candidate.
            # The raw surrogate value there is already known from the solver
            # (local.fun = raw + offset), so no extra evaluation is spent.
            if np.isfinite(f_candidate) and np.isfinite(s_candidate):
                offset = f_candidate - (s_candidate - offset)
            f_full = f_candidate
        return SurrogateResult(
            x=best_x, params=space.decode(best_x), fun=float(best_f),
            iterations=outer,
            full_evaluations=full.evaluations - full_start,
            surrogate_evaluations=surrogate.evaluations - surrogate_start,
            converged=converged, fallback_used=fallback_used,
            message=message, history=tuple(history))
