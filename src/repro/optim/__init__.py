"""Design optimization and calibration over the whole simulation stack.

The repo can *evaluate* a design at every level -- closed-form transducers,
circuit analyses, FE solves, ROMs, Monte-Carlo campaigns.  This package
makes it *search* one:

* :mod:`repro.optim.transforms` -- bounded/log parameter spaces mapping a
  unit-box design vector to physical parameters (with AD chain rule),
* :mod:`repro.optim.objective` -- :class:`Objective` wraps any evaluator
  with transforms, content-addressed memoization
  (:class:`~repro.campaign.cache.ResultCache`) and forward-AD gradients
  (dual seeding) with a finite-difference fallback,
* :mod:`repro.optim.penalty` -- :class:`PenaltyObjective` /
  :func:`minimize_with_penalty` fold general inequality constraints into
  the objective by escalating quadratic penalties,
* :mod:`repro.optim.solvers` -- derivative-free :class:`NelderMead` and
  projected :class:`GradientDescent` with backtracking line search,
* :mod:`repro.optim.multistart` -- :class:`MultiStart` fans seeded local
  starts out over the :class:`~repro.campaign.runner.CampaignRunner`
  backends (serial / process pool) deterministically,
* :mod:`repro.optim.surrogate` -- :class:`SurrogateStrategy` searches a
  cheap ROM/macromodel objective and verifies accepted iterates against the
  full model, falling back automatically when the surrogate disagrees,
* :mod:`repro.optim.yield_opt` -- :class:`YieldOptimizer` turns a
  Monte-Carlo campaign into a stochastic yield objective with common random
  numbers.

Quickstart::

    from repro.optim import Objective, ParameterSpace, NelderMead

    space = ParameterSpace(thickness=(1e-6, 20e-6, "log"))
    objective = Objective(my_resonance_evaluator, space,
                          output="resonance_hz", target=25e3)
    result = NelderMead().minimize(objective)
    result.params      # {"thickness": ...}, within bounds by construction
"""

from .objective import Objective
from .multistart import MultiStart, MultiStartResult, StartEvaluator
from .penalty import Constraint, PenaltyObjective, minimize_with_penalty
from .solvers import GradientDescent, NelderMead, OptimResult
from .surrogate import SurrogateResult, SurrogateStrategy
from .transforms import Parameter, ParameterSpace
from .yield_opt import YieldOptimizer, YieldResult

__all__ = [
    "Parameter",
    "ParameterSpace",
    "Objective",
    "OptimResult",
    "NelderMead",
    "GradientDescent",
    "MultiStart",
    "MultiStartResult",
    "StartEvaluator",
    "Constraint",
    "PenaltyObjective",
    "minimize_with_penalty",
    "SurrogateStrategy",
    "SurrogateResult",
    "YieldOptimizer",
    "YieldResult",
]
