"""Multi-start driver: fan local optimizations out over the campaign engine.

Nonconvex design landscapes (pull-in folds, multi-modal resonances) need
more than one local descent.  :class:`MultiStart` draws a seeded set of
start vectors in the unit box, wraps (objective, solver) into a picklable
campaign evaluator and runs one local optimization per start point through
a :class:`~repro.campaign.runner.CampaignRunner` -- serially, or on the
multiprocessing pool, with the usual per-point error capture and optional
content-addressed caching of whole local runs.

Determinism: the starts come from a seeded generator, each local solver is
deterministic, and campaign rows come back in spec order regardless of the
backend -- so the selected optimum is bit-identical between ``serial`` and
``pool`` execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..campaign.runner import CampaignRunner
from ..campaign.spec import PointList
from ..errors import OptimizationError
from .objective import Objective
from .solvers import NelderMead, OptimResult

__all__ = ["MultiStart", "MultiStartResult", "StartEvaluator"]


class StartEvaluator:
    """Campaign evaluator running one local optimization per scenario point.

    A scenario point binds the internal start coordinates as ``z_0 .. z_{n-1}``;
    the flat result row is :meth:`OptimResult.row`.  Picklable as long as the
    objective's evaluator and the solver are (module-level callables and the
    provided solvers qualify), which is what lets the pool backend fan the
    starts out across processes.
    """

    def __init__(self, objective: Objective, solver) -> None:
        self.objective = objective
        self.solver = solver

    def __call__(self, point: dict) -> dict[str, float]:
        n = self.objective.space.size
        z0 = np.array([float(point[f"z_{i}"]) for i in range(n)])
        result = self.solver.minimize(self.objective, x0=z0)
        return result.row()

    def cache_payload(self) -> dict:
        return {"evaluator": "repro.optim.multistart.StartEvaluator",
                "objective": self.objective.cache_payload(),
                "solver": self.solver.payload()}


@dataclass
class MultiStartResult:
    """The best local optimum plus every per-start outcome."""

    best: OptimResult
    starts: list[OptimResult]
    #: Index of the winning start (spec order).
    best_index: int

    @property
    def converged(self) -> bool:
        return self.best.converged

    def total_evaluations(self) -> int:
        """Objective calls summed over every start."""
        return int(sum(r.evaluations for r in self.starts))


class MultiStart:
    """Run a local solver from many seeded starts and keep the best.

    Parameters
    ----------
    solver:
        The local solver (default: :class:`NelderMead`).
    starts:
        Number of start points (including the center/x0 start when
        ``include_center`` is set).
    seed:
        Seed of the start-point generator; same seed, same starts -- on
        every backend.
    runner:
        Campaign runner executing the fan-out (default: serial).  Attach a
        cache to memoize whole local runs.
    include_center:
        Make the first start the space center (or the caller's ``x0``).
    """

    def __init__(self, solver=None, starts: int = 8, seed: int = 0,
                 runner: CampaignRunner | None = None,
                 include_center: bool = True) -> None:
        if starts < 1:
            raise OptimizationError("need at least one start")
        self.solver = solver or NelderMead()
        self.starts = int(starts)
        self.seed = int(seed)
        self.runner = runner or CampaignRunner()
        self.include_center = bool(include_center)

    # ------------------------------------------------------------------ points
    def start_points(self, objective: Objective, x0=None) -> np.ndarray:
        """The ``(starts, n)`` internal start matrix (seeded, deterministic)."""
        space = objective.space
        rng = np.random.default_rng(self.seed)
        random_count = self.starts - (1 if self.include_center else 0)
        blocks = []
        if self.include_center:
            first = space.center() if x0 is None else space.clip(x0)
            blocks.append(first[None, :])
        if random_count > 0:
            blocks.append(space.random(rng, random_count))
        return np.vstack(blocks)

    # ------------------------------------------------------------------ minimize
    def minimize(self, objective: Objective, x0=None) -> MultiStartResult:
        space = objective.space
        points = self.start_points(objective, x0)
        spec = PointList([
            {f"z_{i}": float(z[i]) for i in range(space.size)}
            for z in points
        ])
        campaign = self.runner.run(spec, StartEvaluator(objective, self.solver))
        failures = campaign.failures()
        if len(failures) == len(campaign):
            raise OptimizationError(
                f"every start failed; first error: {failures[0].error}")
        results: list[OptimResult] = []
        for row in campaign:
            if not row.ok:
                results.append(OptimResult(
                    x=np.array([row.params[f"z_{i}"] for i in range(space.size)]),
                    params=space.decode([row.params[f"z_{i}"]
                                         for i in range(space.size)]),
                    fun=float("inf"), iterations=0, evaluations=0,
                    converged=False, message=f"start failed: {row.error}"))
                continue
            x = np.array([float(row[f"x_{i}"]) for i in range(space.size)])
            results.append(OptimResult(
                x=x, params=space.decode(x), fun=float(row["fun"]),
                iterations=int(row["iterations"]),
                evaluations=int(row["evaluations"]),
                converged=bool(row["converged"]),
                message="local start (campaign fan-out)"))
        funs = np.array([r.fun for r in results])
        finite = np.flatnonzero(np.isfinite(funs))
        if finite.size == 0:
            raise OptimizationError(
                "no start produced a finite objective value")
        # ties -> lowest spec index (argmin is stable over the finite subset)
        best_index = int(finite[np.argmin(funs[finite])])
        return MultiStartResult(best=results[best_index], starts=results,
                                best_index=best_index)
