"""Local optimizers over the unit-box internal coordinates.

Two deliberately simple, dependency-free solvers cover the workloads of the
design layer:

* :class:`NelderMead` -- derivative-free downhill simplex with projection
  onto the unit box; robust on the noisy/kinked objectives produced by
  mesh-discretized FE solves and yield estimates,
* :class:`GradientDescent` -- projected gradient descent with a
  backtracking (Armijo) line search, driven by the objective's AD gradient
  (or its finite-difference fallback).

Both are fully deterministic (no internal randomness), picklable (plain
float configuration), and expose a :meth:`payload` for content-addressed
caching of whole optimization runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .. import telemetry
from ..errors import OptimizationError
from ..telemetry import IterateRecord

if TYPE_CHECKING:  # pragma: no cover
    from .objective import Objective

__all__ = ["OptimResult", "NelderMead", "GradientDescent"]


@dataclass
class OptimResult:
    """Outcome of one local optimization run.

    ``x`` is in internal (unit box) coordinates; ``params`` is the decoded
    physical point.  ``evaluations`` counts objective *calls* made by the
    solver (cache hits included); the objective's own counters distinguish
    real model evaluations.

    ``trace`` is the per-iteration iterate trajectory
    (:class:`~repro.telemetry.IterateRecord` entries: best objective value
    plus the decoded physical point), recorded only while a
    :func:`repro.telemetry.session` is active -- empty otherwise, so the
    plain path pays nothing.
    """

    x: np.ndarray
    params: dict[str, float]
    fun: float
    iterations: int
    evaluations: int
    converged: bool
    message: str
    history: tuple[float, ...] = field(default_factory=tuple)
    trace: tuple = field(default_factory=tuple)

    def row(self, prefix: str = "") -> dict[str, float]:
        """Flatten to a campaign-style row of floats (for fan-out results)."""
        row = {f"{prefix}fun": float(self.fun),
               f"{prefix}iterations": float(self.iterations),
               f"{prefix}evaluations": float(self.evaluations),
               f"{prefix}converged": 1.0 if self.converged else 0.0}
        for i, value in enumerate(np.asarray(self.x, dtype=float)):
            row[f"{prefix}x_{i}"] = float(value)
        for name, value in self.params.items():
            row[f"{prefix}p_{name}"] = float(value)
        return row


class NelderMead:
    """Bounded downhill simplex (Nelder-Mead) on the unit box.

    Standard reflection/expansion/contraction/shrink moves; every trial
    vertex is projected onto ``[0, 1]^n`` so bounds hold by construction.
    Deterministic for a given start.

    Parameters
    ----------
    max_iterations:
        Iteration cap (one reflect/expand/contract/shrink cycle each).
    xtol, ftol:
        Converged when the simplex spread in coordinates *and* in function
        values falls below these (absolute, internal coordinates).
    initial_step:
        Edge length of the axis-aligned start simplex.
    """

    name = "nelder-mead"

    def __init__(self, max_iterations: int = 200, xtol: float = 1e-6,
                 ftol: float = 1e-10, initial_step: float = 0.15) -> None:
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be at least 1")
        if not 0.0 < initial_step <= 0.5:
            raise OptimizationError("initial_step must be in (0, 0.5]")
        self.max_iterations = int(max_iterations)
        self.xtol = float(xtol)
        self.ftol = float(ftol)
        self.initial_step = float(initial_step)

    def payload(self) -> dict:
        return {"solver": self.name, "max_iterations": self.max_iterations,
                "xtol": self.xtol, "ftol": self.ftol,
                "initial_step": self.initial_step}

    # ------------------------------------------------------------------ minimize
    def minimize(self, objective: "Objective", x0=None) -> OptimResult:
        with telemetry.span("optim.minimize", solver=self.name) as ms:
            result = self._minimize(objective, x0)
            ms.set("iterations", result.iterations)
        return result

    def _minimize(self, objective: "Objective", x0) -> OptimResult:
        space = objective.space
        n = space.size
        x0 = space.center() if x0 is None else space.clip(x0)
        calls = 0
        tracing = telemetry.enabled()
        trace: list[IterateRecord] = []
        track = telemetry.progress.tracker("optim.nelder-mead",
                                           total=self.max_iterations,
                                           unit="iters")

        def f(z) -> float:
            nonlocal calls
            calls += 1
            value = objective.value(z)
            return value if np.isfinite(value) else np.inf

        # Axis-aligned initial simplex, stepping away from the nearest bound.
        simplex = [np.array(x0, dtype=float)]
        for i in range(n):
            vertex = np.array(x0, dtype=float)
            step = self.initial_step if vertex[i] + self.initial_step <= 1.0 \
                else -self.initial_step
            vertex[i] = float(np.clip(vertex[i] + step, 0.0, 1.0))
            simplex.append(vertex)
        values = [f(v) for v in simplex]

        history: list[float] = []
        iterations = 0
        converged = False
        message = "iteration limit reached"
        for iterations in range(1, self.max_iterations + 1):
            order = np.argsort(values, kind="stable")
            simplex = [simplex[i] for i in order]
            values = [values[i] for i in order]
            best, worst = values[0], values[-1]
            history.append(best)
            if tracing:
                trace.append(IterateRecord(iterations, float(best),
                                           space.decode(simplex[0])))
            track.update(iterations, best=float(best))
            spread_x = max(float(np.max(np.abs(v - simplex[0])))
                           for v in simplex[1:])
            spread_f = worst - best if np.isfinite(worst) else np.inf
            if spread_x <= self.xtol and spread_f <= self.ftol:
                converged = True
                message = "simplex collapsed within tolerance"
                break

            centroid = np.mean(simplex[:-1], axis=0)
            reflected = space.clip(centroid + (centroid - simplex[-1]))
            f_reflected = f(reflected)
            if f_reflected < values[0]:
                expanded = space.clip(centroid + 2.0 * (centroid - simplex[-1]))
                f_expanded = f(expanded)
                if f_expanded < f_reflected:
                    simplex[-1], values[-1] = expanded, f_expanded
                else:
                    simplex[-1], values[-1] = reflected, f_reflected
                continue
            if f_reflected < values[-2]:
                simplex[-1], values[-1] = reflected, f_reflected
                continue
            # Contract towards the better of (worst, reflected).
            if f_reflected < values[-1]:
                contracted = space.clip(centroid + 0.5 * (reflected - centroid))
            else:
                contracted = space.clip(centroid + 0.5 * (simplex[-1] - centroid))
            f_contracted = f(contracted)
            if f_contracted < min(f_reflected, values[-1]):
                simplex[-1], values[-1] = contracted, f_contracted
                continue
            # Shrink everything towards the best vertex.
            for i in range(1, n + 1):
                simplex[i] = space.clip(simplex[0] + 0.5 * (simplex[i] - simplex[0]))
                values[i] = f(simplex[i])

        order = np.argsort(values, kind="stable")
        x_best = simplex[order[0]]
        f_best = values[order[0]]
        track.finish(iterations, message=message)
        return OptimResult(
            x=np.array(x_best, dtype=float), params=space.decode(x_best),
            fun=float(f_best), iterations=iterations, evaluations=calls,
            converged=converged, message=message, history=tuple(history),
            trace=tuple(trace))


class GradientDescent:
    """Projected gradient descent with a backtracking Armijo line search.

    Uses :meth:`Objective.value_and_gradient` -- exact forward-AD when the
    evaluator propagates duals, central finite differences otherwise.  Every
    iterate is projected onto the unit box, so bound constraints are handled
    by projection (the standard projected-gradient method).
    """

    name = "gradient-descent"

    def __init__(self, max_iterations: int = 100, gtol: float = 1e-8,
                 ftol: float = 1e-12, xtol: float = 1e-10,
                 initial_step: float = 1.0, backtrack: float = 0.5,
                 armijo: float = 1e-4, max_backtracks: int = 30) -> None:
        if max_iterations < 1:
            raise OptimizationError("max_iterations must be at least 1")
        if not 0.0 < backtrack < 1.0:
            raise OptimizationError("backtrack must be in (0, 1)")
        if initial_step <= 0.0:
            raise OptimizationError("initial_step must be positive")
        self.max_iterations = int(max_iterations)
        self.gtol = float(gtol)
        self.ftol = float(ftol)
        self.xtol = float(xtol)
        self.initial_step = float(initial_step)
        self.backtrack = float(backtrack)
        self.armijo = float(armijo)
        self.max_backtracks = int(max_backtracks)

    def payload(self) -> dict:
        return {"solver": self.name, "max_iterations": self.max_iterations,
                "gtol": self.gtol, "ftol": self.ftol, "xtol": self.xtol,
                "initial_step": self.initial_step, "backtrack": self.backtrack,
                "armijo": self.armijo, "max_backtracks": self.max_backtracks}

    # ------------------------------------------------------------------ minimize
    def minimize(self, objective: "Objective", x0=None) -> OptimResult:
        with telemetry.span("optim.minimize", solver=self.name) as ms:
            result = self._minimize(objective, x0)
            ms.set("iterations", result.iterations)
        return result

    def _minimize(self, objective: "Objective", x0) -> OptimResult:
        space = objective.space
        x = space.center() if x0 is None else space.clip(x0)
        calls = 0
        history: list[float] = []
        tracing = telemetry.enabled()
        trace: list[IterateRecord] = []
        converged = False
        message = "iteration limit reached"
        value, grad = objective.value_and_gradient(x)
        calls += 1
        if not np.isfinite(value) or not np.all(np.isfinite(grad)):
            message = "objective/gradient not finite at the start point"
            telemetry.forensics.newton_failure(
                kind="optim", analysis=f"optim.{self.name}", message=message,
                error_type="OptimizationError",
                labels=[f"d/d{name}" for name in space.decode(x)],
                residual=np.asarray(grad, dtype=float),
                context={"start_value": float(value),
                         "start_point": {name: float(v) for name, v
                                         in space.decode(x).items()}})
            return OptimResult(
                x=np.array(x, dtype=float), params=space.decode(x),
                fun=float(value), iterations=0, evaluations=calls,
                converged=False, message=message)
        track = telemetry.progress.tracker("optim.gradient-descent",
                                           total=self.max_iterations,
                                           unit="iters")
        step = self.initial_step
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            history.append(float(value))
            if tracing:
                trace.append(IterateRecord(iterations, float(value),
                                           space.decode(x)))
            track.update(iterations, value=float(value))
            # Projected gradient: the free-direction derivative at the bounds.
            projected = space.clip(x - grad) - x
            if float(np.max(np.abs(projected))) <= self.gtol:
                converged = True
                message = "projected gradient within tolerance"
                break
            # Backtracking line search on the projected step.
            t = step
            accepted = False
            for _ in range(self.max_backtracks):
                candidate = space.clip(x - t * grad)
                direction = candidate - x
                if float(np.max(np.abs(direction))) <= 0.0:
                    break
                f_candidate = objective.value(candidate)
                calls += 1
                if np.isfinite(f_candidate) and \
                        f_candidate <= value + self.armijo * float(grad @ direction):
                    accepted = True
                    break
                t *= self.backtrack
            if not accepted:
                converged = True
                message = "line search could not improve (stationary point)"
                break
            moved = float(np.max(np.abs(candidate - x)))
            improvement = value - f_candidate
            x = candidate
            value, grad = objective.value_and_gradient(x)
            calls += 1
            # Let the next search start a little above the accepted step.
            step = min(self.initial_step, t / self.backtrack)
            if moved <= self.xtol or improvement <= self.ftol * (1.0 + abs(value)):
                converged = True
                message = "step/improvement within tolerance"
                break
        track.finish(iterations, message=message)
        return OptimResult(
            x=np.array(x, dtype=float), params=space.decode(x),
            fun=float(value), iterations=iterations, evaluations=calls,
            converged=converged, message=message, history=tuple(history),
            trace=tuple(trace))
