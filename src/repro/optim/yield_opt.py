"""Yield optimization: Monte-Carlo campaigns as a stochastic design objective.

A design is rarely judged at its nominal point -- the paper-class question
is "what geometry keeps the spec at 3-sigma process variation?".
:class:`YieldOptimizer` closes that loop:

* a picklable ``build_spec(params, seed)`` maps the *design* parameters to a
  :class:`~repro.campaign.spec.MonteCarlo` spec over the *process*
  parameters (e.g. distributions centered on the designed geometry),
* a campaign evaluator (any :class:`CampaignRunner`-compatible callable)
  scores every sampled device; a ``passed(row)`` predicate decides spec
  compliance (failed rows -- pull-in, non-convergence -- count as fails),
* the yield fraction becomes a scalar objective (``1 - yield`` minimized).

**Common random numbers:** the Monte-Carlo seed is fixed by the optimizer
and passed into ``build_spec`` unchanged for every design iterate, so two
designs are compared on the *same* quantile draws.  That removes the
sampling noise between iterates (the yield difference of two nearby designs
is exact for the shared sample set), which is what makes the yield surface
smooth enough for Nelder-Mead to descend reliably at modest sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..campaign.results import CampaignRow
from ..campaign.runner import CampaignRunner, evaluator_payload
from ..campaign.spec import CampaignSpec
from ..errors import OptimizationError
from .objective import Objective
from .solvers import NelderMead, OptimResult
from .transforms import ParameterSpace

__all__ = ["YieldOptimizer", "YieldResult"]


@dataclass
class YieldResult:
    """Optimized design plus its Monte-Carlo yield."""

    params: dict[str, float]
    #: Yield fraction in [0, 1] at the optimized design.
    yield_fraction: float
    result: OptimResult


class YieldOptimizer:
    """Maximize Monte-Carlo yield over a bounded design space.

    Parameters
    ----------
    space:
        The design :class:`ParameterSpace`.
    build_spec:
        Module-level callable ``(params: dict, seed: int) -> CampaignSpec``
        producing the process-variation campaign for one design.  It must
        thread ``seed`` into the spec unchanged (common random numbers).
    evaluator:
        Campaign evaluator scoring one sampled device (picklable for the
        pool backend).
    passed:
        Module-level predicate ``CampaignRow -> bool`` deciding spec
        compliance of a successful row.
    seed:
        The common-random-numbers seed shared by every design iterate.
    runner:
        Campaign runner for the per-design Monte-Carlo sweeps (attach a
        cache to memoize re-visited sample points).
    cache:
        Optional result cache for the *yield objective itself* (whole
        designs), independent of the runner's per-sample cache.
    """

    def __init__(self, space: ParameterSpace,
                 build_spec: Callable[[dict, int], CampaignSpec],
                 evaluator, passed: Callable[[CampaignRow], bool],
                 *, seed: int = 0, runner: CampaignRunner | None = None,
                 cache=None) -> None:
        if not callable(build_spec) or not callable(passed):
            raise OptimizationError("build_spec and passed must be callable")
        self.space = space
        self.build_spec = build_spec
        self.evaluator = evaluator
        self.passed = passed
        self.seed = int(seed)
        self.runner = runner or CampaignRunner()
        self.cache = cache

    # ------------------------------------------------------------------ pieces
    def yield_at(self, params: dict) -> float:
        """Monte-Carlo yield fraction of one design (CRN sample set)."""
        spec = self.build_spec(dict(params), self.seed)
        result = self.runner.run(spec, self.evaluator)
        passes = sum(1 for row in result if row.ok and self.passed(row))
        return passes / len(result)

    def _loss(self, params: dict) -> dict[str, float]:
        """Objective evaluator: ``1 - yield`` (a minimizable loss)."""
        y = self.yield_at(params)
        return {"loss": 1.0 - y, "yield": y}

    def cache_payload(self) -> dict:
        """Identity of the stochastic objective for content addressing."""
        probe = self.build_spec(self.space.decode(self.space.center()),
                                self.seed)
        return {
            "evaluator": "repro.optim.yield_opt.YieldOptimizer",
            "inner": evaluator_payload(self.evaluator),
            "build_spec": f"{self.build_spec.__module__}."
                          f"{self.build_spec.__qualname__}",
            "passed": f"{self.passed.__module__}.{self.passed.__qualname__}",
            "seed": self.seed,
            "spec_kind": probe.to_dict()["kind"],
            "samples": len(probe),
        }

    def objective(self) -> Objective:
        """The ``1 - yield`` loss as a cacheable :class:`Objective`."""
        return Objective(_YieldLoss(self), self.space, output="loss",
                         cache=self.cache, gradient="fd", fd_step=5e-2)

    # ------------------------------------------------------------------ optimize
    def maximize(self, x0=None, solver=None) -> YieldResult:
        """Find the design with the highest yield (CRN, deterministic)."""
        solver = solver or NelderMead(max_iterations=60, xtol=1e-3, ftol=1e-12)
        result = solver.minimize(self.objective(), x0=x0)
        return YieldResult(params=result.params,
                           yield_fraction=1.0 - float(result.fun),
                           result=result)


class _YieldLoss:
    """Picklable bridge making a :class:`YieldOptimizer` an Objective fn."""

    def __init__(self, optimizer: YieldOptimizer) -> None:
        self.optimizer = optimizer

    def __call__(self, params: dict) -> dict[str, float]:
        return self.optimizer._loss(params)

    def cache_payload(self) -> dict:
        return self.optimizer.cache_payload()
