"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while the
concrete subclasses still communicate which layer failed (netlist
construction, analysis convergence, HDL parsing, FE meshing, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro package."""

    #: Optional :class:`repro.telemetry.forensics.FailureReport` attached at
    #: the raise site when forensics capture is enabled.  ``None`` otherwise.
    report = None


class UnitError(ReproError):
    """A quantity string or unit could not be parsed or converted."""


class NatureError(ReproError):
    """A physical nature (domain) is unknown or used inconsistently."""


class NetlistError(ReproError):
    """The circuit netlist is malformed (duplicate names, bad nodes, ...)."""


class DeviceError(ReproError):
    """A device was constructed or evaluated with invalid parameters."""


class AnalysisError(ReproError):
    """An analysis could not be set up (bad parameters, missing nodes, ...)."""


class ConvergenceError(AnalysisError):
    """Newton iteration or the transient integrator failed to converge."""

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None, report=None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.report = report


class SingularMatrixError(AnalysisError):
    """The MNA matrix is singular (floating node, shorted source loop, ...)."""

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class HDLError(ReproError):
    """Base class for HDL front-end errors."""


class HDLLexError(HDLError):
    """The HDL source contains an unrecognised character sequence."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class HDLParseError(HDLError):
    """The HDL source does not conform to the grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class HDLSemanticError(HDLError):
    """The HDL source is grammatical but semantically invalid."""


class HDLElaborationError(HDLError):
    """An HDL model could not be elaborated into a simulatable device."""


class LinAlgError(ReproError):
    """A linear-algebra backend failed (singular factorization, iterative
    solver breakdown, structure mismatch in a cached sparsity pattern)."""


class FEMError(ReproError):
    """Finite-element meshing, assembly or solution failed."""


class MeshError(FEMError):
    """The requested mesh is invalid (non-positive divisions, bad extent)."""


class ExtractionError(ReproError):
    """PXT parameter extraction failed (empty sweep, inconsistent tables)."""


class MacroModelError(ReproError):
    """A macromodel is malformed or evaluated outside its valid region."""


class TransducerError(ReproError):
    """A transducer model was given unphysical parameters or operating point."""


class CampaignError(ReproError):
    """A simulation campaign is malformed or could not be executed."""


class OptimizationError(ReproError):
    """A design optimization / calibration problem is malformed or failed."""


class SensitivityError(AnalysisError):
    """An exact-sensitivity (adjoint/direct) computation is malformed or the
    model cannot propagate the required parameter derivatives."""
