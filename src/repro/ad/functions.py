"""Elementary functions overloaded for dual numbers.

Each function accepts either a plain real number (delegating to :mod:`math`)
or a :class:`~repro.ad.dual.Dual` and propagates the derivative by the chain
rule.  Behavioral models and HDL expressions use these instead of the bare
``math`` module so that the same model source works for value evaluation,
Newton Jacobians and AC linearization.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from .dual import Dual

__all__ = [
    "sqrt", "exp", "log", "sin", "cos", "tan", "sinh", "cosh", "tanh",
    "atan", "asin", "acos", "absolute", "sign", "minimum", "maximum",
    "where", "hypot",
]


def _unary(x: Any, fn, dfn) -> Any:
    if isinstance(x, Dual):
        value = fn(x.value)
        return Dual(value, dfn(x.value, value) * x.deriv)
    hook = getattr(x, "_repro_unary_", None)
    if hook is not None:
        # A compile-time tracer (repro.hdl.compile.trace) records the call.
        return hook(fn.__name__, fn)
    return fn(float(x))


def sqrt(x: Any) -> Any:
    """Square root; derivative ``1/(2*sqrt(x))``."""
    return _unary(x, math.sqrt, lambda v, r: 0.5 / r)


def exp(x: Any) -> Any:
    """Exponential; derivative ``exp(x)``."""
    return _unary(x, math.exp, lambda v, r: r)


def log(x: Any) -> Any:
    """Natural logarithm; derivative ``1/x``."""
    return _unary(x, math.log, lambda v, r: 1.0 / v)


def sin(x: Any) -> Any:
    """Sine; derivative ``cos(x)``."""
    return _unary(x, math.sin, lambda v, r: math.cos(v))


def cos(x: Any) -> Any:
    """Cosine; derivative ``-sin(x)``."""
    return _unary(x, math.cos, lambda v, r: -math.sin(v))


def tan(x: Any) -> Any:
    """Tangent; derivative ``1/cos(x)**2``."""
    return _unary(x, math.tan, lambda v, r: 1.0 + r * r)


def sinh(x: Any) -> Any:
    """Hyperbolic sine; derivative ``cosh(x)``."""
    return _unary(x, math.sinh, lambda v, r: math.cosh(v))


def cosh(x: Any) -> Any:
    """Hyperbolic cosine; derivative ``sinh(x)``."""
    return _unary(x, math.cosh, lambda v, r: math.sinh(v))


def tanh(x: Any) -> Any:
    """Hyperbolic tangent; derivative ``1 - tanh(x)**2``."""
    return _unary(x, math.tanh, lambda v, r: 1.0 - r * r)


def atan(x: Any) -> Any:
    """Arc tangent; derivative ``1/(1+x**2)``."""
    return _unary(x, math.atan, lambda v, r: 1.0 / (1.0 + v * v))


def asin(x: Any) -> Any:
    """Arc sine; derivative ``1/sqrt(1-x**2)``."""
    return _unary(x, math.asin, lambda v, r: 1.0 / math.sqrt(1.0 - v * v))


def acos(x: Any) -> Any:
    """Arc cosine; derivative ``-1/sqrt(1-x**2)``."""
    return _unary(x, math.acos, lambda v, r: -1.0 / math.sqrt(1.0 - v * v))


def absolute(x: Any) -> Any:
    """Absolute value (sub-gradient ``sign(x)`` at the origin is taken as 0)."""
    if isinstance(x, Dual) or getattr(x, "_repro_tracer_", False):
        return abs(x)
    return abs(float(x))


def sign(x: Any) -> float:
    """Sign of the value part (+1, 0 or -1); the derivative is dropped."""
    hook = getattr(x, "_repro_unary_", None)
    if hook is not None:
        return hook("sign", lambda v: float(np.sign(v)))
    value = x.value if isinstance(x, Dual) else float(x)
    return float(np.sign(value))


def minimum(a: Any, b: Any) -> Any:
    """Minimum by value; the derivative of the active branch is propagated."""
    hook = (getattr(a, "_repro_minmax_", None)
            or getattr(b, "_repro_minmax_", None))
    if hook is not None:
        return hook(a, b, "<=")
    av = a.value if isinstance(a, Dual) else float(a)
    bv = b.value if isinstance(b, Dual) else float(b)
    return a if av <= bv else b


def maximum(a: Any, b: Any) -> Any:
    """Maximum by value; the derivative of the active branch is propagated."""
    hook = (getattr(a, "_repro_minmax_", None)
            or getattr(b, "_repro_minmax_", None))
    if hook is not None:
        return hook(a, b, ">=")
    av = a.value if isinstance(a, Dual) else float(a)
    bv = b.value if isinstance(b, Dual) else float(b)
    return a if av >= bv else b


def where(condition: Any, a: Any, b: Any) -> Any:
    """Select ``a`` when ``condition`` is truthy, ``b`` otherwise."""
    hook = getattr(condition, "_repro_where_", None)
    if hook is not None:
        return hook(a, b)
    return a if bool(condition) else b


def hypot(a: Any, b: Any) -> Any:
    """Euclidean norm ``sqrt(a**2 + b**2)`` with dual support."""
    if isinstance(a, Dual) or isinstance(b, Dual):
        return sqrt(a * a + b * b)
    return math.hypot(float(a), float(b))
