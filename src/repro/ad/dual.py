"""Dual numbers with vector (and optionally complex) derivative parts.

A :class:`Dual` carries a value ``x`` and a derivative vector ``dx`` holding
the partial derivatives of ``x`` with respect to a chosen set of seed
variables.  Arithmetic propagates the derivatives by the chain rule, so any
plain Python/numpy scalar expression evaluated on duals yields the expression
value *and* its exact gradient in one pass.

Design notes
------------
* The derivative part is always a 1-D numpy array.  Scalars passed as the
  derivative are promoted to length-1 arrays.
* The derivative dtype may be complex: the AC small-signal linearization
  seeds real operating-point values with complex sensitivities
  (``ddt`` multiplies the derivative by ``j*omega``), which falls out of the
  same arithmetic with no special cases.
* Comparison operators compare values only, so existing ``if x > 0`` style
  model code keeps working on duals (the derivative of a piecewise function
  is taken on the active branch, the standard sub-gradient convention).
"""

from __future__ import annotations

import math
import numbers
from typing import Any

import numpy as np

__all__ = ["Dual", "seed", "seed_many", "seed_dict", "value_of",
           "derivative_of", "is_dual"]


def _as_deriv(deriv: Any, size: int | None = None) -> np.ndarray:
    array = np.atleast_1d(np.asarray(deriv))
    if array.ndim != 1:
        raise ValueError("derivative part must be one-dimensional")
    if size is not None and array.size != size:
        raise ValueError(f"derivative length {array.size} does not match expected {size}")
    return array


class Dual:
    """A first-order dual number ``value + sum_k deriv[k] * eps_k``."""

    __slots__ = ("value", "deriv")
    __array_priority__ = 100.0  # ensure numpy defers to our operators

    def __init__(self, value: float, deriv: Any = 0.0) -> None:
        self.value = float(value.real) if isinstance(value, complex) else float(value)
        self.deriv = _as_deriv(deriv)

    # -- construction helpers --------------------------------------------------
    @classmethod
    def constant(cls, value: float, nvars: int = 1) -> "Dual":
        """A dual with zero derivative of length ``nvars``."""
        return cls(value, np.zeros(nvars))

    @classmethod
    def variable(cls, value: float, index: int = 0, nvars: int = 1,
                 dtype: type = float) -> "Dual":
        """A seed variable: derivative is the ``index``-th unit vector."""
        deriv = np.zeros(nvars, dtype=dtype)
        deriv[index] = 1.0
        return cls(value, deriv)

    # -- helpers ---------------------------------------------------------------
    def _coerce(self, other: Any) -> "Dual | None":
        if isinstance(other, Dual):
            return other
        if isinstance(other, numbers.Real):
            return Dual(float(other), np.zeros_like(self.deriv))
        return None

    def __repr__(self) -> str:
        return f"Dual({self.value!r}, deriv={self.deriv!r})"

    # -- arithmetic --------------------------------------------------------------
    def __add__(self, other: Any) -> "Dual":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Dual(self.value + o.value, self.deriv + o.deriv)

    __radd__ = __add__

    def __sub__(self, other: Any) -> "Dual":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Dual(self.value - o.value, self.deriv - o.deriv)

    def __rsub__(self, other: Any) -> "Dual":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Dual(o.value - self.value, o.deriv - self.deriv)

    def __mul__(self, other: Any) -> "Dual":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return Dual(self.value * o.value, self.value * o.deriv + o.value * self.deriv)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Dual":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        inv = 1.0 / o.value
        value = self.value * inv
        return Dual(value, (self.deriv - value * o.deriv) * inv)

    def __rtruediv__(self, other: Any) -> "Dual":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o.__truediv__(self)

    def __pow__(self, other: Any) -> "Dual":
        if isinstance(other, numbers.Real) and not isinstance(other, Dual):
            exponent = float(other)
            if exponent == 0.0:
                return Dual(1.0, np.zeros_like(self.deriv))
            value = self.value ** exponent
            return Dual(value, exponent * self.value ** (exponent - 1.0) * self.deriv)
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        if self.value <= 0.0:
            raise ValueError("dual ** dual requires a positive base")
        value = self.value ** o.value
        dval = value * (o.deriv * math.log(self.value) + o.value * self.deriv / self.value)
        return Dual(value, dval)

    def __rpow__(self, other: Any) -> "Dual":
        o = self._coerce(other)
        if o is None:
            return NotImplemented
        return o.__pow__(self)

    def __neg__(self) -> "Dual":
        return Dual(-self.value, -self.deriv)

    def __pos__(self) -> "Dual":
        return Dual(self.value, self.deriv.copy())

    def __abs__(self) -> "Dual":
        if self.value < 0.0:
            return -self
        return +self

    # -- comparisons (value only) ------------------------------------------------
    def __lt__(self, other: Any) -> bool:
        return self.value < _value(other)

    def __le__(self, other: Any) -> bool:
        return self.value <= _value(other)

    def __gt__(self, other: Any) -> bool:
        return self.value > _value(other)

    def __ge__(self, other: Any) -> bool:
        return self.value >= _value(other)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Dual):
            return self.value == other.value and np.array_equal(self.deriv, other.deriv)
        if isinstance(other, numbers.Real):
            return self.value == float(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.deriv.tobytes()))

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return self.value != 0.0

    # -- accessors ---------------------------------------------------------------
    def partial(self, index: int = 0):
        """Partial derivative with respect to seed variable ``index``."""
        return self.deriv[index]


def _value(x: Any) -> float:
    return x.value if isinstance(x, Dual) else float(x)


def seed(value: float, index: int = 0, nvars: int = 1, dtype: type = float) -> Dual:
    """Create a seed variable: ``d(value)/d(var_index) = 1``."""
    return Dual.variable(value, index=index, nvars=nvars, dtype=dtype)


def seed_many(values, dtype: type = float) -> list[Dual]:
    """Seed a full vector of independent variables.

    Returns one :class:`Dual` per entry of ``values`` whose derivative parts
    together form the identity matrix, so evaluating ``f(*duals)`` yields the
    gradient of ``f`` at ``values`` in a single pass.
    """
    values = list(values)
    n = len(values)
    return [Dual.variable(float(v), index=i, nvars=n, dtype=dtype) for i, v in enumerate(values)]


def seed_dict(values, dtype: type = float) -> dict:
    """Seed a mapping of named variables as one dual-vector system.

    Returns ``{name: Dual}`` where the derivative parts together form the
    identity matrix in the mapping's iteration order, so evaluating a model
    on the seeded dict yields the value *and* the gradient with respect to
    every named parameter in a single pass.  This is the entry point the
    optimization layer uses to push parameter sensitivities through
    behavioral/transducer evaluation.
    """
    names = list(values)
    n = len(names)
    return {name: Dual.variable(float(values[name]), index=i, nvars=n,
                                dtype=dtype)
            for i, name in enumerate(names)}


def value_of(x: Any) -> float:
    """Value part of ``x`` whether it is a dual or a plain number."""
    return x.value if isinstance(x, Dual) else float(x)


def derivative_of(x: Any, index: int = 0, nvars: int = 1):
    """Derivative part of ``x``; zero for plain numbers."""
    if isinstance(x, Dual):
        return x.deriv[index]
    return 0.0


def is_dual(x: Any) -> bool:
    """True when ``x`` is a :class:`Dual`."""
    return isinstance(x, Dual)
