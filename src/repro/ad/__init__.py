"""Forward-mode automatic differentiation on dual numbers.

The paper's central modeling recipe is: *write the internal energy of the
conservative transducer, then differentiate it with respect to each port's
state variable to obtain the port effort*.  This package mechanises that
recipe exactly -- :mod:`repro.transducers.energy_method` differentiates
user-supplied energy functions with these dual numbers instead of requiring
hand-derived expressions.

The same machinery provides exact Jacobians of behavioral-device
contributions for the Newton solver and, with complex derivative parts, the
small-signal admittances needed by the AC analysis (``ddt`` becomes a
multiplication of the derivative part by ``j*omega``).
"""

from .dual import (Dual, seed, seed_many, seed_dict, value_of,
                   derivative_of, is_dual)
from .functions import (
    sqrt,
    exp,
    log,
    sin,
    cos,
    tan,
    sinh,
    cosh,
    tanh,
    atan,
    asin,
    acos,
    absolute,
    sign,
    minimum,
    maximum,
    where,
    hypot,
)
from .vector import gradient, jacobian, derivative, hessian

__all__ = [
    "Dual",
    "seed",
    "seed_many",
    "seed_dict",
    "value_of",
    "derivative_of",
    "is_dual",
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "tan",
    "sinh",
    "cosh",
    "tanh",
    "atan",
    "asin",
    "acos",
    "absolute",
    "sign",
    "minimum",
    "maximum",
    "where",
    "hypot",
    "gradient",
    "jacobian",
    "derivative",
    "hessian",
]
