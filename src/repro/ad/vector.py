"""High-level differentiation drivers built on dual numbers.

These helpers take ordinary Python callables (operating on scalars) and
return derivatives evaluated with forward-mode AD:

* :func:`derivative` -- d f / d x for a scalar function of one variable,
* :func:`gradient`   -- the gradient of a scalar function of n variables,
* :func:`jacobian`   -- the Jacobian of a vector function of n variables,
* :func:`hessian`    -- the Hessian by forward-over-forward differencing of
  the AD gradient (exact to second order, adequate for the small transducer
  energy functions it is applied to).

The transducer energy-method module uses :func:`gradient` to turn an internal
energy ``W(states)`` into the port efforts, exactly implementing the paper's
four-step recipe.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .dual import Dual, seed_many, value_of

__all__ = ["derivative", "gradient", "jacobian", "hessian"]


def derivative(func: Callable[[Dual], object], x: float) -> float:
    """First derivative of a scalar function of one variable at ``x``."""
    result = func(Dual.variable(float(x), 0, 1))
    if isinstance(result, Dual):
        return float(np.real_if_close(result.deriv[0]))
    return 0.0


def gradient(func: Callable[..., object], x: Sequence[float]) -> np.ndarray:
    """Gradient of a scalar function ``func(*x)`` at the point ``x``."""
    duals = seed_many(x)
    result = func(*duals)
    n = len(duals)
    if isinstance(result, Dual):
        return np.asarray(result.deriv, dtype=float).copy()
    return np.zeros(n)


def value_and_gradient(func: Callable[..., object], x: Sequence[float]) -> tuple[float, np.ndarray]:
    """Value and gradient of ``func`` in a single forward pass."""
    duals = seed_many(x)
    result = func(*duals)
    n = len(duals)
    if isinstance(result, Dual):
        return float(result.value), np.asarray(result.deriv, dtype=float).copy()
    return float(result), np.zeros(n)


def jacobian(func: Callable[..., Sequence[object]], x: Sequence[float]) -> np.ndarray:
    """Jacobian matrix of a vector-valued function ``func(*x)`` at ``x``."""
    duals = seed_many(x)
    outputs = func(*duals)
    n = len(duals)
    rows = []
    for out in outputs:
        if isinstance(out, Dual):
            rows.append(np.asarray(out.deriv, dtype=float))
        else:
            rows.append(np.zeros(n))
    return np.vstack(rows) if rows else np.zeros((0, n))


def hessian(func: Callable[..., object], x: Sequence[float],
            step: float = 1e-6) -> np.ndarray:
    """Hessian of a scalar function by central differences of the AD gradient.

    The gradient itself is exact (forward AD), so only one differencing level
    is applied and the result is accurate to ``O(step**2)`` with none of the
    catastrophic cancellation of a doubly finite-differenced Hessian.
    """
    x = np.asarray(list(x), dtype=float)
    n = x.size
    hess = np.zeros((n, n))
    for j in range(n):
        h = step * max(1.0, abs(x[j]))
        forward = x.copy()
        backward = x.copy()
        forward[j] += h
        backward[j] -= h
        grad_fwd = gradient(func, forward)
        grad_bwd = gradient(func, backward)
        hess[:, j] = (grad_fwd - grad_bwd) / (2.0 * h)
    return 0.5 * (hess + hess.T)
