"""Sweep-grid helpers for parameter extraction.

PXT characterizes a device "by iterating the variation of boundary
conditions".  These helpers build the boundary-condition grids: displacement
sweeps are expressed as a fraction of the rest gap (so they can never close
the gap completely) and voltage sweeps as absolute values.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExtractionError

__all__ = ["displacement_sweep", "voltage_sweep"]


def displacement_sweep(gap: float, fraction: float = 0.3, points: int = 9,
                       symmetric: bool = True) -> np.ndarray:
    """Displacement grid spanning ``+/- fraction * gap`` (or ``0..fraction*gap``).

    Parameters
    ----------
    gap:
        Rest gap of the device [m].
    fraction:
        Largest displacement magnitude as a fraction of the gap (must keep
        the plates separated, i.e. < 1).
    points:
        Number of grid points (>= 2).
    symmetric:
        Sweep both opening and closing displacements when True.
    """
    if gap <= 0.0:
        raise ExtractionError("gap must be positive")
    if not (0.0 < fraction < 1.0):
        raise ExtractionError("fraction must be in (0, 1)")
    if points < 2:
        raise ExtractionError("a sweep needs at least two points")
    limit = fraction * gap
    start = -limit if symmetric else 0.0
    return np.linspace(start, limit, points)


def voltage_sweep(maximum: float, points: int = 9, minimum: float = 0.0) -> np.ndarray:
    """Voltage grid from ``minimum`` to ``maximum`` [V]."""
    if maximum <= minimum:
        raise ExtractionError("maximum voltage must exceed the minimum")
    if points < 2:
        raise ExtractionError("a sweep needs at least two points")
    return np.linspace(minimum, maximum, points)
