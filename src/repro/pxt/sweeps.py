"""Sweep-grid helpers for parameter extraction.

PXT characterizes a device "by iterating the variation of boundary
conditions".  These helpers build the boundary-condition grids: displacement
sweeps are expressed as a fraction of the rest gap (so they can never close
the gap completely) and voltage sweeps as absolute values.
"""

from __future__ import annotations

import numpy as np

from ..campaign.spec import GridSweep
from ..errors import ExtractionError

__all__ = ["displacement_sweep", "voltage_sweep", "extraction_grid"]


def displacement_sweep(gap: float, fraction: float = 0.3, points: int = 9,
                       symmetric: bool = True) -> np.ndarray:
    """Displacement grid spanning ``+/- fraction * gap`` (or ``0..fraction*gap``).

    Parameters
    ----------
    gap:
        Rest gap of the device [m].
    fraction:
        Largest displacement magnitude as a fraction of the gap (must keep
        the plates separated, i.e. < 1).
    points:
        Number of grid points (>= 2).
    symmetric:
        Sweep both opening and closing displacements when True.
    """
    if gap <= 0.0:
        raise ExtractionError("gap must be positive")
    if not (0.0 < fraction < 1.0):
        raise ExtractionError("fraction must be in (0, 1)")
    if points < 2:
        raise ExtractionError("a sweep needs at least two points")
    limit = fraction * gap
    start = -limit if symmetric else 0.0
    return np.linspace(start, limit, points)


def voltage_sweep(maximum: float, points: int = 9, minimum: float = 0.0) -> np.ndarray:
    """Voltage grid from ``minimum`` to ``maximum`` [V]."""
    if maximum <= minimum:
        raise ExtractionError("maximum voltage must exceed the minimum")
    if points < 2:
        raise ExtractionError("a sweep needs at least two points")
    return np.linspace(minimum, maximum, points)


def extraction_grid(gap: float, max_voltage: float, fraction: float = 0.3,
                    displacement_points: int = 9, voltage_points: int = 9,
                    symmetric: bool = True, min_voltage: float = 0.0) -> GridSweep:
    """The full boundary-condition grid as a declarative campaign spec.

    Combines :func:`displacement_sweep` and :func:`voltage_sweep` into a
    :class:`~repro.campaign.spec.GridSweep` with outer ``displacement`` and
    inner ``voltage`` axes -- the same point order as the nested loops of
    :meth:`~repro.pxt.extractor.ParameterExtractor.sweep`.  The spec can be
    handed to a :class:`~repro.campaign.runner.CampaignRunner`, composed
    with other specs (e.g. ``.product(CornerSet(...))``), or serialized.
    """
    displacements = displacement_sweep(gap, fraction=fraction,
                                       points=displacement_points,
                                       symmetric=symmetric)
    voltages = voltage_sweep(max_voltage, points=voltage_points,
                             minimum=min_voltage)
    return GridSweep(displacement=displacements.tolist(),
                     voltage=voltages.tolist())
