"""PXT extraction reports (the output log of figure 6).

Figure 6 of the paper shows the PXT window with an output log of the
electrostatic-force calculation.  :class:`ExtractionReport` renders the same
kind of log from an :class:`~repro.pxt.extractor.ExtractionSweep`: the
boundary conditions of every solved point, the integrated quantities, and
(when a reference is available) the deviation from the closed-form values of
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..units import format_quantity
from .extractor import ExtractionSweep, ParameterExtractor

__all__ = ["ExtractionReport"]


@dataclass
class ExtractionReport:
    """Textual report of one PXT extraction run."""

    extractor: ParameterExtractor
    sweep: ExtractionSweep
    title: str = "PXT extraction report"

    def header(self) -> str:
        """Report header describing the device and mesh."""
        ex = self.extractor
        return "\n".join([
            f"* {self.title}",
            f"* device: transverse electrostatic transducer, "
            f"A = {format_quantity(ex.area, 'm^2')}, d = {format_quantity(ex.gap, 'm')}, "
            f"er = {ex.epsilon_r:g}",
            f"* mesh: {ex.nx} x {ex.ny} bilinear quads, orientation = {ex.gap_orientation}",
            f"* points solved: {len(self.sweep.points)}",
        ])

    def point_lines(self) -> list[str]:
        """One log line per solved boundary-condition point."""
        lines = []
        for point in self.sweep.points:
            analytic = self.extractor.analytic_force(point.voltage, point.displacement)
            if analytic > 0.0:
                error = abs(point.force - analytic) / analytic
                error_text = f" (dev {100.0 * error:.3f}%)"
            else:
                error_text = ""
            lines.append(
                f"x = {format_quantity(point.displacement, 'm'):>10}  "
                f"V = {point.voltage:6.2f} V  "
                f"C = {format_quantity(point.capacitance, 'F'):>10}  "
                f"Q = {format_quantity(point.charge, 'C'):>10}  "
                f"F = {format_quantity(point.force, 'N'):>10}{error_text}")
        return lines

    def render(self) -> str:
        """The complete report text."""
        return "\n".join([self.header(), "-" * 72, *self.point_lines()])

    def worst_force_deviation(self) -> float:
        """Largest relative deviation of the FE force from the closed form."""
        worst = 0.0
        for point in self.sweep.points:
            analytic = self.extractor.analytic_force(point.voltage, point.displacement)
            if analytic > 0.0:
                worst = max(worst, abs(point.force - analytic) / analytic)
        return worst
