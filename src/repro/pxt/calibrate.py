"""Macromodel calibration: fit lumped parameters to extracted/measured data.

The PXT forward flow extracts macromodel tables from FE solves; calibration
is the inverse problem -- given reference data (an FE extraction sweep, a
measured response), find the lumped macromodel parameters that reproduce
it.  :func:`fit_macromodel_parameters` poses that as a bounded
least-squares problem over a :class:`~repro.optim.transforms.ParameterSpace`
and solves it with the :mod:`repro.optim` engine, AD gradients included
when the predictor propagates duals (the closed-form transducer models do).

Example: recover the effective area/gap of a transverse electrostatic
transducer from an FE capacitance sweep::

    def predict(params, displacement):
        t = TransverseElectrostaticTransducer(params["area"], params["gap"])
        return t.capacitance(displacement)

    fit = fit_macromodel_parameters(
        predict, ParameterSpace(area=(1e-8, 1e-4, "log"),
                                gap=(1e-6, 1e-3, "log")),
        inputs=displacements, targets=fe_capacitances)
    fit.params["area"], fit.rms_error
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..campaign.cache import ResultCache
from ..errors import ExtractionError
from ..optim.objective import Objective
from ..optim.solvers import NelderMead, OptimResult
from ..optim.transforms import ParameterSpace

__all__ = ["fit_macromodel_parameters", "CalibrationResult",
           "MacromodelResidual"]


class MacromodelResidual:
    """Mean-square (relative) prediction error as an Objective evaluator.

    Holds the predictor and the reference data; picklable when the
    predictor is a module-level function, and content-addressable through
    ``cache_payload`` (the data is part of the identity, so two fits
    against different sweeps never share cache entries).
    """

    def __init__(self, predict: Callable, inputs: Sequence[float],
                 targets: Sequence[float],
                 weights: Sequence[float] | None = None,
                 relative: bool = True) -> None:
        self.predict = predict
        self.inputs = tuple(float(x) for x in inputs)
        self.targets = tuple(float(y) for y in targets)
        if len(self.inputs) != len(self.targets) or not self.inputs:
            raise ExtractionError(
                "calibration needs equal, non-empty inputs and targets")
        if weights is None:
            self.weights = tuple(1.0 for _ in self.inputs)
        else:
            self.weights = tuple(float(w) for w in weights)
            if len(self.weights) != len(self.inputs):
                raise ExtractionError("weights must match the inputs")
        self.relative = bool(relative)
        if self.relative and any(y == 0.0 for y in self.targets):
            raise ExtractionError(
                "relative error needs non-zero targets (pass relative=False)")

    def __call__(self, params: dict):
        total = 0.0
        for x, y, w in zip(self.inputs, self.targets, self.weights):
            residual = self.predict(params, x) - y
            if self.relative:
                residual = residual / y
            total = total + w * residual * residual
        return total / len(self.inputs)

    def cache_payload(self) -> dict:
        return {
            "evaluator": "repro.pxt.calibrate.MacromodelResidual",
            "predict": f"{self.predict.__module__}."
                       f"{getattr(self.predict, '__qualname__', type(self.predict).__qualname__)}",
            "inputs": list(self.inputs),
            "targets": list(self.targets),
            "weights": list(self.weights),
            "relative": self.relative,
        }


@dataclass
class CalibrationResult:
    """Fitted macromodel parameters and the fit quality."""

    #: Fitted physical parameters.
    params: dict[str, float]
    #: Root-mean-square (relative, unless ``relative=False``) error.
    rms_error: float
    #: The underlying optimization outcome.
    result: OptimResult
    residual: MacromodelResidual

    def predictions(self) -> np.ndarray:
        """Model predictions at the fitted parameters over the fit inputs."""
        return np.array([float(self.residual.predict(self.params, x))
                         for x in self.residual.inputs])


def fit_macromodel_parameters(predict: Callable, space: ParameterSpace,
                              inputs: Sequence[float],
                              targets: Sequence[float], *,
                              weights: Sequence[float] | None = None,
                              relative: bool = True,
                              solver=None, x0=None,
                              cache: ResultCache | None = None,
                              gradient: str = "auto") -> CalibrationResult:
    """Fit macromodel parameters to reference data (the PXT inverse problem).

    Parameters
    ----------
    predict:
        ``(params: dict, input: float) -> value`` -- the macromodel being
        calibrated.  When it propagates :class:`~repro.ad.Dual` parameters
        (every closed-form transducer does), gradients are exact forward-AD;
        otherwise the objective falls back to finite differences.
    space:
        Bounded (optionally log-scaled) parameter space of the fit.
    inputs, targets:
        The reference sweep: ``targets[i]`` is the measured/extracted value
        at ``inputs[i]``.
    weights:
        Optional per-point weights.
    relative:
        Measure the misfit relative to each target (default) -- the right
        choice when targets span decades, e.g. a capacitance sweep.
    solver:
        Optimizer (default: a :class:`~repro.optim.solvers.NelderMead`
        tuned for smooth low-dimensional fits).  Any object with
        ``minimize(objective, x0)`` works -- including
        :class:`~repro.optim.multistart.MultiStart`.
    x0:
        Optional start in internal coordinates (defaults to the space
        center).
    cache:
        Optional result cache memoizing objective evaluations.
    gradient:
        Gradient mode of the objective (``"auto"``/``"ad"``/``"fd"``).

    Returns
    -------
    CalibrationResult
        Fitted parameters, RMS error and the raw optimizer result.
    """
    residual = MacromodelResidual(predict, inputs, targets,
                                  weights=weights, relative=relative)
    objective = Objective(residual, space, cache=cache, gradient=gradient)
    solver = solver or NelderMead(max_iterations=400, xtol=1e-9, ftol=1e-18)
    outcome = solver.minimize(objective, x0=x0)
    best = getattr(outcome, "best", outcome)  # MultiStart returns a wrapper
    return CalibrationResult(params=dict(best.params),
                             rms_error=float(np.sqrt(max(best.fun, 0.0))),
                             result=best, residual=residual)
