"""PXT -- physical parameter extractor and HDL model generator.

Reproduction of the paper's tool contribution: "A physical parameter
extractor (PXT) based on the numerical integration of nodal (and element)
degrees of freedom has been developed, and interfaces with ANSYS. [...] By
iterating the variation of boundary conditions and extracting the parameter
of interest, a piecewise linear behavioral macro model is created.  A HDL-A
model is then generated."

The workflow maps one-to-one onto the paper's:

1. :class:`~repro.pxt.extractor.ParameterExtractor` drives the FE substrate
   (:mod:`repro.fem`) over sweeps of boundary conditions (voltage,
   displacement) and integrates DOF densities over the terminal surfaces to
   obtain charges, capacitances and Maxwell-stress forces (figure 6),
2. :mod:`repro.pxt.macromodel` turns the sweep data into piecewise-linear /
   bilinear table macromodels,
3. :mod:`repro.pxt.fitting` fits rational transfer functions to harmonic FE
   responses (the "polynomial filter" of the paper),
4. :mod:`repro.pxt.hdl_codegen` and :mod:`repro.pxt.dataflow` emit HDL-A
   models (static table models and data-flow second-order models) that parse
   and elaborate back through :mod:`repro.hdl`,
5. :mod:`repro.pxt.report` produces the PXT output log of figure 6,
6. :mod:`repro.pxt.calibrate` solves the inverse problem --
   :func:`fit_macromodel_parameters` fits lumped macromodel parameters to
   extracted/measured reference data through the :mod:`repro.optim` engine.
"""

from .extractor import (ParameterExtractor, ExtractionPoint, ExtractionSweep,
                        ExtractionPointEvaluator)
from .macromodel import PiecewiseLinearModel, BilinearTableModel
from .fitting import SecondOrderFit, fit_second_order, fit_rational, RationalFit
from .hdl_codegen import (generate_electrostatic_macromodel,
                          generate_rom_macromodel, generate_table_capacitor)
from .dataflow import (build_second_order_device, extract_second_order_fit,
                       generate_second_order_model)
from .calibrate import (CalibrationResult, MacromodelResidual,
                        fit_macromodel_parameters)
from .report import ExtractionReport
from .sweeps import displacement_sweep, voltage_sweep, extraction_grid

__all__ = [
    "ParameterExtractor",
    "ExtractionPoint",
    "ExtractionSweep",
    "ExtractionPointEvaluator",
    "extraction_grid",
    "PiecewiseLinearModel",
    "BilinearTableModel",
    "SecondOrderFit",
    "fit_second_order",
    "RationalFit",
    "fit_rational",
    "generate_electrostatic_macromodel",
    "generate_table_capacitor",
    "generate_rom_macromodel",
    "generate_second_order_model",
    "build_second_order_device",
    "extract_second_order_fit",
    "fit_macromodel_parameters",
    "CalibrationResult",
    "MacromodelResidual",
    "ExtractionReport",
    "displacement_sweep",
    "voltage_sweep",
]
