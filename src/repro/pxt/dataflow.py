"""Data-flow (dynamic) model generation from harmonic-response fits.

The paper: "Harmonic FE analysis produces real and imaginary data of DOFs as
discrete functions of frequencies [...] A polynomial filter is fitted to such
a macro model, and thus generating a data flow HDL-A model."

Here the identified second-order parameters (:class:`~repro.pxt.fitting.SecondOrderFit`)
become either

* HDL-A source text (:func:`generate_second_order_model`) implementing the
  force-to-velocity admittance of the fitted resonator as a one-port
  mechanical model, or
* a ready-to-use :class:`~repro.circuit.devices.behavioral.BehavioralDevice`
  (:func:`build_second_order_device`) for direct instantiation without going
  through the HDL text (useful in tests and for ad-hoc system studies).

Both forms represent the same constitutive relation: the port force follows
``F = m * dv/dt + c * v + k * integ(v)``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..circuit.devices.behavioral import BehavioralDevice, BehaviorContext, Port
from ..circuit.netlist import Node
from ..errors import ExtractionError
from ..fem.harmonic import harmonic_response
from ..hdl.codegen import generate_model
from ..natures import MECHANICAL_TRANSLATION
from .fitting import SecondOrderFit, fit_second_order

__all__ = ["generate_second_order_model", "build_second_order_device",
           "extract_second_order_fit"]


def extract_second_order_fit(mass: np.ndarray, damping: np.ndarray,
                             stiffness: np.ndarray,
                             frequencies: Iterable[float], drive_dof: int = -1,
                             method: str = "full",
                             rom_order: int = 10) -> SecondOrderFit:
    """Harmonic FE sweep -> fitted ``(m, c, k)`` in one call.

    This is the paper's frequency-response extraction pipeline: run the
    harmonic analysis of the assembled structural model at the drive DOF and
    fit the single-resonance compliance.  ``method="rom"`` routes the sweep
    through a modal reduced-order model of order ``rom_order``
    (:func:`repro.fem.harmonic.harmonic_response`), which amortizes one
    eigensolve over the whole grid -- the fast path for the dense frequency
    grids that a clean fit wants.
    """
    response = harmonic_response(mass, damping, stiffness, frequencies,
                                 drive_dof=drive_dof, method=method,
                                 rom_order=rom_order)
    return fit_second_order(response.frequencies, response.dof(response.drive_dof))


def generate_second_order_model(name: str, fit: SecondOrderFit) -> str:
    """Emit HDL-A source of the fitted resonator as a mechanical one-port."""
    _validate(fit)
    body = [
        "U := [c, e].tv",
        "x := integ(U)",
        "[c, e].f %= m*ddt(U) + alpha*U + k*x",
    ]
    return generate_model(
        name,
        generics={"m": fit.mass, "alpha": fit.damping, "k": fit.stiffness},
        pins={"c": "mechanical1", "e": "mechanical1"},
        variables=["x"],
        states=["U"],
        body_statements=body,
        header_comment=(
            "PXT generated data-flow model (second-order fit of a harmonic FE response)\n"
            f"f0 = {fit.natural_frequency_hz:.4g} Hz, Q = {fit.quality_factor:.4g}"),
    )


def build_second_order_device(name: str, fit: SecondOrderFit,
                              p: Node, n: Node, x0: float = 0.0) -> BehavioralDevice:
    """Build the fitted resonator directly as a behavioral device."""
    _validate(fit)

    def behavior(ctx: BehaviorContext) -> None:
        velocity = ctx.across("mech")
        displacement = ctx.integ(velocity, key="x", initial=x0)
        force = fit.mass * ctx.ddt(velocity, key="v") \
            + fit.damping * velocity + fit.stiffness * displacement
        ctx.contribute("mech", force)
        ctx.record("x", displacement)
        ctx.record("force", force)

    return BehavioralDevice(
        name,
        [Port("mech", p, n, MECHANICAL_TRANSLATION)],
        behavior,
        params={"m": fit.mass, "alpha": fit.damping, "k": fit.stiffness},
        state_initials={"x": x0},
    )


def _validate(fit: SecondOrderFit) -> None:
    if fit.mass <= 0.0 or fit.stiffness <= 0.0 or fit.damping < 0.0:
        raise ExtractionError(
            f"second-order fit is not physical (m={fit.mass:g}, c={fit.damping:g}, "
            f"k={fit.stiffness:g})")
