"""Table-based macromodels produced by PXT sweeps.

Two table types cover the paper's "piecewise linear behavioral macro model":

* :class:`PiecewiseLinearModel` -- one independent variable (e.g. capacitance
  versus displacement),
* :class:`BilinearTableModel` -- two independent variables (e.g. force versus
  displacement and voltage).

Both evaluate with dual-number-friendly arithmetic so a macromodel can be
used directly inside a behavioral device, and both can report their worst
relative deviation from a reference callable (used by the table-density
ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import MacroModelError

__all__ = ["PiecewiseLinearModel", "BilinearTableModel"]


def _value(x) -> float:
    return float(getattr(x, "value", x))


@dataclass
class PiecewiseLinearModel:
    """Piecewise-linear interpolation of samples ``(x_k, y_k)``.

    Outside the sampled range the first/last segment is extrapolated
    (documented PXT behaviour; extrapolation quality is the user's
    responsibility and is reported by :meth:`max_relative_error`).
    """

    xs: tuple[float, ...]
    ys: tuple[float, ...]
    quantity: str = "value"
    unit: str = ""

    def __post_init__(self) -> None:
        if len(self.xs) != len(self.ys):
            raise MacroModelError("xs and ys must have the same length")
        if len(self.xs) < 2:
            raise MacroModelError("a piecewise-linear model needs at least two points")
        if any(b <= a for a, b in zip(self.xs, self.xs[1:])):
            raise MacroModelError("breakpoints must be strictly increasing")
        self.xs = tuple(float(x) for x in self.xs)
        self.ys = tuple(float(y) for y in self.ys)

    # ------------------------------------------------------------------ evaluation
    def __call__(self, x):
        """Interpolated value at ``x`` (float or dual number)."""
        xv = _value(x)
        index = self._segment(xv)
        x0, x1 = self.xs[index], self.xs[index + 1]
        y0, y1 = self.ys[index], self.ys[index + 1]
        slope = (y1 - y0) / (x1 - x0)
        return y0 + slope * (x - x0)

    def derivative(self, x) -> float:
        """Slope of the active segment at ``x``."""
        index = self._segment(_value(x))
        x0, x1 = self.xs[index], self.xs[index + 1]
        return (self.ys[index + 1] - self.ys[index]) / (x1 - x0)

    def _segment(self, x: float) -> int:
        index = 0
        for k in range(len(self.xs) - 1):
            if x >= self.xs[k]:
                index = k
        return index

    # ------------------------------------------------------------------ quality
    def max_relative_error(self, reference: Callable[[float], float],
                           samples: int = 200) -> float:
        """Worst |model - reference| / |reference| over a dense grid."""
        grid = np.linspace(self.xs[0], self.xs[-1], samples)
        worst = 0.0
        for x in grid:
            ref = reference(float(x))
            if ref == 0.0:
                continue
            worst = max(worst, abs(self(float(x)) - ref) / abs(ref))
        return worst

    @property
    def span(self) -> tuple[float, float]:
        """Sampled range of the independent variable."""
        return self.xs[0], self.xs[-1]

    def resampled(self, count: int) -> "PiecewiseLinearModel":
        """A coarser/finer model re-sampled from this one on a uniform grid."""
        if count < 2:
            raise MacroModelError("resampling needs at least two points")
        xs = np.linspace(self.xs[0], self.xs[-1], count)
        ys = [self(float(x)) for x in xs]
        return PiecewiseLinearModel(tuple(xs), tuple(float(y) for y in ys),
                                    quantity=self.quantity, unit=self.unit)


@dataclass
class BilinearTableModel:
    """Bilinear interpolation on a rectangular grid of samples ``z[i, j]``.

    Rows follow the first independent variable (``xs``), columns the second
    (``ys``).  Evaluation clamps to the grid boundary (no extrapolation) --
    two-variable extrapolation is too easy to get silently wrong.
    """

    xs: tuple[float, ...]
    ys: tuple[float, ...]
    values: tuple[tuple[float, ...], ...]
    quantity: str = "value"
    unit: str = ""

    def __post_init__(self) -> None:
        if len(self.xs) < 2 or len(self.ys) < 2:
            raise MacroModelError("a bilinear table needs at least a 2x2 grid")
        if any(b <= a for a, b in zip(self.xs, self.xs[1:])):
            raise MacroModelError("xs must be strictly increasing")
        if any(b <= a for a, b in zip(self.ys, self.ys[1:])):
            raise MacroModelError("ys must be strictly increasing")
        if len(self.values) != len(self.xs) or any(len(row) != len(self.ys)
                                                   for row in self.values):
            raise MacroModelError("values must form a len(xs) x len(ys) grid")
        self.xs = tuple(float(x) for x in self.xs)
        self.ys = tuple(float(y) for y in self.ys)
        self.values = tuple(tuple(float(v) for v in row) for row in self.values)

    def __call__(self, x, y):
        """Bilinearly interpolated value at ``(x, y)`` (dual-friendly)."""
        xv = min(max(_value(x), self.xs[0]), self.xs[-1])
        yv = min(max(_value(y), self.ys[0]), self.ys[-1])
        i = self._segment(self.xs, xv)
        j = self._segment(self.ys, yv)
        x0, x1 = self.xs[i], self.xs[i + 1]
        y0, y1 = self.ys[j], self.ys[j + 1]
        # Clamp the *symbolic* coordinates as well so extrapolating inputs do
        # not leave the grid (consistent with the value clamping above).
        tx = (x - x0) / (x1 - x0)
        ty = (y - y0) / (y1 - y0)
        tx = tx if 0.0 <= _value(tx) <= 1.0 else float(min(max(_value(tx), 0.0), 1.0))
        ty = ty if 0.0 <= _value(ty) <= 1.0 else float(min(max(_value(ty), 0.0), 1.0))
        z00 = self.values[i][j]
        z10 = self.values[i + 1][j]
        z01 = self.values[i][j + 1]
        z11 = self.values[i + 1][j + 1]
        return (z00 * (1.0 - tx) * (1.0 - ty) + z10 * tx * (1.0 - ty)
                + z01 * (1.0 - tx) * ty + z11 * tx * ty)

    @staticmethod
    def _segment(axis: tuple[float, ...], value: float) -> int:
        index = 0
        for k in range(len(axis) - 1):
            if value >= axis[k]:
                index = k
        return index

    def max_relative_error(self, reference: Callable[[float, float], float],
                           samples: int = 40) -> float:
        """Worst relative deviation from ``reference`` over a dense grid."""
        xg = np.linspace(self.xs[0], self.xs[-1], samples)
        yg = np.linspace(self.ys[0], self.ys[-1], samples)
        worst = 0.0
        for x in xg:
            for y in yg:
                ref = reference(float(x), float(y))
                if ref == 0.0:
                    continue
                worst = max(worst, abs(self(float(x), float(y)) - ref) / abs(ref))
        return worst
