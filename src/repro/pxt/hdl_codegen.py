"""HDL-A model generation from PXT macromodels.

This is the paper's "A HDL-A model is then generated" step: the extracted
piecewise-linear tables are embedded into behavioral HDL-A source text that
parses and elaborates through :mod:`repro.hdl` into a device functionally
equivalent to the characterized transducer.

Two generators are provided:

* :func:`generate_table_capacitor` -- a one-port electrical model whose
  charge is ``q = C(x0) * v`` with ``C`` looked up from the table at a fixed
  displacement generic (useful as a sanity model and in unit tests),
* :func:`generate_electrostatic_macromodel` -- the full two-port transducer
  macromodel: the electrical port integrates the charge built from the
  ``C(x)`` table, the mechanical port receives the Maxwell-stress force
  scaled from the reference-voltage force table by ``(v / v_ref)^2`` (the
  force of an electrostatic transducer is exactly quadratic in the voltage,
  so the scaling introduces no model error beyond the table itself).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import ExtractionError
from ..hdl.codegen import format_number, generate_model, table1d_expression
from .macromodel import PiecewiseLinearModel

if TYPE_CHECKING:  # pragma: no cover - type-only import (repro.rom -> here)
    from ..rom.statespace import ReducedModel

__all__ = ["generate_table_capacitor", "generate_electrostatic_macromodel",
           "generate_rom_macromodel"]


def generate_table_capacitor(name: str, capacitance_model: PiecewiseLinearModel,
                             displacement: float = 0.0) -> str:
    """Emit a one-port HDL-A capacitor whose value comes from a C(x) table."""
    table = table1d_expression("xpos", capacitance_model.xs, capacitance_model.ys)
    body = [
        "V := [p, n].v",
        f"xpos := {displacement!r}",
        f"c := {table}",
        "[p, n].i %= ddt(c*V)",
    ]
    return generate_model(
        name,
        generics={"scale": 1.0},
        pins={"p": "electrical", "n": "electrical"},
        variables=["c", "xpos"],
        states=["V"],
        body_statements=body,
        header_comment=(f"PXT generated table capacitor ({capacitance_model.quantity}"
                        f" [{capacitance_model.unit}])"),
    )


def generate_electrostatic_macromodel(name: str,
                                      capacitance_model: PiecewiseLinearModel,
                                      force_model: PiecewiseLinearModel,
                                      reference_voltage: float) -> str:
    """Emit the two-port electrostatic transducer macromodel.

    Parameters
    ----------
    name:
        Entity name of the generated model.
    capacitance_model:
        ``C(x)`` piecewise-linear table from :class:`~repro.pxt.extractor.ParameterExtractor`.
    force_model:
        Force-magnitude table ``F(x)`` extracted at ``reference_voltage``.
    reference_voltage:
        Voltage at which the force table was extracted (must be non-zero).

    The generated model follows Listing 1's structure: pins ``a, b``
    (electrical) and ``c, e`` (mechanical1), displacement obtained by
    integrating the mechanical across velocity, charge contribution through
    ``ddt`` and the (attractive, hence negative) force contribution scaled by
    ``(v / v_ref)^2``.
    """
    if reference_voltage == 0.0:
        raise ExtractionError("the force table needs a non-zero reference voltage")
    if capacitance_model.span != force_model.span:
        # Not fatal, but worth refusing: the tables should come from one sweep.
        raise ExtractionError(
            "capacitance and force tables cover different displacement ranges: "
            f"{capacitance_model.span} vs {force_model.span}")
    c_table = table1d_expression("x", capacitance_model.xs, capacitance_model.ys)
    f_table = table1d_expression("x", force_model.xs, force_model.ys)
    body = [
        "V := [a, b].v",
        "S := [c, e].tv",
        "x := integ(S)",
        f"cap := {c_table}",
        f"fmag := {f_table}",
        "[a, b].i %= ddt(cap*V)",
        f"[c, e].f %= -fmag*V*V/(vref*vref)",
    ]
    return generate_model(
        name,
        generics={"vref": float(reference_voltage)},
        pins={"a": "electrical", "b": "electrical", "c": "mechanical1", "e": "mechanical1"},
        variables=["cap", "fmag", "x"],
        states=["V", "S"],
        body_statements=body,
        header_comment=(
            "PXT generated electrostatic transducer macromodel\n"
            f"capacitance table: {len(capacitance_model.xs)} points, "
            f"force table: {len(force_model.xs)} points at Vref = {reference_voltage:g} V"),
    )


def generate_rom_macromodel(name: str, rom: "ReducedModel",
                            input_index: int = 0,
                            drop_tolerance: float = 1e-9) -> str:
    """Emit a reduced-order macromodel as an HDL-A mechanical Foster chain.

    The ROM's drive-point behaviour at input column ``input_index`` is
    diagonalized into modal branches ``kappa_i^2 / (s^2 + c_i s + omega_i^2)``
    and synthesized as series-connected second-order one-ports: the entity
    exposes pins ``p0 .. pN`` and mode ``i`` occupies the pin pair
    ``(p_{i-1}, p_i)``.  Because the sections share their through force and
    their across velocities add, connecting ``p0`` and ``pN`` into a circuit
    realizes exactly the modal-superposition compliance at the drive DOF --
    the classic Foster synthesis of a multi-resonant one-port, expressible in
    the explicit HDL-A subset (no implicit equation blocks needed).

    Modes with negligible port coupling (``|kappa| <= drop_tolerance`` of the
    largest) contribute nothing at the port and are omitted.  Off-diagonal
    reduced damping is discarded (exact for Rayleigh damping, a standard
    approximation otherwise).  Rigid-body modes cannot be synthesized as
    springs and raise :class:`~repro.errors.ExtractionError`.
    """
    omega_sq, shapes = rom.modal_parameters()
    modal_damping = shapes.T @ rom.C @ shapes
    couplings = shapes.T @ rom.B[:, input_index]
    scale = float(np.max(np.abs(couplings)))
    if scale <= 0.0:
        raise ExtractionError(
            "the ROM input pattern does not couple to any retained mode")
    sections: list[tuple[float, float, float]] = []
    for i in range(rom.order):
        kappa = float(couplings[i])
        if abs(kappa) <= drop_tolerance * scale:
            continue
        if omega_sq[i] <= 0.0:
            raise ExtractionError(
                f"mode {i} is a rigid-body mode (omega^2 = {omega_sq[i]:g}); "
                "a Foster section needs a finite stiffness")
        kappa_sq = kappa * kappa
        sections.append((1.0 / kappa_sq,                       # mass
                         max(float(modal_damping[i, i]), 0.0) / kappa_sq,
                         float(omega_sq[i]) / kappa_sq))       # stiffness
    if not sections:
        raise ExtractionError("every retained mode decoupled from the port")
    pins = {f"p{i}": "mechanical1" for i in range(len(sections) + 1)}
    body: list[str] = []
    variables: list[str] = []
    states: list[str] = []
    for i, (m_i, c_i, k_i) in enumerate(sections, start=1):
        velocity, displacement = f"u{i}", f"x{i}"
        states.append(velocity)
        variables.append(displacement)
        body.append(f"{velocity} := [p{i - 1}, p{i}].tv")
        body.append(f"{displacement} := integ({velocity})")
        force = f"{format_number(m_i)}*ddt({velocity})"
        if c_i > 0.0:
            force += f" + {format_number(c_i)}*{velocity}"
        force += f" + {format_number(k_i)}*{displacement}"
        body.append(f"[p{i - 1}, p{i}].f %= {force}")
    frequencies = np.sqrt(omega_sq[omega_sq > 0.0]) / (2.0 * np.pi)
    return generate_model(
        name,
        generics={},
        pins=pins,
        variables=variables,
        states=states,
        body_statements=body,
        header_comment=(
            f"PXT generated reduced-order macromodel ({rom.method}, "
            f"order {rom.order}, {len(sections)} Foster sections)\n"
            "modal frequencies [Hz]: "
            + ", ".join(f"{f:.6g}" for f in frequencies[:8])
            + (" ..." if frequencies.size > 8 else "")),
    )
