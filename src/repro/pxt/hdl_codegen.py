"""HDL-A model generation from PXT macromodels.

This is the paper's "A HDL-A model is then generated" step: the extracted
piecewise-linear tables are embedded into behavioral HDL-A source text that
parses and elaborates through :mod:`repro.hdl` into a device functionally
equivalent to the characterized transducer.

Two generators are provided:

* :func:`generate_table_capacitor` -- a one-port electrical model whose
  charge is ``q = C(x0) * v`` with ``C`` looked up from the table at a fixed
  displacement generic (useful as a sanity model and in unit tests),
* :func:`generate_electrostatic_macromodel` -- the full two-port transducer
  macromodel: the electrical port integrates the charge built from the
  ``C(x)`` table, the mechanical port receives the Maxwell-stress force
  scaled from the reference-voltage force table by ``(v / v_ref)^2`` (the
  force of an electrostatic transducer is exactly quadratic in the voltage,
  so the scaling introduces no model error beyond the table itself).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ExtractionError
from ..hdl.codegen import generate_model, table1d_expression
from .macromodel import PiecewiseLinearModel

__all__ = ["generate_table_capacitor", "generate_electrostatic_macromodel"]


def generate_table_capacitor(name: str, capacitance_model: PiecewiseLinearModel,
                             displacement: float = 0.0) -> str:
    """Emit a one-port HDL-A capacitor whose value comes from a C(x) table."""
    table = table1d_expression("xpos", capacitance_model.xs, capacitance_model.ys)
    body = [
        "V := [p, n].v",
        f"xpos := {displacement!r}",
        f"c := {table}",
        "[p, n].i %= ddt(c*V)",
    ]
    return generate_model(
        name,
        generics={"scale": 1.0},
        pins={"p": "electrical", "n": "electrical"},
        variables=["c", "xpos"],
        states=["V"],
        body_statements=body,
        header_comment=(f"PXT generated table capacitor ({capacitance_model.quantity}"
                        f" [{capacitance_model.unit}])"),
    )


def generate_electrostatic_macromodel(name: str,
                                      capacitance_model: PiecewiseLinearModel,
                                      force_model: PiecewiseLinearModel,
                                      reference_voltage: float) -> str:
    """Emit the two-port electrostatic transducer macromodel.

    Parameters
    ----------
    name:
        Entity name of the generated model.
    capacitance_model:
        ``C(x)`` piecewise-linear table from :class:`~repro.pxt.extractor.ParameterExtractor`.
    force_model:
        Force-magnitude table ``F(x)`` extracted at ``reference_voltage``.
    reference_voltage:
        Voltage at which the force table was extracted (must be non-zero).

    The generated model follows Listing 1's structure: pins ``a, b``
    (electrical) and ``c, e`` (mechanical1), displacement obtained by
    integrating the mechanical across velocity, charge contribution through
    ``ddt`` and the (attractive, hence negative) force contribution scaled by
    ``(v / v_ref)^2``.
    """
    if reference_voltage == 0.0:
        raise ExtractionError("the force table needs a non-zero reference voltage")
    if capacitance_model.span != force_model.span:
        # Not fatal, but worth refusing: the tables should come from one sweep.
        raise ExtractionError(
            "capacitance and force tables cover different displacement ranges: "
            f"{capacitance_model.span} vs {force_model.span}")
    c_table = table1d_expression("x", capacitance_model.xs, capacitance_model.ys)
    f_table = table1d_expression("x", force_model.xs, force_model.ys)
    body = [
        "V := [a, b].v",
        "S := [c, e].tv",
        "x := integ(S)",
        f"cap := {c_table}",
        f"fmag := {f_table}",
        "[a, b].i %= ddt(cap*V)",
        f"[c, e].f %= -fmag*V*V/(vref*vref)",
    ]
    return generate_model(
        name,
        generics={"vref": float(reference_voltage)},
        pins={"a": "electrical", "b": "electrical", "c": "mechanical1", "e": "mechanical1"},
        variables=["cap", "fmag", "x"],
        states=["V", "S"],
        body_statements=body,
        header_comment=(
            "PXT generated electrostatic transducer macromodel\n"
            f"capacitance table: {len(capacitance_model.xs)} points, "
            f"force table: {len(force_model.xs)} points at Vref = {reference_voltage:g} V"),
    )
