"""The PXT parameter extractor: FE sweeps -> lumped macro-parameters.

The extractor reproduces the figure-6 workflow of the paper:

1. for each boundary-condition point (electrode displacement, applied
   voltage) an electrostatic FE problem of the transducer gap is built and
   solved,
2. the conjugate quantities are obtained by numerical integration of DOF
   densities over the terminal surface -- charge from the normal flux,
   force from the Maxwell stress ``1/2 eps E^2``, capacitance from the field
   energy,
3. the sweep results become piecewise-linear / bilinear macromodels
   (:mod:`repro.pxt.macromodel`), from which HDL-A models are generated
   (:mod:`repro.pxt.hdl_codegen`).

The extractor works on the *paper's* transverse electrostatic geometry
(Table 4) but accepts any gap/area/permittivity combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..campaign.runner import CampaignRunner
from ..campaign.spec import GridSweep
from ..constants import EPSILON_0
from ..errors import ExtractionError
from ..fem.electrostatics import ElectrostaticSolution, ParallelPlateProblem
from .macromodel import BilinearTableModel, PiecewiseLinearModel

if TYPE_CHECKING:  # pragma: no cover
    from ..campaign.results import CampaignResult

__all__ = ["ExtractionPoint", "ExtractionSweep", "ParameterExtractor",
           "ExtractionPointEvaluator"]


@dataclass(frozen=True)
class ExtractionPoint:
    """One solved boundary-condition point of a sweep."""

    displacement: float
    voltage: float
    capacitance: float
    charge: float
    force: float
    energy: float
    field: float


@dataclass
class ExtractionSweep:
    """A collection of extraction points with convenience accessors."""

    points: list[ExtractionPoint] = field(default_factory=list)

    def displacements(self) -> np.ndarray:
        return np.array(sorted({p.displacement for p in self.points}))

    def voltages(self) -> np.ndarray:
        return np.array(sorted({p.voltage for p in self.points}))

    def at(self, displacement: float, voltage: float) -> ExtractionPoint:
        """The stored point closest to the requested boundary conditions."""
        if not self.points:
            raise ExtractionError("the sweep holds no points")
        return min(self.points,
                   key=lambda p: abs(p.displacement - displacement) + abs(p.voltage - voltage))


class ParameterExtractor:
    """Boundary-condition sweeps over the electrostatic FE model.

    Parameters
    ----------
    area:
        Electrode area ``A`` [m^2].
    gap:
        Rest gap ``d`` [m].
    epsilon_r:
        Relative permittivity of the gap.
    gap_orientation:
        ``"paper"``: effective gap is ``d + x`` (Table 2 convention);
        ``"closing"``: ``d - x``.
    nx, ny:
        FE mesh divisions used for every solve.
    """

    def __init__(self, area: float, gap: float, epsilon_r: float = 1.0,
                 gap_orientation: str = "paper", nx: int = 24, ny: int = 16,
                 epsilon_0: float = EPSILON_0) -> None:
        if area <= 0.0 or gap <= 0.0 or epsilon_r <= 0.0:
            raise ExtractionError("area, gap and epsilon_r must be positive")
        if gap_orientation not in ("paper", "closing"):
            raise ExtractionError("gap_orientation must be 'paper' or 'closing'")
        self.area = float(area)
        self.gap = float(gap)
        self.epsilon_r = float(epsilon_r)
        self.gap_orientation = gap_orientation
        self.nx = int(nx)
        self.ny = int(ny)
        self.epsilon_0 = float(epsilon_0)

    # ------------------------------------------------------------------ solves
    def effective_gap(self, displacement: float) -> float:
        """Electrode separation at a given free-plate displacement."""
        gap = self.gap + displacement if self.gap_orientation == "paper" \
            else self.gap - displacement
        if gap <= 0.0:
            raise ExtractionError(
                f"displacement {displacement:g} closes the gap (effective gap {gap:g})")
        return gap

    def solve_point(self, displacement: float, voltage: float) -> ExtractionPoint:
        """Solve one FE problem and extract all conjugate quantities."""
        problem = ParallelPlateProblem.from_area(
            area=self.area, gap=self.effective_gap(displacement),
            epsilon_r=self.epsilon_r, nx=self.nx, ny=self.ny,
            epsilon_0=self.epsilon_0)
        solution = problem.solve(voltage if voltage != 0.0 else 1.0)
        capacitance = solution.capacitance
        if voltage == 0.0:
            # Re-scale the unit-voltage solve back to zero drive.
            charge = 0.0
            force = 0.0
            energy = 0.0
            field = 0.0
        else:
            charge = solution.electrode_charge()
            force = solution.electrode_force()
            energy = solution.energy
            field = solution.uniform_field_estimate()
        return ExtractionPoint(
            displacement=float(displacement), voltage=float(voltage),
            capacitance=float(capacitance), charge=float(charge),
            force=float(force), energy=float(energy), field=float(field))

    # ------------------------------------------------------------------ campaigns
    def campaign_evaluator(self) -> "ExtractionPointEvaluator":
        """A picklable campaign evaluator bound to this extractor's geometry."""
        return ExtractionPointEvaluator(
            area=self.area, gap=self.gap, epsilon_r=self.epsilon_r,
            gap_orientation=self.gap_orientation, nx=self.nx, ny=self.ny,
            epsilon_0=self.epsilon_0)

    def campaign_spec(self, displacements: Iterable[float],
                      voltages: Iterable[float]) -> GridSweep:
        """The boundary-condition grid as a campaign spec.

        The axis order (outer displacement, inner voltage) reproduces the
        historical nested-loop point ordering.
        """
        displacements = [float(x) for x in displacements]
        voltages = [float(v) for v in voltages]
        if not displacements or not voltages:
            raise ExtractionError("empty extraction sweep")
        return GridSweep(displacement=displacements, voltage=voltages)

    def sweep(self, displacements: Iterable[float], voltages: Iterable[float],
              runner: CampaignRunner | None = None) -> ExtractionSweep:
        """Solve the full cartesian sweep of displacements x voltages.

        The boundary-condition grid runs through the campaign engine: pass a
        configured :class:`~repro.campaign.runner.CampaignRunner` to execute
        the FE solves on a process pool and/or against a result cache.  The
        default serial backend reproduces the historical point values and
        ordering exactly.  Unlike the old nested loop, failures no longer
        abort mid-grid: every point is attempted and an
        :class:`~repro.errors.ExtractionError` summarising the failing
        points is raised afterwards (use :meth:`sweep_campaign` to get the
        partial results instead of an exception).
        """
        result = self.sweep_campaign(displacements, voltages, runner=runner)
        failures = result.failures()
        if failures:
            first = failures[0]
            raise ExtractionError(
                f"{len(failures)} of {len(result)} extraction points failed; "
                f"first failure at displacement {first.params['displacement']:g}, "
                f"voltage {first.params['voltage']:g}: {first.error}")
        return ExtractionSweep([
            ExtractionPoint(
                displacement=float(row.params["displacement"]),
                voltage=float(row.params["voltage"]),
                capacitance=float(row["capacitance"]), charge=float(row["charge"]),
                force=float(row["force"]), energy=float(row["energy"]),
                field=float(row["field"]))
            for row in result
        ])

    def sweep_campaign(self, displacements: Iterable[float],
                       voltages: Iterable[float],
                       runner: CampaignRunner | None = None) -> "CampaignResult":
        """The raw columnar campaign result of a boundary-condition grid."""
        spec = self.campaign_spec(displacements, voltages)
        runner = runner or CampaignRunner()
        return runner.run(spec, self.campaign_evaluator())

    # ------------------------------------------------------------------ macromodels
    def capacitance_model(self, displacements: Sequence[float],
                          probe_voltage: float = 1.0,
                          runner: CampaignRunner | None = None) -> PiecewiseLinearModel:
        """Piecewise-linear ``C(x)`` macromodel from an FE displacement sweep."""
        displacements = sorted(float(x) for x in displacements)
        sweep = self.sweep(displacements, [probe_voltage], runner=runner)
        capacitances = [point.capacitance for point in sweep.points]
        return PiecewiseLinearModel(tuple(displacements), tuple(capacitances),
                                    quantity="capacitance", unit="F")

    def force_model(self, displacements: Sequence[float],
                    voltages: Sequence[float],
                    runner: CampaignRunner | None = None) -> BilinearTableModel:
        """Bilinear ``F(x, V)`` macromodel (force magnitude) from an FE sweep."""
        displacements = sorted(float(x) for x in displacements)
        voltages = sorted(float(v) for v in voltages)
        sweep = self.sweep(displacements, voltages, runner=runner)
        # Grid points come back displacement-major (inner voltage axis).
        rows = [
            tuple(point.force
                  for point in sweep.points[i * len(voltages):(i + 1) * len(voltages)])
            for i in range(len(displacements))
        ]
        return BilinearTableModel(tuple(displacements), tuple(voltages), tuple(rows),
                                  quantity="force", unit="N")

    def force_vs_voltage(self, voltages: Sequence[float], displacement: float = 0.0,
                         runner: CampaignRunner | None = None) -> PiecewiseLinearModel:
        """Piecewise-linear ``F(V)`` at a fixed displacement (figure-6 sweep)."""
        voltages = sorted(float(v) for v in voltages)
        sweep = self.sweep([displacement], voltages, runner=runner)
        forces = [point.force for point in sweep.points]
        return PiecewiseLinearModel(tuple(voltages), tuple(forces),
                                    quantity="force", unit="N")

    # ------------------------------------------------------------------ references
    def analytic_capacitance(self, displacement: float = 0.0) -> float:
        """Closed-form ``eps A / gap(x)`` for validation."""
        return self.epsilon_0 * self.epsilon_r * self.area / self.effective_gap(displacement)

    def analytic_force(self, voltage: float, displacement: float = 0.0) -> float:
        """Closed-form attractive force magnitude (Table 3, row a)."""
        gap = self.effective_gap(displacement)
        return 0.5 * self.epsilon_0 * self.epsilon_r * self.area * voltage * voltage / (gap * gap)


@dataclass(frozen=True)
class ExtractionPointEvaluator:
    """Campaign evaluator: one FE boundary-condition solve per point.

    The evaluator holds only the extractor's plain-float geometry, so it
    pickles cheaply to pool workers, and its :meth:`cache_payload` makes the
    result cache key cover the full FE configuration -- changing the mesh
    density or gap orientation invalidates every cached point.

    Points bind ``displacement`` and ``voltage``; the outputs are the five
    conjugate quantities of :class:`ExtractionPoint`.
    """

    area: float
    gap: float
    epsilon_r: float = 1.0
    gap_orientation: str = "paper"
    nx: int = 24
    ny: int = 16
    epsilon_0: float = EPSILON_0

    def _extractor(self) -> ParameterExtractor:
        return ParameterExtractor(
            area=self.area, gap=self.gap, epsilon_r=self.epsilon_r,
            gap_orientation=self.gap_orientation, nx=self.nx, ny=self.ny,
            epsilon_0=self.epsilon_0)

    def __call__(self, point: dict) -> dict[str, float]:
        solved = self._extractor().solve_point(
            float(point["displacement"]), float(point["voltage"]))
        return {"capacitance": solved.capacitance, "charge": solved.charge,
                "force": solved.force, "energy": solved.energy,
                "field": solved.field}

    def cache_payload(self) -> dict:
        return {"evaluator": "repro.pxt.extractor.ExtractionPointEvaluator",
                "area": self.area, "gap": self.gap, "epsilon_r": self.epsilon_r,
                "gap_orientation": self.gap_orientation,
                "nx": self.nx, "ny": self.ny, "epsilon_0": self.epsilon_0}
