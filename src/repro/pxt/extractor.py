"""The PXT parameter extractor: FE sweeps -> lumped macro-parameters.

The extractor reproduces the figure-6 workflow of the paper:

1. for each boundary-condition point (electrode displacement, applied
   voltage) an electrostatic FE problem of the transducer gap is built and
   solved,
2. the conjugate quantities are obtained by numerical integration of DOF
   densities over the terminal surface -- charge from the normal flux,
   force from the Maxwell stress ``1/2 eps E^2``, capacitance from the field
   energy,
3. the sweep results become piecewise-linear / bilinear macromodels
   (:mod:`repro.pxt.macromodel`), from which HDL-A models are generated
   (:mod:`repro.pxt.hdl_codegen`).

The extractor works on the *paper's* transverse electrostatic geometry
(Table 4) but accepts any gap/area/permittivity combination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..constants import EPSILON_0
from ..errors import ExtractionError
from ..fem.electrostatics import ElectrostaticSolution, ParallelPlateProblem
from .macromodel import BilinearTableModel, PiecewiseLinearModel

__all__ = ["ExtractionPoint", "ExtractionSweep", "ParameterExtractor"]


@dataclass(frozen=True)
class ExtractionPoint:
    """One solved boundary-condition point of a sweep."""

    displacement: float
    voltage: float
    capacitance: float
    charge: float
    force: float
    energy: float
    field: float


@dataclass
class ExtractionSweep:
    """A collection of extraction points with convenience accessors."""

    points: list[ExtractionPoint] = field(default_factory=list)

    def displacements(self) -> np.ndarray:
        return np.array(sorted({p.displacement for p in self.points}))

    def voltages(self) -> np.ndarray:
        return np.array(sorted({p.voltage for p in self.points}))

    def at(self, displacement: float, voltage: float) -> ExtractionPoint:
        """The stored point closest to the requested boundary conditions."""
        if not self.points:
            raise ExtractionError("the sweep holds no points")
        return min(self.points,
                   key=lambda p: abs(p.displacement - displacement) + abs(p.voltage - voltage))


class ParameterExtractor:
    """Boundary-condition sweeps over the electrostatic FE model.

    Parameters
    ----------
    area:
        Electrode area ``A`` [m^2].
    gap:
        Rest gap ``d`` [m].
    epsilon_r:
        Relative permittivity of the gap.
    gap_orientation:
        ``"paper"``: effective gap is ``d + x`` (Table 2 convention);
        ``"closing"``: ``d - x``.
    nx, ny:
        FE mesh divisions used for every solve.
    """

    def __init__(self, area: float, gap: float, epsilon_r: float = 1.0,
                 gap_orientation: str = "paper", nx: int = 24, ny: int = 16,
                 epsilon_0: float = EPSILON_0) -> None:
        if area <= 0.0 or gap <= 0.0 or epsilon_r <= 0.0:
            raise ExtractionError("area, gap and epsilon_r must be positive")
        if gap_orientation not in ("paper", "closing"):
            raise ExtractionError("gap_orientation must be 'paper' or 'closing'")
        self.area = float(area)
        self.gap = float(gap)
        self.epsilon_r = float(epsilon_r)
        self.gap_orientation = gap_orientation
        self.nx = int(nx)
        self.ny = int(ny)
        self.epsilon_0 = float(epsilon_0)

    # ------------------------------------------------------------------ solves
    def effective_gap(self, displacement: float) -> float:
        """Electrode separation at a given free-plate displacement."""
        gap = self.gap + displacement if self.gap_orientation == "paper" \
            else self.gap - displacement
        if gap <= 0.0:
            raise ExtractionError(
                f"displacement {displacement:g} closes the gap (effective gap {gap:g})")
        return gap

    def solve_point(self, displacement: float, voltage: float) -> ExtractionPoint:
        """Solve one FE problem and extract all conjugate quantities."""
        problem = ParallelPlateProblem.from_area(
            area=self.area, gap=self.effective_gap(displacement),
            epsilon_r=self.epsilon_r, nx=self.nx, ny=self.ny,
            epsilon_0=self.epsilon_0)
        solution = problem.solve(voltage if voltage != 0.0 else 1.0)
        capacitance = solution.capacitance
        if voltage == 0.0:
            # Re-scale the unit-voltage solve back to zero drive.
            charge = 0.0
            force = 0.0
            energy = 0.0
            field = 0.0
        else:
            charge = solution.electrode_charge()
            force = solution.electrode_force()
            energy = solution.energy
            field = solution.uniform_field_estimate()
        return ExtractionPoint(
            displacement=float(displacement), voltage=float(voltage),
            capacitance=float(capacitance), charge=float(charge),
            force=float(force), energy=float(energy), field=float(field))

    def sweep(self, displacements: Iterable[float],
              voltages: Iterable[float]) -> ExtractionSweep:
        """Solve the full cartesian sweep of displacements x voltages."""
        sweep = ExtractionSweep()
        for displacement in displacements:
            for voltage in voltages:
                sweep.points.append(self.solve_point(float(displacement), float(voltage)))
        if not sweep.points:
            raise ExtractionError("empty extraction sweep")
        return sweep

    # ------------------------------------------------------------------ macromodels
    def capacitance_model(self, displacements: Sequence[float],
                          probe_voltage: float = 1.0) -> PiecewiseLinearModel:
        """Piecewise-linear ``C(x)`` macromodel from an FE displacement sweep."""
        displacements = sorted(float(x) for x in displacements)
        capacitances = [self.solve_point(x, probe_voltage).capacitance
                        for x in displacements]
        return PiecewiseLinearModel(tuple(displacements), tuple(capacitances),
                                    quantity="capacitance", unit="F")

    def force_model(self, displacements: Sequence[float],
                    voltages: Sequence[float]) -> BilinearTableModel:
        """Bilinear ``F(x, V)`` macromodel (force magnitude) from an FE sweep."""
        displacements = sorted(float(x) for x in displacements)
        voltages = sorted(float(v) for v in voltages)
        rows = []
        for displacement in displacements:
            row = [self.solve_point(displacement, voltage).force for voltage in voltages]
            rows.append(tuple(row))
        return BilinearTableModel(tuple(displacements), tuple(voltages), tuple(rows),
                                  quantity="force", unit="N")

    def force_vs_voltage(self, voltages: Sequence[float],
                         displacement: float = 0.0) -> PiecewiseLinearModel:
        """Piecewise-linear ``F(V)`` at a fixed displacement (figure-6 sweep)."""
        voltages = sorted(float(v) for v in voltages)
        forces = [self.solve_point(displacement, voltage).force for voltage in voltages]
        return PiecewiseLinearModel(tuple(voltages), tuple(forces),
                                    quantity="force", unit="N")

    # ------------------------------------------------------------------ references
    def analytic_capacitance(self, displacement: float = 0.0) -> float:
        """Closed-form ``eps A / gap(x)`` for validation."""
        return self.epsilon_0 * self.epsilon_r * self.area / self.effective_gap(displacement)

    def analytic_force(self, voltage: float, displacement: float = 0.0) -> float:
        """Closed-form attractive force magnitude (Table 3, row a)."""
        gap = self.effective_gap(displacement)
        return 0.5 * self.epsilon_0 * self.epsilon_r * self.area * voltage * voltage / (gap * gap)
