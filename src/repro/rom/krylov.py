"""Second-order Krylov (moment-matching) reduction.

Moment matching about an expansion frequency ``f0``: with ``mu = (2 pi f)^2``
the undamped transfer function ``H(mu) = l^T (K - mu M)^-1 b`` has the Taylor
moments ``l^T [(K - mu0 M)^-1 M]^j (K - mu0 M)^-1 b`` about ``mu0``.  The
one-sided Galerkin projection onto the orthonormalized span of those moment
vectors matches the first ``j`` moments per expansion point -- the classic
shifted second-order Arnoldi recipe used for FE macromodels.  Multiple
expansion points concatenate their Krylov blocks into one basis, giving a
rational-interpolation ROM accurate around every shift.

Unlike modal truncation, no eigensolve is needed -- only factorizations of
``K - mu0 M`` -- and accuracy concentrates near the chosen frequencies, which
is what harmonic characterization sweeps want.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import FEMError, LinAlgError
from ..linalg import FactorizedSolver
from .modal import _input_map, _project, _reduced_damping
from .statespace import ReducedModel

__all__ = ["krylov_rom", "second_order_arnoldi"]


def _factorize(matrix):
    """Factorize a dense or sparse operator, returning a solve closure.

    Routed through :class:`repro.linalg.FactorizedSolver`, which picks
    SuperLU for sparse operators and LAPACK LU otherwise; the closure is
    reused for every moment vector of the expansion point.
    """
    return FactorizedSolver().factorize(matrix).solve


def second_order_arnoldi(mass, stiffness, starts: np.ndarray,
                         expansion_freqs: Sequence[float],
                         vectors_per_point: int | Sequence[int]) -> np.ndarray:
    """Orthonormal moment-vector basis of the second-order system.

    ``starts`` is the ``(n, m)`` block of input columns; for every expansion
    frequency the shifted operator ``K - (2 pi f0)^2 M`` is factorized once
    and up to ``vectors_per_point`` moment vectors (a single count, or one
    count per (frequency, input-column) sequence in frequency-major order)
    are generated per input column with the shift-invert Arnoldi recursion
    ``v_{j+1} = (K - mu0 M)^-1 M v_j``.  Each
    vector is orthogonalized against the accumulated basis (modified
    Gram-Schmidt, applied twice) *inside* the recursion -- raw moment
    vectors shrink by a factor of the smallest eigenvalue per step, so a
    post-hoc orthonormalization would silently lose every direction past
    the first couple.  A sequence stops early ("happy breakdown") when its
    next vector is numerically dependent on the basis.
    """
    n = starts.shape[0]
    num_sequences = len(expansion_freqs) * starts.shape[1]
    if isinstance(vectors_per_point, (int, np.integer)):
        counts = [int(vectors_per_point)] * num_sequences
    else:
        counts = [int(c) for c in vectors_per_point]
        if len(counts) != num_sequences:
            raise FEMError(
                f"{num_sequences} Arnoldi sequences but {len(counts)} "
                "per-sequence vector counts")
    columns: list[np.ndarray] = []

    def orthonormalize(vector: np.ndarray) -> np.ndarray | None:
        reference = float(np.linalg.norm(vector))
        if reference == 0.0:
            return None
        for _ in range(2):  # MGS with one reorthogonalization pass
            for column in columns:
                vector = vector - column * float(column @ vector)
        norm = float(np.linalg.norm(vector))
        if norm <= 1e-10 * reference:
            return None  # numerically dependent: sequence exhausted
        return vector / norm

    for f_index, f0 in enumerate(expansion_freqs):
        point_counts = counts[f_index * starts.shape[1]:
                              (f_index + 1) * starts.shape[1]]
        if max(point_counts) < 1:
            continue
        mu0 = (2.0 * np.pi * float(f0)) ** 2
        shifted = stiffness - mu0 * mass
        try:
            solve = _factorize(shifted)
        except (LinAlgError, ValueError) as exc:
            raise FEMError(
                f"cannot factorize K - mu0 M at f0={f0:g} Hz (expansion point "
                f"on a resonance?): {exc}") from exc
        for j in range(starts.shape[1]):
            vector = solve(starts[:, j])
            for _ in range(point_counts[j]):
                vector = np.asarray(vector, dtype=float).reshape(n)
                if not np.all(np.isfinite(vector)):
                    raise FEMError(
                        f"moment vector diverged at f0={f0:g} Hz; the shifted "
                        "operator K - mu0 M is singular (expansion point on a "
                        "resonance)")
                accepted = orthonormalize(vector)
                if accepted is None:
                    break
                columns.append(accepted)
                vector = solve(mass @ accepted)
    if not columns:
        raise FEMError("Krylov basis collapsed to zero (zero input pattern?)")
    return np.column_stack(columns)


def krylov_rom(mass: np.ndarray, stiffness: np.ndarray,
               damping: np.ndarray | None = None, *, order: int = 6,
               expansion_freqs: Iterable[float] = (0.0,),
               inputs=None, outputs=None,
               rayleigh: tuple[float, float] | None = None) -> ReducedModel:
    """Build a moment-matching :class:`~repro.rom.statespace.ReducedModel`.

    Parameters
    ----------
    mass, stiffness:
        Full symmetric system matrices (dense or scipy sparse).
    damping:
        Optional full damping matrix (projected; does not enter the moment
        recursion, which is standard for lightly damped structures).
    order:
        Target reduced order ``r``; the basis is truncated to the leading
        ``r`` orthonormal directions.
    expansion_freqs:
        Expansion frequencies [Hz]; moments are split evenly across them.
        ``0.0`` matches static behaviour exactly (``dc_gain`` of the ROM
        equals the full static compliance).
    inputs, outputs:
        Same DOF-selector conventions as :func:`repro.rom.modal.modal_rom`.
    rayleigh:
        ``(alpha, beta)`` coefficients building ``C = alpha M + beta K``
        before projection.
    """
    n = mass.shape[0]
    if order < 1 or order > n:
        raise FEMError(f"Krylov order must be in [1, {n}], got {order}")
    freqs = [float(f) for f in expansion_freqs]
    if not freqs:
        raise FEMError("at least one expansion frequency is required")
    if any(f < 0.0 for f in freqs):
        raise FEMError("expansion frequencies must be non-negative")
    if damping is not None and rayleigh is not None:
        raise FEMError("give either a damping matrix or Rayleigh coefficients")
    b_full = _input_map(inputs, n)
    if b_full.shape[1] >= n:
        raise FEMError(
            "Krylov reduction needs a low-rank input pattern; pass a drive "
            "DOF or force vector via 'inputs'")
    # Distribute the order budget over the (frequency, input) sequences so
    # every expansion point contributes and the total equals the requested
    # order exactly (ceil division with post-hoc truncation would silently
    # drop the later expansion points; per-input division would lose the
    # remainder).
    sequences = len(freqs) * b_full.shape[1]
    if order < sequences:
        raise FEMError(
            f"order {order} cannot cover {len(freqs)} expansion frequencies "
            f"x {b_full.shape[1]} input(s); raise the order or drop "
            "expansion points")
    base, extra = divmod(order, sequences)
    counts = [base + (1 if s < extra else 0) for s in range(sequences)]
    basis = second_order_arnoldi(mass, stiffness, b_full, freqs, counts)
    basis = basis[:, :order]
    reduced_m = _project(mass, basis)
    reduced_k = _project(stiffness, basis)
    length = _input_map(outputs, n)
    return ReducedModel(
        M=reduced_m,
        C=_reduced_damping(basis, reduced_m, reduced_k, damping, rayleigh),
        K=reduced_k,
        B=basis.T @ b_full,
        L=length.T @ basis,
        basis=basis,
        method="krylov")
