"""Bridges between the ROM subsystem and the other layers.

* :func:`rom_from_matrices` / :func:`rom_from_beam` / :func:`rom_from_chain`
  build :class:`~repro.rom.statespace.ReducedModel` objects from assembled
  FE output (:mod:`repro.fem.structural`) with one call,
* :func:`rom_device` wraps a ROM as the multi-terminal
  :class:`~repro.circuit.devices.rom.ROMDevice` for MNA op/ac/tran analyses,
* :func:`rom_to_hdl` emits the ROM as an HDL-A Foster-chain entity through
  :func:`repro.pxt.hdl_codegen.generate_rom_macromodel`,
* :class:`BeamROMEvaluator` is a picklable, cache-friendly campaign
  evaluator so order/accuracy convergence sweeps run on the
  :class:`~repro.campaign.runner.CampaignRunner` worker pool with
  content-addressed result caching.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ..errors import FEMError
from .krylov import krylov_rom
from .modal import modal_rom
from .statespace import ReducedModel, harmonic_error

if TYPE_CHECKING:  # pragma: no cover
    from ..circuit.devices.rom import ROMDevice
    from ..circuit.netlist import Node
    from ..fem.structural import CantileverBeam, SpringMassChain

__all__ = ["rom_from_matrices", "rom_from_beam", "rom_from_chain",
           "rom_device", "rom_to_hdl", "BeamROMEvaluator"]


def _output_map(n: int, output_dofs: Sequence[int] | None):
    """Columns selecting ``output_dofs`` (None keeps every DOF)."""
    if output_dofs is None:
        return None
    indices = [int(np.arange(n)[dof]) for dof in output_dofs]
    matrix = np.zeros((n, len(indices)))
    matrix[indices, np.arange(len(indices))] = 1.0
    return matrix


def rom_from_matrices(mass, stiffness, damping=None, *, order: int = 6,
                      method: str = "modal", drive_dof: int = -1,
                      output_dofs: Sequence[int] | None = None,
                      expansion_freqs: Iterable[float] = (0.0,),
                      rayleigh: tuple[float, float] | None = None) -> ReducedModel:
    """Reduce an assembled ``(M, [C,] K)`` system driven at one DOF.

    ``method`` is ``"modal"`` (eigensolve + truncation) or ``"krylov"``
    (moment matching about ``expansion_freqs``).  ``output_dofs`` defaults to
    every DOF so the ROM response has the same layout as the full solution.
    """
    n = mass.shape[0]
    drive = int(np.arange(n)[drive_dof])
    outputs = _output_map(n, output_dofs)
    if method == "modal":
        return modal_rom(mass, stiffness, damping, order=order, inputs=drive,
                         outputs=outputs, rayleigh=rayleigh)
    if method == "krylov":
        return krylov_rom(mass, stiffness, damping, order=order,
                          expansion_freqs=expansion_freqs, inputs=drive,
                          outputs=outputs, rayleigh=rayleigh)
    raise FEMError(f"unknown reduction method {method!r} "
                   "(use 'modal' or 'krylov')")


def rom_from_beam(beam: "CantileverBeam", *, order: int = 6,
                  method: str = "modal", drive_dof: int = -2,
                  output_dofs: Sequence[int] | None = None,
                  expansion_freqs: Iterable[float] = (0.0,),
                  rayleigh: tuple[float, float] | None = None) -> ReducedModel:
    """ROM of a :class:`~repro.fem.structural.CantileverBeam`.

    The default drive/observation DOF is the tip deflection (index ``-2`` of
    the clamped assembly).
    """
    stiffness, mass = beam.assemble()
    return rom_from_matrices(mass, stiffness, order=order, method=method,
                             drive_dof=drive_dof, output_dofs=output_dofs,
                             expansion_freqs=expansion_freqs, rayleigh=rayleigh)


def rom_from_chain(chain: "SpringMassChain", *, order: int | None = None,
                   method: str = "modal", drive_dof: int = -1,
                   output_dofs: Sequence[int] | None = None,
                   expansion_freqs: Iterable[float] = (0.0,)) -> ReducedModel:
    """ROM of a :class:`~repro.fem.structural.SpringMassChain`.

    The chain's own damping matrix is projected; ``order`` defaults to the
    full chain size (useful for exact-equivalence tests).
    """
    mass, damping, stiffness = chain.matrices()
    return rom_from_matrices(mass, stiffness, damping,
                             order=chain.size if order is None else order,
                             method=method, drive_dof=drive_dof,
                             output_dofs=output_dofs,
                             expansion_freqs=expansion_freqs)


def rom_device(name: str, rom: ReducedModel, p: "Node", n: "Node") -> "ROMDevice":
    """Wrap a single-input ROM as a one-port mechanical circuit device."""
    from ..circuit.devices.rom import ROMDevice

    if rom.num_inputs != 1:
        raise FEMError(
            f"rom_device wraps single-input models; this one has "
            f"{rom.num_inputs} inputs (construct ROMDevice directly)")
    return ROMDevice(name, rom, [(p, n)])


def rom_to_hdl(name: str, rom: ReducedModel, input_index: int = 0) -> str:
    """Emit the ROM as HDL-A source (Foster-chain entity ``name``)."""
    from ..pxt.hdl_codegen import generate_rom_macromodel

    return generate_rom_macromodel(name, rom, input_index=input_index)


@lru_cache(maxsize=8)
def _assembled_beam(evaluator: "BeamROMEvaluator"):
    """Per-geometry matrix cache: ``(stiffness, mass, damping)``, read-only.

    The evaluator is a frozen all-float dataclass, so it is its own cache
    key.  Campaign order sweeps call the evaluator once per point with
    identical geometry; caching here means only the first point pays the FE
    assembly -- the rest pay just their eigensolve.
    """
    stiffness, mass = evaluator._beam().assemble()
    damping = evaluator.rayleigh_alpha * mass + evaluator.rayleigh_beta * stiffness
    for matrix in (stiffness, mass, damping):
        matrix.setflags(write=False)
    return stiffness, mass, damping


@lru_cache(maxsize=8)
def _reference_response(evaluator: "BeamROMEvaluator") -> np.ndarray:
    """Per-geometry full-solve harmonic reference at the probe DOF.

    This is the expensive part of scoring a ROM (one dense ``n x n``
    factorization per probe frequency); every order/method point of a sweep
    shares it, so it is computed once per geometry and process.
    """
    from ..fem.harmonic import harmonic_response

    stiffness, mass, damping = _assembled_beam(evaluator)
    probe = evaluator.probe_frequencies()
    response = harmonic_response(mass, damping, stiffness, probe,
                                 drive_dof=-2).displacements[:, [-2]]
    response.setflags(write=False)
    return response


@dataclass(frozen=True)
class BeamROMEvaluator:
    """Campaign evaluator: build a beam ROM per point and score its accuracy.

    The evaluator holds only plain-float beam geometry and probe-grid
    configuration, so it pickles cheaply to pool workers; scenario points
    bind ``order`` (and optionally ``method`` via a corner axis and
    ``expansion_freq`` for Krylov ROMs).  Outputs per point:

    * ``max_error`` / ``mean_error`` -- relative harmonic error against the
      full solve over the probe grid,
    * ``within_1pct`` -- fraction of probe frequencies within 1% relative
      error (the acceptance-criterion quantity),
    * ``resonance_hz`` -- the ROM's fundamental frequency.

    ``cache_payload`` covers the full configuration, so changing the mesh,
    geometry or probe grid transparently invalidates cached rows.  The
    assembled ``(M, K, C)`` matrices and the full-solve reference response
    are memoized per geometry (the frozen dataclass is its own key), so an
    order sweep pays the FE assembly and the full harmonic reference once
    and each point only its eigensolve.
    """

    length: float
    width: float
    thickness: float
    youngs_modulus: float
    density: float
    elements: int = 40
    f_min: float = 1e3
    f_max: float = 1e6
    probe_points: int = 60
    rayleigh_alpha: float = 0.0
    rayleigh_beta: float = 1e-9

    def _beam(self) -> "CantileverBeam":
        from ..fem.structural import CantileverBeam

        return CantileverBeam(
            length=self.length, width=self.width, thickness=self.thickness,
            youngs_modulus=self.youngs_modulus, density=self.density,
            elements=self.elements)

    def probe_frequencies(self) -> np.ndarray:
        """The accuracy probe grid [Hz]."""
        return np.linspace(self.f_min, self.f_max, self.probe_points)

    def __call__(self, point: Mapping[str, object]) -> dict[str, float]:
        order = int(point["order"])
        method = str(point.get("method", "modal"))
        expansion = point.get("expansion_freq")
        freqs = (0.0,) if expansion is None else (float(expansion),)
        stiffness, mass, damping = _assembled_beam(self)
        rayleigh = (self.rayleigh_alpha, self.rayleigh_beta)
        rom = rom_from_matrices(mass, stiffness, order=order, method=method,
                                drive_dof=-2, output_dofs=[-2],
                                expansion_freqs=freqs, rayleigh=rayleigh)
        probe = self.probe_frequencies()
        errors = harmonic_error(rom, mass, damping, stiffness, probe,
                                drive_dof=-2, output_dofs=[-2],
                                reference=_reference_response(self))
        omega_sq, _ = rom.modal_parameters()
        fundamental = float(np.sqrt(max(float(omega_sq[0]), 0.0)) / (2.0 * np.pi))
        return {
            "max_error": float(np.max(errors)),
            "mean_error": float(np.mean(errors)),
            "within_1pct": float(np.mean(errors <= 0.01)),
            "resonance_hz": fundamental,
        }

    def cache_payload(self) -> dict:
        return {
            "evaluator": "repro.rom.convert.BeamROMEvaluator",
            "length": self.length, "width": self.width,
            "thickness": self.thickness,
            "youngs_modulus": self.youngs_modulus, "density": self.density,
            "elements": self.elements, "f_min": self.f_min,
            "f_max": self.f_max, "probe_points": self.probe_points,
            "rayleigh_alpha": self.rayleigh_alpha,
            "rayleigh_beta": self.rayleigh_beta,
        }
