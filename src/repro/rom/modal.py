"""Modal truncation: project onto the lowest mass-normalized modes.

The classic MEMS macromodeling reduction: solve the generalized eigenproblem
``K phi = omega^2 M phi`` (via the shared
:func:`repro.fem.solver.solve_generalized_eig` helper), keep the lowest
modes and project mass, damping, stiffness and the input/output maps onto
them.  Because the mode shapes are mass-normalized the pure-truncation
reduced system is ``I q'' + Cr q' + diag(omega^2) q = Phi^T b u``.

By default the basis is augmented with the *static correction* vectors
``K^-1 b`` (mode-acceleration method): truncated high modes still respond
quasi-statically to the load, and without the correction the relative error
concentrates exactly at the drive-point anti-resonances.  One extra basis
vector per input restores those notches to full accuracy -- on the beam
fixture it turns a ~2x worst-case error at the first anti-resonance into
parts-per-million across the band.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..errors import FEMError, LinAlgError
from ..fem.solver import solve_generalized_eig
from ..linalg import FactorizedSolver
from .statespace import ReducedModel

__all__ = ["modal_rom"]


def _input_map(selector, n: int) -> np.ndarray:
    """Normalize an input/output DOF selector to a dense (n, m) map."""
    if selector is None:
        return np.eye(n)
    if isinstance(selector, (int, np.integer)):
        column = np.zeros((n, 1))
        column[int(np.arange(n)[selector]), 0] = 1.0
        return column
    matrix = np.asarray(selector, dtype=float)
    if matrix.ndim == 1:
        if matrix.shape != (n,):
            raise FEMError(f"input/output vector must have {n} entries, "
                           f"got {matrix.shape}")
        return matrix[:, None]
    if matrix.shape[0] != n:
        raise FEMError(f"input/output map must have {n} rows, got {matrix.shape}")
    return matrix


def _project(matrix, basis: np.ndarray) -> np.ndarray:
    """Galerkin projection ``V^T A V``, sparse-aware (no densification)."""
    return np.asarray(basis.T @ (matrix @ basis))


def _reduced_damping(basis: np.ndarray, reduced_m: np.ndarray,
                     reduced_k: np.ndarray, damping,
                     rayleigh: tuple[float, float] | None) -> np.ndarray:
    """Reduced damping from a full matrix or Rayleigh coefficients.

    Rayleigh damping ``C = alpha M + beta K`` projects to
    ``alpha Mr + beta Kr`` exactly in any basis, so it never touches the
    full matrices.
    """
    if rayleigh is not None:
        alpha, beta = float(rayleigh[0]), float(rayleigh[1])
        return alpha * reduced_m + beta * reduced_k
    if damping is not None:
        n = basis.shape[0]
        if damping.shape != (n, n):
            raise FEMError(f"damping matrix must be {n}x{n}, got {damping.shape}")
        return _project(damping, basis)
    return np.zeros((basis.shape[1], basis.shape[1]))


def _static_solve(stiffness, rhs: np.ndarray) -> np.ndarray:
    """Solve ``K x = rhs`` for the static-correction columns."""
    rhs = rhs if rhs.ndim == 2 else rhs[:, None]
    try:
        solution = FactorizedSolver().solve(stiffness, rhs)
    except LinAlgError as exc:
        raise FEMError(f"static-correction solve failed: {exc}") from exc
    return solution if solution.ndim == 2 else solution[:, None]


def modal_rom(mass: np.ndarray, stiffness: np.ndarray,
              damping: np.ndarray | None = None, *, order: int = 6,
              inputs=None, outputs=None,
              rayleigh: tuple[float, float] | None = None,
              static_correction: bool = True,
              eig_method: str = "auto") -> ReducedModel:
    """Build a modal-truncation :class:`~repro.rom.statespace.ReducedModel`.

    Parameters
    ----------
    mass, stiffness:
        Full symmetric system matrices (dense arrays or scipy sparse).
    damping:
        Optional full damping matrix, projected onto the basis.  Mutually
        exclusive with ``rayleigh``.
    order:
        Total reduced order ``r`` (retained modes plus static-correction
        vectors when those are active).
    inputs:
        Drive DOF index, force-pattern vector ``(n,)`` or map ``(n, m)``;
        default: unit force on every DOF (``B = Phi^T``).
    outputs:
        Observed DOF structure with the same conventions; default: every DOF
        so lifted responses cover the full displacement vector.
    rayleigh:
        ``(alpha, beta)`` proportional-damping coefficients building
        ``C = alpha M + beta K`` (projected exactly in any basis).
    static_correction:
        Augment the modal basis with the static responses ``K^-1 b`` (one
        vector per input column) inside the ``order`` budget.  Automatically
        disabled when the input map is wide (e.g. the identity default) or
        would leave no room for modes.
    eig_method:
        Passed to :func:`~repro.fem.solver.solve_generalized_eig`.
    """
    n = mass.shape[0]
    if order < 1 or order > n:
        raise FEMError(f"modal order must be in [1, {n}], got {order}")
    if damping is not None and rayleigh is not None:
        raise FEMError("give either a damping matrix or Rayleigh coefficients")
    b_map = _input_map(inputs, n)
    num_inputs = b_map.shape[1]
    use_static = static_correction and num_inputs < order and num_inputs <= n // 4
    num_modes = order - num_inputs if use_static else order
    _, shapes = solve_generalized_eig(stiffness, mass, num_modes,
                                      method=eig_method)
    if use_static:
        block = np.column_stack([shapes, _static_solve(stiffness, b_map)])
        u, singular, _ = np.linalg.svd(block, full_matrices=False)
        basis = u[:, singular > 1e-12 * singular[0]]
    else:
        basis = shapes
    reduced_m = _project(mass, basis)
    reduced_k = _project(stiffness, basis)
    reduced_c = _reduced_damping(basis, reduced_m, reduced_k, damping, rayleigh)
    length = _input_map(outputs, n)
    return ReducedModel(M=reduced_m, C=reduced_c, K=reduced_k,
                        B=basis.T @ b_map, L=length.T @ basis, basis=basis,
                        method="modal")
