"""Model-order reduction: FE systems distilled into small macromodels.

The paper's PXT flow characterizes FE models and replaces them with cheap
behavioral macromodels for system simulation.  This package provides the
modern form of that distillation -- projection-based model-order reduction
of assembled ``(M, C, K)`` systems:

* :mod:`repro.rom.modal` -- modal truncation onto the lowest mass-normalized
  modes (via the shared :func:`repro.fem.solver.solve_generalized_eig`),
* :mod:`repro.rom.krylov` -- second-order Arnoldi / moment matching about
  one or more expansion frequencies (no eigensolve, accuracy concentrated
  where the sweep lives),
* :mod:`repro.rom.statespace` -- the :class:`ReducedModel` macromodel with
  ``harmonic()``, trapezoidal ``transient()``, ``dc_gain()`` and error
  probing against the full model,
* :mod:`repro.rom.convert` -- bridges: one-call builders from
  :mod:`repro.fem.structural` models, the
  :class:`~repro.circuit.devices.rom.ROMDevice` circuit wrapper, HDL-A
  Foster-chain export, and the campaign-cacheable
  :class:`BeamROMEvaluator` for order/accuracy sweeps on the worker pool.

Quickstart::

    from repro.fem import CantileverBeam
    from repro.rom import rom_from_beam

    beam = CantileverBeam(300e-6, 20e-6, 2e-6, 160e9, 2330.0, elements=100)
    rom = rom_from_beam(beam, order=6)           # 200 DOFs -> 6
    response = rom.harmonic(frequencies)          # r x r solves per point
    compliance = rom.dc_gain()[-2, 0]             # tip row: 1 / tip_stiffness
"""

from .statespace import ReducedModel, harmonic_error
from .modal import modal_rom
from .krylov import krylov_rom, second_order_arnoldi
from .convert import (BeamROMEvaluator, rom_device, rom_from_beam,
                      rom_from_chain, rom_from_matrices, rom_to_hdl)
from .sensitivity import (dc_gain_sensitivities,
                          harmonic_output_sensitivities,
                          project_matrix_derivatives,
                          rom_output_sensitivities)

__all__ = [
    "ReducedModel",
    "harmonic_error",
    "modal_rom",
    "krylov_rom",
    "second_order_arnoldi",
    "rom_from_matrices",
    "rom_from_beam",
    "rom_from_chain",
    "rom_device",
    "rom_to_hdl",
    "BeamROMEvaluator",
    "dc_gain_sensitivities",
    "harmonic_output_sensitivities",
    "project_matrix_derivatives",
    "rom_output_sensitivities",
]
