"""Reduced state-space macromodels and their analyses.

A :class:`ReducedModel` is the product of every reduction in this package:
a small second-order system

.. math::

    M_r \\ddot q + C_r \\dot q + K_r q = B_r u, \\qquad y = L_r q

obtained by projecting the assembled FE matrices onto a reduction basis
``V`` (``q = V^T``-coordinates).  Modal truncation produces diagonal
``M_r = I, K_r = diag(omega^2)``; Krylov projection produces full (but tiny)
reduced matrices.  Either way the model supports the same analyses as the
full system -- harmonic sweeps, trapezoidal transient integration, DC gain --
at ``r x r`` cost instead of ``n x n``, and can be converted to first-order
descriptor form ``E x' = A x + B u`` for export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np
import scipy.linalg as la

from ..errors import FEMError, LinAlgError
from ..linalg import FactorizationCache, FactorizedSolver

#: Shared cache of transient iteration-matrix factorizations: repeated
#: integrations of the same reduced model at the same step (campaign points,
#: convergence sweeps) skip the LU entirely.
_TRANSIENT_FACTOR_CACHE = FactorizationCache(FactorizedSolver("dense"),
                                             maxsize=16)

__all__ = ["ReducedModel", "harmonic_error"]


@dataclass
class ReducedModel:
    """A second-order reduced macromodel ``Mr q'' + Cr q' + Kr q = B u, y = L q``.

    Attributes
    ----------
    M, C, K:
        Reduced ``(r, r)`` mass, damping and stiffness matrices.
    B:
        ``(r, m)`` input map (full-order force pattern projected onto the
        basis).
    L:
        ``(p, r)`` displacement output map.
    basis:
        Optional ``(n, r)`` projection basis ``V`` (mode shapes or Krylov
        vectors) kept for lifting reduced solutions back to full DOFs.
    method:
        ``"modal"`` or ``"krylov"`` -- which reduction produced the model.
    """

    M: np.ndarray
    C: np.ndarray
    K: np.ndarray
    B: np.ndarray
    L: np.ndarray
    basis: np.ndarray | None = None
    method: str = "modal"

    def __post_init__(self) -> None:
        self.M = np.atleast_2d(np.asarray(self.M, dtype=float))
        self.C = np.atleast_2d(np.asarray(self.C, dtype=float))
        self.K = np.atleast_2d(np.asarray(self.K, dtype=float))
        self.B = np.asarray(self.B, dtype=float)
        if self.B.ndim == 1:
            self.B = self.B[:, None]
        self.L = np.atleast_2d(np.asarray(self.L, dtype=float))
        r = self.M.shape[0]
        for name, matrix in (("M", self.M), ("C", self.C), ("K", self.K)):
            if matrix.shape != (r, r):
                raise FEMError(f"reduced {name} must be {r}x{r}, got {matrix.shape}")
        if self.B.shape[0] != r:
            raise FEMError(f"input map B must have {r} rows, got {self.B.shape}")
        if self.L.shape[1] != r:
            raise FEMError(f"output map L must have {r} columns, got {self.L.shape}")
        if self.basis is not None:
            self.basis = np.asarray(self.basis, dtype=float)
            if self.basis.ndim != 2 or self.basis.shape[1] != r:
                raise FEMError(
                    f"basis must be (n, {r}), got {self.basis.shape}")

    # ------------------------------------------------------------------ shape
    @property
    def order(self) -> int:
        """Number of reduced coordinates ``r``."""
        return self.M.shape[0]

    @property
    def num_inputs(self) -> int:
        """Number of input columns ``m``."""
        return self.B.shape[1]

    @property
    def num_outputs(self) -> int:
        """Number of output rows ``p``."""
        return self.L.shape[0]

    # ------------------------------------------------------------- conversions
    def first_order(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Descriptor first-order form ``(A, B, C, E)`` with state ``[q, q']``."""
        r = self.order
        eye = np.eye(r)
        a = np.block([[np.zeros((r, r)), eye], [-self.K, -self.C]])
        e = np.block([[eye, np.zeros((r, r))], [np.zeros((r, r)), self.M]])
        b = np.vstack([np.zeros((r, self.num_inputs)), self.B])
        c = np.hstack([self.L, np.zeros((self.num_outputs, r))])
        return a, b, c, e

    def modal_parameters(self) -> tuple[np.ndarray, np.ndarray]:
        """Diagonalize the reduced system: ``(omega^2, shapes)``.

        For a modal model this is the identity; for a Krylov model it
        extracts the Ritz approximations of the full modes.  The returned
        ``shapes`` are reduced-mass-normalized columns in reduced
        coordinates.
        """
        try:
            values, vectors = la.eigh(self.K, self.M)
        except la.LinAlgError as exc:
            raise FEMError(f"reduced eigensolve failed: {exc}") from exc
        return np.clip(values, 0.0, None), vectors

    # ------------------------------------------------------------------ analyses
    def dc_gain(self) -> np.ndarray:
        """Static output per unit input ``L K^-1 B`` as a ``(p, m)`` array."""
        try:
            return self.L @ FactorizedSolver("dense").solve(self.K, self.B)
        except LinAlgError as exc:
            raise FEMError(f"reduced stiffness is singular: {exc}") from exc

    def harmonic_states(self, frequencies: Iterable[float],
                        input_index: int = 0) -> np.ndarray:
        """Reduced coordinates ``q(omega)`` over a frequency grid [Hz].

        Returns ``(num_frequencies, order)`` phasors per unit harmonic force
        on input column ``input_index`` -- lift with the stored basis for
        full-DOF responses, or apply ``L`` for the declared outputs.
        """
        frequencies = np.asarray(list(frequencies), dtype=float)
        if frequencies.size == 0:
            raise FEMError("harmonic sweep needs at least one frequency")
        b = self.B[:, input_index].astype(complex)
        states = np.zeros((frequencies.size, self.order), dtype=complex)
        solver = FactorizedSolver("dense")
        for k, frequency in enumerate(frequencies):
            omega = 2.0 * np.pi * frequency
            dynamic = self.K + 1j * omega * self.C - omega * omega * self.M
            try:
                states[k] = solver.solve(dynamic, b)
            except LinAlgError as exc:
                raise FEMError(
                    f"reduced harmonic solve failed at f={frequency:g} Hz: "
                    f"{exc}") from exc
        return states

    def harmonic(self, frequencies: Iterable[float], input_index: int = 0
                 ) -> np.ndarray:
        """Complex output response over a frequency grid [Hz].

        Returns ``(num_frequencies, num_outputs)`` displacement phasors per
        unit harmonic force on input column ``input_index``.
        """
        return self.harmonic_states(frequencies, input_index) @ self.L.T

    def transient(self, t_stop: float, t_step: float,
                  force: Callable[[float], float] | float = 1.0,
                  input_index: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Trapezoidal time integration from rest.

        ``force`` is the scalar input waveform ``u(t)`` (a constant is a
        step).  Returns ``(times, outputs)`` with outputs of shape
        ``(num_times, num_outputs)``.
        """
        if t_stop <= 0.0 or t_step <= 0.0 or t_step > t_stop:
            raise FEMError("transient needs 0 < t_step <= t_stop")
        a, b, c, e = self.first_order()
        b = b[:, input_index]
        u = force if callable(force) else (lambda _t, _f=float(force): _f)
        times = np.arange(0.0, t_stop + 0.5 * t_step, t_step)
        h = t_step
        lhs = e - 0.5 * h * a
        rhs_matrix = e + 0.5 * h * a
        try:
            # Fingerprint-keyed: re-integrating the same model at the same
            # step (campaign points, parameter studies) reuses the LU.
            factorization = _TRANSIENT_FACTOR_CACHE.factorize(lhs)
        except LinAlgError as exc:
            raise FEMError(f"transient system is singular: {exc}") from exc
        x = np.zeros(2 * self.order)
        outputs = np.zeros((times.size, self.num_outputs))
        outputs[0] = c @ x
        u_prev = u(times[0])
        for k in range(1, times.size):
            u_next = u(times[k])
            rhs = rhs_matrix @ x + 0.5 * h * b * (u_prev + u_next)
            x = factorization.solve(rhs)
            outputs[k] = c @ x
            u_prev = u_next
        return times, outputs

    # ------------------------------------------------------------------ lifting
    def lift(self, reduced_solution: np.ndarray) -> np.ndarray:
        """Lift reduced coordinates back to full DOFs via the stored basis."""
        if self.basis is None:
            raise FEMError("this reduced model kept no projection basis")
        return self.basis @ np.asarray(reduced_solution)

    def describe(self) -> str:
        """One-line summary used by reports and benchmarks."""
        return (f"ReducedModel(method={self.method}, order={self.order}, "
                f"inputs={self.num_inputs}, outputs={self.num_outputs})")


def harmonic_error(rom: ReducedModel, mass: np.ndarray, damping: np.ndarray,
                   stiffness: np.ndarray, frequencies: Iterable[float],
                   drive_dof: int = -1, output_dofs: Iterable[int] | None = None,
                   input_index: int = 0,
                   reference: np.ndarray | None = None) -> np.ndarray:
    """Per-frequency relative error of the ROM against the full harmonic solve.

    The full system is solved on the probe grid with a unit force at
    ``drive_dof``.  When the ROM kept its projection basis (every builder in
    this package does) the reduced solution is lifted through it and
    compared at ``output_dofs`` (default: every DOF) -- independent of the
    model's declared output map, so weighted or subset ``L`` maps cannot
    skew the metric.  A basis-less model falls back to its output rows,
    which are then assumed to be unit DOF selectors: ``output_dofs`` must
    list the observed DOF of each row positionally (required unless the
    model has one row per DOF).  The returned array holds, per frequency,
    the worst relative magnitude error over the compared DOFs -- the
    quantity the acceptance tests and the order-convergence campaign sweep.

    ``reference`` may supply a precomputed full-solve displacement block of
    shape ``(num_frequencies, len(output_dofs))`` so order sweeps over one
    geometry pay the expensive full solve once (see
    :class:`~repro.rom.convert.BeamROMEvaluator`).
    """
    # Local import: fem.harmonic routes method="rom" back into this package.
    from ..fem.harmonic import harmonic_response

    mass = np.asarray(mass, dtype=float)
    damping = np.asarray(damping, dtype=float)
    stiffness = np.asarray(stiffness, dtype=float)
    n = mass.shape[0]
    frequencies = np.asarray(list(frequencies), dtype=float)
    drive = int(np.arange(n)[drive_dof])
    if output_dofs is None:
        if rom.basis is None and rom.num_outputs != n:
            raise FEMError(
                f"this basis-less ROM observes {rom.num_outputs} of {n} "
                "DOFs; pass output_dofs listing the full-model DOF of each "
                "output row (in row order)")
        outputs = list(range(n))
    else:
        outputs = [int(np.arange(n)[dof]) for dof in output_dofs]
    if reference is None:
        reference = harmonic_response(mass, damping, stiffness, frequencies,
                                      drive_dof=drive).displacements[:, outputs]
    else:
        reference = np.asarray(reference, dtype=complex)
        if reference.shape != (frequencies.size, len(outputs)):
            raise FEMError(
                f"precomputed reference has shape {reference.shape}, expected "
                f"({frequencies.size}, {len(outputs)})")
    if rom.basis is not None:
        # Lift the reduced solution to the probed DOFs through the basis;
        # exact regardless of how L weights or selects outputs.
        states = rom.harmonic_states(frequencies, input_index=input_index)
        reduced = states @ rom.basis[outputs, :].T
    elif rom.num_outputs == n:
        # Basis-less full-output model: row index == DOF index.
        reduced = rom.harmonic(frequencies, input_index=input_index)[:, outputs]
    elif len(outputs) == rom.num_outputs:
        # Basis-less reduced outputs: row k observes the k-th probe DOF.
        reduced = rom.harmonic(frequencies, input_index=input_index)
    else:
        raise FEMError(
            f"ROM has {rom.num_outputs} outputs but {len(outputs)} probe DOFs "
            "were requested")
    scale = np.abs(reference)
    scale[scale == 0.0] = 1.0
    return np.max(np.abs(reduced - reference) / scale, axis=1)
