"""Exact output sensitivities of reduced-order models through a fixed basis.

A :class:`~repro.rom.statespace.ReducedModel` projects the full-order
matrices onto its reduction basis ``V``: ``M_r = V^T M V`` (same for ``C``
and ``K``).  Holding the basis fixed -- the standard "frozen-basis" ROM
sensitivity -- the parameter derivative of any reduced matrix is the exact
projection of the full-order derivative:

.. math::

    \\frac{dM_r}{dp} = V^T \\frac{dM}{dp} V,

and the implicit-function theorem on the tiny ``r x r`` reduced solves
gives DC-gain and harmonic-output gradients for the cost of reduced
back-substitutions.  The full-order matrix derivatives come from
assembly-level central differences
(:func:`repro.fem.sensitivity.matrix_derivatives`) of the caller's
assembly function -- two cheap re-assemblies per parameter, no full-order
solves at all.

The frozen-basis convention is what finite differences over a *re-projected*
model (same basis, perturbed matrices) converge to; re-deriving the basis
per design point would re-introduce the eigensolve into every gradient.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

import numpy as np
import scipy.sparse as sp

from ..errors import FEMError, LinAlgError
from ..fem.sensitivity import matrix_derivatives
from ..linalg import (FactorizedSolver, SensitivityResult,
                      SpectralSensitivities, solve_sensitivities,
                      sweep_spectral_sensitivities)
from .statespace import ReducedModel

__all__ = ["project_matrix_derivatives", "dc_gain_sensitivities",
           "harmonic_output_sensitivities", "rom_output_sensitivities"]


def project_matrix_derivatives(rom: ReducedModel, derivatives) -> list[tuple]:
    """Project full-order ``(dM, dC, dK)`` triples onto the ROM basis."""
    if rom.basis is None:
        raise FEMError(
            "this reduced model kept no projection basis; sensitivities "
            "through the projection are not defined")
    basis = rom.basis

    def project(matrix):
        if sp.issparse(matrix):
            return basis.T @ (matrix @ basis)
        return basis.T @ np.asarray(matrix, dtype=float) @ basis

    projected: list[tuple] = []
    for triple in derivatives:
        if len(triple) != 3:
            raise FEMError("each derivative entry must be a (dM, dC, dK) triple")
        projected.append(tuple(project(matrix) for matrix in triple))
    return projected


def dc_gain_sensitivities(rom: ReducedModel, reduced_derivatives,
                          params, input_index: int = 0,
                          method: str = "auto") -> SensitivityResult:
    """Sensitivities of the static gain ``y = L K_r^{-1} B[:, input]``.

    ``reduced_derivatives`` holds one ``(dM_r, dC_r, dK_r)`` triple per
    parameter (only ``dK_r`` enters at DC).  One ``r x r`` factorization,
    one forward solve, then adjoint/direct back-substitutions.  Output
    names are ``y<row>`` (the rows of the output map ``L``).
    """
    params = tuple(params)
    if len(params) != len(reduced_derivatives):
        raise FEMError("params and reduced_derivatives must align")
    solver = FactorizedSolver("dense")
    stats = {"adjoint_solves": 0, "direct_solves": 0}
    try:
        factorization = solver.factorize(rom.K)
        state = factorization.solve(rom.B[:, input_index])
    except LinAlgError as exc:
        raise FEMError(f"reduced stiffness is singular: {exc}") from exc
    dres = np.zeros((rom.order, len(params)))
    for k, (_, _, d_stiffness) in enumerate(reduced_derivatives):
        dres[:, k] = np.asarray(d_stiffness, dtype=float) @ state
    matrix = solve_sensitivities(factorization, rom.L, dres, method=method,
                                 stats=stats)
    stats["factorizations"] = solver.factorizations
    resolved = "adjoint" if stats["adjoint_solves"] else "direct"
    return SensitivityResult(
        outputs=tuple(f"y{row}" for row in range(rom.num_outputs)),
        params=params, values=rom.L @ state, matrix=matrix,
        method=resolved, stats=stats)


def harmonic_output_sensitivities(rom: ReducedModel, reduced_derivatives,
                                  params, frequencies: Iterable[float],
                                  input_index: int = 0,
                                  method: str = "auto"
                                  ) -> SpectralSensitivities:
    """Sensitivities of the harmonic outputs ``y(w) = L q(w)`` of a ROM.

    Per frequency: one ``r x r`` factorization + forward solve of the
    reduced dynamic stiffness, then one transposed back-substitution per
    output row (adjoint) or one forward back-substitution per parameter
    (direct).  Output names are ``y<row>``.
    """
    params = tuple(params)
    if len(params) != len(reduced_derivatives):
        raise FEMError("params and reduced_derivatives must align")
    frequencies = np.asarray(list(frequencies), dtype=float)
    if frequencies.size == 0:
        raise FEMError("harmonic sensitivities need at least one frequency")
    solver = FactorizedSolver("dense")
    stats = {"adjoint_solves": 0, "direct_solves": 0}
    force = rom.B[:, input_index].astype(complex)
    num_outputs = rom.num_outputs

    def system_at(f: int, omega: float):
        return rom.K + 1j * omega * rom.C - omega * omega * rom.M, force

    def dres_at(f: int, omega: float, state: np.ndarray) -> np.ndarray:
        dres = np.zeros((rom.order, len(params)), dtype=complex)
        for k, (d_mass, d_damping, d_stiffness) in enumerate(
                reduced_derivatives):
            d_dynamic = np.asarray(d_stiffness, dtype=float) \
                + 1j * omega * np.asarray(d_damping, dtype=float) \
                - omega * omega * np.asarray(d_mass, dtype=float)
            dres[:, k] = d_dynamic @ state
        return dres

    values, matrix, resolved = sweep_spectral_sensitivities(
        frequencies, rom.L, system_at, dres_at, method=method,
        solver=solver, stats=stats,
        solve_error=lambda frequency, exc: FEMError(
            f"reduced harmonic solve failed at f={frequency:g} Hz: {exc}"))
    stats["factorizations"] = solver.factorizations
    return SpectralSensitivities(
        frequencies, tuple(f"y{row}" for row in range(num_outputs)), params,
        values, matrix, resolved, stats)


def rom_output_sensitivities(rom: ReducedModel,
                             assemble: Callable[[dict], tuple],
                             params: Mapping[str, float],
                             frequencies: Iterable[float] | None = None,
                             input_index: int = 0, method: str = "auto",
                             rel_step: float = 1e-6):
    """One-call ROM sensitivity entry point from a full-order assembler.

    ``assemble(params) -> (M, C, K)`` builds the *full-order* matrices; the
    derivatives are formed by assembly-level central differences, projected
    exactly through the ROM's stored basis, and pushed through the reduced
    solves.  With ``frequencies=None`` the DC gain is differentiated
    (:func:`dc_gain_sensitivities`), otherwise the harmonic outputs
    (:func:`harmonic_output_sensitivities`).
    """
    base = {name: float(value) for name, value in params.items()}
    reduced = project_matrix_derivatives(
        rom, matrix_derivatives(assemble, base, rel_step=rel_step))
    if frequencies is None:
        return dc_gain_sensitivities(rom, reduced, tuple(base),
                                     input_index=input_index, method=method)
    return harmonic_output_sensitivities(rom, reduced, tuple(base),
                                         frequencies,
                                         input_index=input_index,
                                         method=method)
