"""Figure-5 comparison harness: behavioral model versus linearized circuit.

The paper's figure 5 excites the transducer + resonator system with voltage
pulses of 5, 10 and 15 V and overlays the displacements predicted by the
nonlinear behavioral (HDL-A) model and by the linearized equivalent circuit:

* at the linearization voltage (10 V) the two displacements converge,
* below it (5 V) the linear model *overshoots* (predicts too much
  displacement, by the ratio V0/V = 2x quasi-statically),
* above it (15 V) the linear model *undershoots* (ratio V0/V = 2/3).

The paper also reports a roughly 10x simulation-time penalty for the HDL
behavioral model relative to the native equivalent circuit.
:func:`measure_runtime_penalty` reproduces that measurement with this
package's solver (the absolute factor depends on the implementation, the
qualitative ordering -- behavioral slower than linearized -- is the claim).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuit.analysis.options import SimulationOptions
from ..circuit.analysis.results import TransientResult
from ..circuit.analysis.transient import TransientAnalysis
from .microsystem import (
    PAPER_PARAMETERS,
    Table4Parameters,
    build_behavioral_system,
    build_drive_waveform,
    build_linearized_system,
)

__all__ = ["Figure5Run", "Figure5Comparison", "run_figure5_comparison",
           "measure_runtime_penalty"]

#: Signal name of the behavioral transducer displacement in the results.
BEHAVIORAL_DISPLACEMENT = "x(XDCR)"
#: Signal name of the mass displacement (present in both systems).
MASS_DISPLACEMENT = "x(res_m)"


@dataclass
class Figure5Run:
    """Result of one excitation amplitude of the figure-5 experiment."""

    amplitude: float
    behavioral: TransientResult
    linearized: TransientResult
    #: Quasi-static displacement of the behavioral model on the pulse plateau.
    behavioral_plateau: float
    #: Quasi-static displacement of the linearized model on the pulse plateau.
    linearized_plateau: float

    @property
    def plateau_ratio(self) -> float:
        """Linearized / behavioral quasi-static displacement.

        > 1 means the linear model overshoots, < 1 means it undershoots,
        ~1 means the two models agree (expected at the bias voltage).
        """
        if self.behavioral_plateau == 0.0:
            return float("nan")
        return self.linearized_plateau / self.behavioral_plateau

    @property
    def linear_overshoots(self) -> bool:
        """True when the linearized model predicts more displacement."""
        return self.plateau_ratio > 1.0


@dataclass
class Figure5Comparison:
    """All runs of the figure-5 experiment plus the runtime measurement."""

    parameters: Table4Parameters
    runs: list[Figure5Run] = field(default_factory=list)
    behavioral_runtime: float = 0.0
    linearized_runtime: float = 0.0

    @property
    def runtime_penalty(self) -> float:
        """Behavioral / linearized wall-clock ratio (paper reports ~10x)."""
        if self.linearized_runtime <= 0.0:
            return float("nan")
        return self.behavioral_runtime / self.linearized_runtime

    def run_for(self, amplitude: float) -> Figure5Run:
        """Return the run closest to the requested amplitude."""
        return min(self.runs, key=lambda run: abs(run.amplitude - amplitude))

    def table_rows(self) -> list[dict[str, float]]:
        """Rows for the EXPERIMENTS.md / benchmark table."""
        rows = []
        for run in self.runs:
            rows.append({
                "amplitude_V": run.amplitude,
                "x_behavioral_m": run.behavioral_plateau,
                "x_linearized_m": run.linearized_plateau,
                "ratio_lin_over_beh": run.plateau_ratio,
                "expected_ratio_V0_over_V": self.parameters.dc_voltage / run.amplitude
                if run.amplitude else float("nan"),
            })
        return rows

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = ["Figure 5 reproduction (quasi-static plateau displacements):"]
        for row in self.table_rows():
            lines.append(
                f"  V = {row['amplitude_V']:5.1f} V : behavioral {row['x_behavioral_m']:.3e} m, "
                f"linearized {row['x_linearized_m']:.3e} m, ratio {row['ratio_lin_over_beh']:.3f} "
                f"(expected ~{row['expected_ratio_V0_over_V']:.3f})")
        lines.append(
            f"  runtime penalty behavioral/linearized: {self.runtime_penalty:.1f}x "
            f"(paper reports ~10x)")
        return "\n".join(lines)


def _plateau(result: TransientResult, signal: str, drive: object) -> float:
    """Mean displacement over the second half of the pulse plateau."""
    t_start = drive.delay + drive.rise + 0.5 * drive.width
    t_end = drive.delay + drive.rise + drive.width
    mask = (result.time >= t_start) & (result.time <= t_end)
    values = result.signal(signal)[mask]
    if values.size == 0:
        return result.final(signal)
    return float(np.mean(values))


def run_figure5_comparison(amplitudes: Sequence[float] = (5.0, 10.0, 15.0),
                           parameters: Table4Parameters = PAPER_PARAMETERS,
                           t_step: float = 2e-4,
                           options: SimulationOptions | None = None,
                           closed_form: bool = False,
                           gamma_convention: str = "effective") -> Figure5Comparison:
    """Run the figure-5 experiment for the given pulse amplitudes.

    Each amplitude is simulated as a single pulse (same rise/fall/width as
    one segment of the paper's three-pulse trace) through both the behavioral
    and the linearized system; the quasi-static plateau displacements and the
    cumulative wall-clock times are collected.
    """
    options = options or SimulationOptions()
    comparison = Figure5Comparison(parameters=parameters)
    linearized_bias = parameters.derived_bias_point()
    for amplitude in amplitudes:
        drive = build_drive_waveform(amplitude)
        t_stop = drive.delay + drive.rise + drive.width + drive.fall + 15e-3

        behavioral_circuit = build_behavioral_system(
            parameters, drive, closed_form=closed_form)
        start = time.perf_counter()
        behavioral_result = TransientAnalysis(
            behavioral_circuit, t_stop=t_stop, t_step=t_step, options=options).run()
        comparison.behavioral_runtime += time.perf_counter() - start

        linearized_circuit = build_linearized_system(
            parameters, drive, gamma_convention=gamma_convention,
            linearized=linearized_bias)
        start = time.perf_counter()
        linearized_result = TransientAnalysis(
            linearized_circuit, t_stop=t_stop, t_step=t_step, options=options).run()
        comparison.linearized_runtime += time.perf_counter() - start

        comparison.runs.append(Figure5Run(
            amplitude=float(amplitude),
            behavioral=behavioral_result,
            linearized=linearized_result,
            behavioral_plateau=_plateau(behavioral_result, BEHAVIORAL_DISPLACEMENT, drive),
            linearized_plateau=_plateau(linearized_result, MASS_DISPLACEMENT, drive),
        ))
    return comparison


def measure_runtime_penalty(parameters: Table4Parameters = PAPER_PARAMETERS,
                            amplitude: float = 10.0, t_step: float = 2e-4,
                            repeats: int = 3,
                            closed_form: bool = False) -> dict[str, float]:
    """Measure the behavioral-versus-linearized simulation-time penalty.

    Returns a dictionary with the best-of-``repeats`` wall-clock time of each
    variant and their ratio (the paper's "factor of 10was observed").
    """
    drive = build_drive_waveform(amplitude)
    t_stop = drive.delay + drive.rise + drive.width + drive.fall + 15e-3
    behavioral_circuit = build_behavioral_system(parameters, drive, closed_form=closed_form)
    linearized_circuit = build_linearized_system(parameters, drive)

    def best_time(circuit) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            TransientAnalysis(circuit, t_stop=t_stop, t_step=t_step).run()
            best = min(best, time.perf_counter() - start)
        return best

    behavioral_time = best_time(behavioral_circuit)
    linearized_time = best_time(linearized_circuit)
    return {
        "behavioral_s": behavioral_time,
        "linearized_s": linearized_time,
        "penalty": behavioral_time / linearized_time if linearized_time > 0 else float("nan"),
    }
