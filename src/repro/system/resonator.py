"""Mechanical resonator (mass-spring-damper) of the paper's figure 3.

The resonator is the mechanical load of the electrostatic transducer in the
figure-5 experiment: a free plate of mass ``m`` suspended by a spring ``k``
with viscous damping ``alpha``.  The class wraps the three parameters, their
derived dynamic quantities (natural frequency, damping ratio, quality
factor), and the netlist insertion in the force-current analogy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..circuit.netlist import Circuit
from ..errors import NetlistError

__all__ = ["MechanicalResonator"]


@dataclass(frozen=True)
class MechanicalResonator:
    """A second-order mechanical resonator (figure 3 of the paper).

    Attributes
    ----------
    mass:
        Moving mass ``m`` [kg].
    stiffness:
        Suspension stiffness ``k`` [N/m].
    damping:
        Viscous damping coefficient ``alpha`` [N*s/m].
    """

    mass: float
    stiffness: float
    damping: float

    def __post_init__(self) -> None:
        if self.mass <= 0.0 or self.stiffness <= 0.0 or self.damping <= 0.0:
            raise NetlistError("mass, stiffness and damping must all be positive")

    # ------------------------------------------------------------ derived
    @property
    def natural_frequency_rad(self) -> float:
        """Undamped natural angular frequency ``sqrt(k/m)`` [rad/s]."""
        return math.sqrt(self.stiffness / self.mass)

    @property
    def natural_frequency_hz(self) -> float:
        """Undamped natural frequency [Hz]."""
        return self.natural_frequency_rad / (2.0 * math.pi)

    @property
    def damping_ratio(self) -> float:
        """Damping ratio ``alpha / (2 sqrt(k m))`` (< 1 means under-damped)."""
        return self.damping / (2.0 * math.sqrt(self.stiffness * self.mass))

    @property
    def quality_factor(self) -> float:
        """Quality factor ``sqrt(k m) / alpha``."""
        return math.sqrt(self.stiffness * self.mass) / self.damping

    @property
    def damped_frequency_rad(self) -> float:
        """Damped ringing angular frequency ``wn * sqrt(1 - zeta^2)`` [rad/s]."""
        zeta = self.damping_ratio
        if zeta >= 1.0:
            return 0.0
        return self.natural_frequency_rad * math.sqrt(1.0 - zeta * zeta)

    @property
    def is_underdamped(self) -> bool:
        """True when the step response rings (zeta < 1)."""
        return self.damping_ratio < 1.0

    def static_deflection(self, force: float) -> float:
        """Quasi-static deflection ``F / k`` under a constant force."""
        return force / self.stiffness

    def step_overshoot(self) -> float:
        """Relative first-peak overshoot of the displacement step response."""
        zeta = self.damping_ratio
        if zeta >= 1.0:
            return 0.0
        return math.exp(-zeta * math.pi / math.sqrt(1.0 - zeta * zeta))

    def settling_time(self, tolerance: float = 0.01) -> float:
        """Approximate time to settle within ``tolerance`` of the final value."""
        zeta = self.damping_ratio
        if zeta <= 0.0 or zeta >= 1.0:
            return float("inf")
        return -math.log(tolerance) / (zeta * self.natural_frequency_rad)

    # ------------------------------------------------------------ netlist
    def add_to_circuit(self, circuit: Circuit, node: str, prefix: str = "res") -> dict[str, object]:
        """Insert the mass/spring/damper between ``node`` and the frame.

        Returns the three created devices keyed ``"mass"``, ``"spring"``,
        ``"damper"`` (named ``<prefix>_m`` etc. in the netlist).
        """
        return {
            "mass": circuit.mass(f"{prefix}_m", node, self.mass),
            "spring": circuit.spring(f"{prefix}_k", node, "0", self.stiffness),
            "damper": circuit.damper(f"{prefix}_a", node, "0", self.damping),
        }

    def summary(self) -> str:
        """One-line report of the resonator parameters and dynamics."""
        return (
            f"m = {self.mass:g} kg, k = {self.stiffness:g} N/m, alpha = {self.damping:g} N*s/m, "
            f"f0 = {self.natural_frequency_hz:.2f} Hz, zeta = {self.damping_ratio:.3f}, "
            f"Q = {self.quality_factor:.2f}"
        )
