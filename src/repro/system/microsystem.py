"""Netlists of the paper's transducer + resonator microsystem (figures 3 and 4).

Two variants of the same system are built, exactly as in the paper:

* :func:`build_behavioral_system` -- the nonlinear behavioral (HDL-A style)
  transducer coupled to the mechanical resonator,
* :func:`build_linearized_system` -- the linearized equivalent circuit of
  figure 4 (bias capacitance + transduction-factor controlled sources)
  driving the same RLC resonator.

Both are driven by a pulse voltage source with finite rise and fall times.
:data:`PAPER_PARAMETERS` holds the values of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuit.netlist import Circuit
from ..circuit.waveforms import PieceWiseLinear, Pulse, Waveform
from ..errors import TransducerError
from ..transducers.electrostatic import TransverseElectrostaticTransducer
from ..transducers.linearized import (
    LinearizedTransducer,
    add_linearized_equivalent_circuit,
    linearize_transverse_electrostatic,
)
from .resonator import MechanicalResonator

__all__ = [
    "Table4Parameters",
    "PAPER_PARAMETERS",
    "build_drive_waveform",
    "build_behavioral_system",
    "build_linearized_system",
]


@dataclass(frozen=True)
class Table4Parameters:
    """The parameter set of the paper's Table 4.

    ``dc_displacement`` and ``dc_capacitance`` are the values *printed* in
    the paper; the reproduced values are computed by
    :meth:`derived_bias_point` and compared against these in EXPERIMENTS.md.
    """

    area: float = 1.0e-4              #: electrode area A [m^2]
    gap: float = 0.15e-3              #: rest gap d [m]
    epsilon_r: float = 1.0            #: relative permittivity
    mass: float = 1.0e-4              #: resonator mass m [kg]
    stiffness: float = 200.0          #: spring constant k [N/m]
    damping: float = 40.0e-3          #: damping coefficient alpha [N*s/m]
    dc_voltage: float = 10.0          #: bias / linearization voltage v0 [V]
    dc_displacement: float = 1.0e-8   #: printed dc displacement x0 [m]
    dc_capacitance: float = 5.8637e-12  #: printed dc capacitance C0 [F]
    printed_gamma: float = 3.34675e-9   #: printed transduction factor [N/V]

    def transducer(self, gap_orientation: str = "paper") -> TransverseElectrostaticTransducer:
        """The transverse electrostatic transducer with these parameters."""
        return TransverseElectrostaticTransducer(
            area=self.area, gap=self.gap, epsilon_r=self.epsilon_r,
            gap_orientation=gap_orientation)

    def resonator(self) -> MechanicalResonator:
        """The mechanical resonator with these parameters."""
        return MechanicalResonator(mass=self.mass, stiffness=self.stiffness,
                                   damping=self.damping)

    def derived_bias_point(self) -> LinearizedTransducer:
        """Linearization data computed (not copied) from the parameters."""
        return linearize_transverse_electrostatic(
            self.transducer(), bias_voltage=self.dc_voltage, stiffness=self.stiffness)


#: The Table 4 values used throughout the benchmarks and examples.
PAPER_PARAMETERS = Table4Parameters()


def build_drive_waveform(amplitude: float, *, delay: float = 5e-3, rise: float = 2e-3,
                         width: float = 35e-3, fall: float = 2e-3) -> Pulse:
    """A single excitation pulse with finite rise/fall times (figure 5 drive).

    The defaults give the free plate time to ring down and settle on the
    plateau so the quasi-static displacement can be read off, matching the
    per-pulse timing of the paper's 0.18 s three-pulse trace.
    """
    if amplitude < 0.0:
        raise TransducerError("pulse amplitude must be non-negative")
    return Pulse(v1=0.0, v2=float(amplitude), delay=delay, rise=rise, fall=fall, width=width)


def build_three_pulse_waveform(amplitudes=(5.0, 10.0, 15.0), period: float = 0.06,
                               rise: float = 2e-3, width: float = 35e-3,
                               fall: float = 2e-3) -> PieceWiseLinear:
    """The paper's combined drive: consecutive pulses of 5, 10 and 15 V."""
    points: list[tuple[float, float]] = [(0.0, 0.0)]
    t = 5e-3
    for amplitude in amplitudes:
        points.extend([
            (t, 0.0),
            (t + rise, float(amplitude)),
            (t + rise + width, float(amplitude)),
            (t + rise + width + fall, 0.0),
        ])
        t += period
    return PieceWiseLinear(tuple(points))


def build_behavioral_system(parameters: Table4Parameters = PAPER_PARAMETERS,
                            drive: Waveform | float = 10.0, *,
                            closed_form: bool = False,
                            gap_orientation: str = "paper",
                            x0: float = 0.0) -> Circuit:
    """Figure-3 system with the nonlinear behavioral transducer model.

    Nodes: ``a`` -- electrical drive node, ``m`` -- mechanical node whose
    across value is the plate velocity; the displacement appears in results
    as ``x(XDCR)`` (recorded by the transducer) and ``x(res_m)`` (recorded by
    the mass).
    """
    circuit = Circuit("figure-3 system (behavioral transducer)")
    circuit.voltage_source("VS", "a", "0", drive, ac=1.0)
    transducer = parameters.transducer(gap_orientation=gap_orientation)
    transducer.add_to_circuit(circuit, "XDCR", "a", "0", "m", "0",
                              x0=x0, closed_form=closed_form)
    parameters.resonator().add_to_circuit(circuit, "m")
    return circuit


def build_linearized_system(parameters: Table4Parameters = PAPER_PARAMETERS,
                            drive: Waveform | float = 10.0, *,
                            gamma_convention: str = "effective",
                            include_spring_softening: bool = False,
                            linearized: LinearizedTransducer | None = None) -> Circuit:
    """Figure-4 system with the linearized equivalent-circuit transducer."""
    circuit = Circuit("figure-4 system (linearized equivalent circuit)")
    circuit.voltage_source("VS", "a", "0", drive, ac=1.0)
    if linearized is None:
        linearized = parameters.derived_bias_point()
    add_linearized_equivalent_circuit(
        circuit, linearized, "XLIN", "a", "0", "m", "0",
        gamma_convention=gamma_convention,
        include_spring_softening=include_spring_softening)
    parameters.resonator().add_to_circuit(circuit, "m")
    return circuit
