"""Microsystem-level experiment drivers.

This package assembles the paper's system-level experiments from the lower
layers:

* :mod:`repro.system.resonator` -- the mechanical resonator (mass, spring,
  damper) of figure 3 and its derived quantities,
* :mod:`repro.system.microsystem` -- the transducer + resonator netlists of
  figures 3/4 (behavioral and linearized variants) and the paper's Table 4
  parameter set,
* :mod:`repro.system.comparison` -- the figure-5 comparison harness
  (behavioral HDL model versus linearized equivalent circuit, including the
  runtime-penalty measurement),
* :mod:`repro.system.experiments` -- tabulated reproductions of every table
  and figure, shared by the benchmarks and EXPERIMENTS.md.
"""

from .resonator import MechanicalResonator
from .microsystem import (
    Table4Parameters,
    PAPER_PARAMETERS,
    build_behavioral_system,
    build_linearized_system,
    build_drive_waveform,
)
from .comparison import (
    Figure5Run,
    Figure5Comparison,
    run_figure5_comparison,
    measure_runtime_penalty,
)

__all__ = [
    "MechanicalResonator",
    "Table4Parameters",
    "PAPER_PARAMETERS",
    "build_behavioral_system",
    "build_linearized_system",
    "build_drive_waveform",
    "Figure5Run",
    "Figure5Comparison",
    "run_figure5_comparison",
    "measure_runtime_penalty",
]
