"""Convergence diagnostics: what the solvers did, not just how long.

Three record types cover the stack's iterative machinery:

* :class:`NewtonTrace` -- one Newton solve's residual-norm trajectory,
* :class:`StepRecord` -- one transient step attempt (size / LTE ratio /
  accepted or rejected / Newton iterations),
* :class:`IterateRecord` -- one optimizer iterate (objective + parameters).

:class:`ConvergenceDiagnostics` collects them per analysis run with a cap
per category so a million-step transient cannot balloon memory.  The
storage contract: each category *stores* at most its cap of records (the
earliest ones -- the list simply stops growing) while the matching
``*_total`` counter keeps *counting* every record unconditionally, so
``newton_total > len(newton)`` is how a consumer detects truncation.  The
shared default cap comes from ``SimulationOptions.telemetry_max_records``
(per-category overrides via the keyword-only constructor arguments).
Analyses attach an instance to their result's telemetry report behind the
``SimulationOptions.telemetry`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["NewtonTrace", "StepRecord", "IterateRecord",
           "ConvergenceDiagnostics"]


@dataclass
class NewtonTrace:
    """Residual-norm trajectory of one Newton solve.

    ``residuals[i]`` is the norm entering iteration ``i``; ``converged``
    reflects the solver's verdict, ``context`` labels which analysis phase
    ran the solve (``"op"``, ``"transient"``, ...), ``time`` the transient
    time point when applicable.
    """

    context: str
    residuals: list[float] = field(default_factory=list)
    converged: bool = False
    time: float | None = None

    @property
    def iterations(self) -> int:
        return len(self.residuals)

    def to_json(self) -> dict:
        return {"context": self.context, "residuals": list(self.residuals),
                "converged": self.converged, "iterations": self.iterations,
                "time": self.time}


@dataclass
class StepRecord:
    """One transient step attempt (accepted or rejected)."""

    time: float
    dt: float
    accepted: bool
    error_ratio: float | None = None
    newton_iterations: int = 0

    def to_json(self) -> dict:
        return {"time": self.time, "dt": self.dt, "accepted": self.accepted,
                "error_ratio": self.error_ratio,
                "newton_iterations": self.newton_iterations}


@dataclass
class IterateRecord:
    """One optimizer iterate: objective value at a parameter point."""

    iteration: int
    objective: float
    params: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"iteration": self.iteration, "objective": self.objective,
                "params": dict(self.params)}


class ConvergenceDiagnostics:
    """Capped collection of convergence records for one analysis run.

    ``max_records`` is the shared storage cap; ``max_newton`` /
    ``max_steps`` / ``max_iterates`` override it per category.  Counting
    (``*_total``) is never capped -- see the module docstring for the
    storage-vs-count contract.
    """

    def __init__(self, max_records: int = 10000, *,
                 max_newton: int | None = None,
                 max_steps: int | None = None,
                 max_iterates: int | None = None) -> None:
        self.max_records = int(max_records)
        self.max_newton = self.max_records if max_newton is None \
            else int(max_newton)
        self.max_steps = self.max_records if max_steps is None \
            else int(max_steps)
        self.max_iterates = self.max_records if max_iterates is None \
            else int(max_iterates)
        self.newton: list[NewtonTrace] = []
        self.steps: list[StepRecord] = []
        self.iterates: list[IterateRecord] = []
        self.newton_total = 0
        self.steps_total = 0
        self.iterates_total = 0

    # ------------------------------------------------------------- recording
    def add_newton(self, trace: NewtonTrace) -> None:
        self.newton_total += 1
        if len(self.newton) < self.max_newton:
            self.newton.append(trace)

    def add_step(self, record: StepRecord) -> None:
        self.steps_total += 1
        if len(self.steps) < self.max_steps:
            self.steps.append(record)

    def add_iterate(self, record: IterateRecord) -> None:
        self.iterates_total += 1
        if len(self.iterates) < self.max_iterates:
            self.iterates.append(record)

    # --------------------------------------------------------------- summary
    def summary(self) -> dict:
        """Scalar digest: iteration totals, rejection rate, worst solves."""
        newton_iters = [trace.iterations for trace in self.newton]
        rejected = sum(1 for step in self.steps if not step.accepted)
        out = {
            "newton_solves": self.newton_total,
            "newton_iterations": sum(newton_iters),
            "newton_max_iterations": max(newton_iters, default=0),
            "newton_failures": sum(1 for trace in self.newton
                                   if not trace.converged),
            "steps": self.steps_total,
            "steps_rejected": rejected,
            "step_rejection_rate": (rejected / len(self.steps)
                                    if self.steps else 0.0),
            "optimizer_iterates": self.iterates_total,
        }
        if self.steps:
            sizes = [step.dt for step in self.steps if step.accepted]
            if sizes:
                out["step_size_min"] = min(sizes)
                out["step_size_max"] = max(sizes)
        return out

    def to_json(self) -> dict:
        return {
            "summary": self.summary(),
            "newton": [trace.to_json() for trace in self.newton],
            "steps": [record.to_json() for record in self.steps],
            "iterates": [record.to_json() for record in self.iterates],
        }

    def __repr__(self) -> str:
        return (f"ConvergenceDiagnostics({self.newton_total} newton solves, "
                f"{self.steps_total} steps, {self.iterates_total} iterates)")
