"""Process-wide metrics registry: counters, gauges and histograms.

The registry generalizes the seven module-level cache counters that used to
live in :mod:`repro.linalg.metrics` (that module is now a thin shim over
this one): any layer of the stack can bump a **counter** (monotone event
count), publish a **gauge** (last-written value) or **observe** a value into
a **histogram** (count / sum / min / max digest -- the form that merges
across processes without binning decisions).

Counters follow the rules the linalg counters established:

* plain module-level state, no locks -- each process mutates only its own
  copy, and campaign pool workers ship *deltas* (:func:`delta`) back to the
  parent where they are merged (:func:`merge`) into one aggregate view,
* recording is unconditional and cheap (one dict lookup + add), so the
  always-on counters cost the same whether telemetry is enabled or not.

Timing histograms are the exception: the instrumentation sites that feed
them guard on :func:`repro.telemetry.enabled` because the two
``perf_counter`` calls per observation are only worth paying when someone
is collecting.

Naming convention: dotted lowercase paths (``linalg.factorizations``,
``mna.assembly.tran.full_s``); durations carry an ``_s`` suffix and are
reported in seconds.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["inc", "set_gauge", "observe", "counter_value", "gauge_value",
           "histogram_value", "snapshot", "delta", "merge", "reset",
           "HISTOGRAM_FIELDS"]

#: Field order of a histogram digest (kept mergeable across processes).
HISTOGRAM_FIELDS = ("count", "sum", "min", "max")

_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}
#: name -> [count, sum, min, max]
_histograms: dict[str, list[float]] = {}


# --------------------------------------------------------------------- write
def inc(name: str, amount: float = 1.0) -> None:
    """Bump counter ``name`` by ``amount`` (created at zero on first use)."""
    _counters[name] = _counters.get(name, 0) + amount


def set_gauge(name: str, value: float) -> None:
    """Publish the current value of gauge ``name`` (last write wins)."""
    _gauges[name] = float(value)


def observe(name: str, value: float) -> None:
    """Record one observation into histogram ``name``."""
    value = float(value)
    digest = _histograms.get(name)
    if digest is None:
        _histograms[name] = [1, value, value, value]
        return
    digest[0] += 1
    digest[1] += value
    if value < digest[2]:
        digest[2] = value
    if value > digest[3]:
        digest[3] = value


# ---------------------------------------------------------------------- read
def counter_value(name: str, default: float = 0) -> float:
    """Current value of counter ``name`` (``default`` when never bumped)."""
    return _counters.get(name, default)


def gauge_value(name: str, default: float = 0.0) -> float:
    """Last published value of gauge ``name``."""
    return _gauges.get(name, default)


def histogram_value(name: str) -> dict[str, float] | None:
    """Digest dict of histogram ``name`` (``None`` when never observed)."""
    digest = _histograms.get(name)
    if digest is None:
        return None
    return dict(zip(HISTOGRAM_FIELDS, digest))


def snapshot() -> dict:
    """Deep copy of the whole registry: the unit of cross-process shipping.

    The shape is ``{"counters": {...}, "gauges": {...}, "histograms":
    {name: {count, sum, min, max}}}`` -- plain JSON/pickle-friendly dicts.
    """
    return {
        "counters": dict(_counters),
        "gauges": dict(_gauges),
        "histograms": {name: dict(zip(HISTOGRAM_FIELDS, digest))
                       for name, digest in _histograms.items()},
    }


# --------------------------------------------------------------- aggregation
def delta(before: Mapping, after: Mapping | None = None) -> dict:
    """Per-metric difference ``after - before`` (``after`` defaults to now).

    Counters and histogram count/sum subtract; histogram min/max and gauges
    are taken from ``after`` (they describe state, not flow).  Metrics that
    did not change are dropped, so an idle worker ships an empty payload.
    """
    if after is None:
        after = snapshot()
    counters_before = before.get("counters", {})
    counters = {}
    for name, value in after.get("counters", {}).items():
        diff = value - counters_before.get(name, 0)
        if diff:
            counters[name] = diff
    histograms_before = before.get("histograms", {})
    histograms = {}
    for name, digest in after.get("histograms", {}).items():
        prior = histograms_before.get(name)
        count = digest["count"] - (prior["count"] if prior else 0)
        if count <= 0:
            continue
        histograms[name] = {
            "count": count,
            "sum": digest["sum"] - (prior["sum"] if prior else 0.0),
            "min": digest["min"],
            "max": digest["max"],
        }
    gauges_before = before.get("gauges", {})
    gauges = {name: value for name, value in after.get("gauges", {}).items()
              if gauges_before.get(name) != value}
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def merge(total: dict, part: Mapping) -> dict:
    """Accumulate one snapshot/delta into a running total, in place.

    ``total`` may start as ``{}``; the merged shape matches
    :func:`snapshot`.  Counters and histogram count/sum add, histogram
    min/max widen, gauges last-write-win.  Returns ``total``.
    """
    counters = total.setdefault("counters", {})
    for name, value in part.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = total.setdefault("gauges", {})
    gauges.update(part.get("gauges", {}))
    histograms = total.setdefault("histograms", {})
    for name, digest in part.get("histograms", {}).items():
        into = histograms.get(name)
        if into is None:
            histograms[name] = dict(digest)
            continue
        into["count"] += digest["count"]
        into["sum"] += digest["sum"]
        into["min"] = min(into["min"], digest["min"])
        into["max"] = max(into["max"], digest["max"])
    return total


def reset(names: Iterable[str] | None = None, prefix: str | None = None) -> None:
    """Zero counters/gauges/histograms (test isolation helper).

    With no arguments the whole registry is cleared; ``names`` restricts the
    reset to exact metric names, ``prefix`` to every metric whose name
    starts with it (both filters combine as a union).
    """
    if names is None and prefix is None:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()
        return
    selected = set(names or ())

    def matches(name: str) -> bool:
        return name in selected or (prefix is not None
                                    and name.startswith(prefix))

    for store in (_counters, _gauges, _histograms):
        for name in [name for name in store if matches(name)]:
            del store[name]
