"""Live progress reporting: ETA trackers, heartbeats, logging bridge.

A long transient, a 10k-point campaign or an optimizer run should be
watchable while it executes, not only explicable afterwards.  The pieces:

- :class:`ProgressReporter` -- the callback protocol.  Implementations
  receive :class:`ProgressEvent`\\ s (phase, completed/total, ETA, span
  path).  :class:`CallbackReporter` adapts a plain function;
  :class:`LoggingProgressReporter` bridges events onto a stdlib logger with
  the current span path attached, so progress lands in ordinary logs.
- :func:`reporting` -- a context manager installing a reporter on the
  current thread.  Instrumented loops call :func:`tracker` which returns a
  shared no-op when nothing is installed -- the same near-zero disabled
  pattern the span layer uses, so the hot paths stay instrumented
  unconditionally.
- :class:`ProgressTracker` -- per-phase ETA bookkeeping with configurable
  minimum intervals between emitted events (default 0: every update).

The campaign runner additionally emits worker *heartbeats* (pid, wall time,
points solved, shipped with each result chunk) and detects *stalled*
workers queue-side; see ``repro.campaign.runner``.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field

from .context import current_path

__all__ = ["ProgressEvent", "ProgressReporter", "CallbackReporter",
           "LoggingProgressReporter", "ProgressTracker", "StallWarning",
           "reporting", "tracker", "active"]

logger = logging.getLogger("repro.telemetry.progress")


class StallWarning(UserWarning):
    """A parallel worker exceeded its stall timeout without delivering results.

    Emitted queue-side by the campaign runner (never from inside the stuck
    worker): the driving process keeps running and the warning carries how
    long the pool has been silent and how much work had completed.
    """

_perf_counter = time.perf_counter


@dataclass
class ProgressEvent:
    """One progress observation."""

    #: What is progressing: ``"transient"``, ``"dcsweep"``, ``"ac"``,
    #: ``"campaign"``, ``"optim.nelder-mead"``, ...
    phase: str
    #: Work done so far, in ``unit``\\ s (simulated seconds, points, iters).
    completed: float
    #: Total work, when known in advance (None -> no fraction/ETA).
    total: float | None
    #: Unit of ``completed``/``total``.
    unit: str = ""
    #: Wall-clock seconds since the phase started.
    elapsed_s: float = 0.0
    #: Estimated remaining wall-clock seconds (None when unknowable).
    eta_s: float | None = None
    #: Whether this is the phase's final event.
    done: bool = False
    message: str = ""
    #: Open span stack at emission time ("tran.run/transient.step").
    span_path: str = ""
    #: Free-form extras (worker heartbeats, current step size, ...).
    data: dict = field(default_factory=dict)

    @property
    def fraction(self) -> float | None:
        """Completed fraction in [0, 1], when the total is known.

        A zero/degenerate total never divides: the phase has no work, so
        its final event reports 1.0 and intermediate ones report nothing.
        """
        if self.total is None:
            return None
        if self.total <= 0:
            return 1.0 if self.done else None
        return min(1.0, self.completed / self.total)

    def __str__(self) -> str:
        parts = [self.phase]
        fraction = self.fraction
        if fraction is not None:
            parts.append(f"{100.0 * fraction:5.1f}%")
        unit = f" {self.unit}" if self.unit else ""
        if self.total is not None:
            parts.append(f"({self.completed:g}/{self.total:g}{unit})")
        else:
            parts.append(f"({self.completed:g}{unit})")
        if self.eta_s is not None:
            parts.append(f"eta {self.eta_s:.1f}s")
        if self.message:
            parts.append(self.message)
        return " ".join(parts)


class ProgressReporter:
    """Callback protocol: subclass and override :meth:`update`."""

    def update(self, event: ProgressEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Called when the installing :func:`reporting` scope exits."""


class CallbackReporter(ProgressReporter):
    """Adapt a plain ``event -> None`` callable to the protocol."""

    def __init__(self, callback) -> None:
        self._callback = callback

    def update(self, event: ProgressEvent) -> None:
        self._callback(event)


class LoggingProgressReporter(ProgressReporter):
    """Bridge progress events onto a stdlib logger, span-correlated.

    Each event becomes one log record with the formatted event as message
    and the open span path in ``record.span_path`` (usable from a
    ``logging.Formatter`` via ``%(span_path)s``).
    """

    def __init__(self, target: logging.Logger | None = None,
                 level: int = logging.INFO) -> None:
        self._logger = target if target is not None else logger
        self._level = level

    def update(self, event: ProgressEvent) -> None:
        self._logger.log(self._level, "%s", event,
                         extra={"span_path": event.span_path})


class _ThreadReporters(threading.local):
    def __init__(self) -> None:
        self.stack: list[tuple[ProgressReporter, float]] = []


_reporters = _ThreadReporters()


class _ReportingScope:
    def __init__(self, reporter: ProgressReporter, min_interval_s: float) -> None:
        self._entry = (reporter, float(min_interval_s))

    def __enter__(self) -> ProgressReporter:
        _reporters.stack.append(self._entry)
        return self._entry[0]

    def __exit__(self, exc_type, exc, tb) -> bool:
        stack = _reporters.stack
        if self._entry in stack:
            stack.remove(self._entry)
        try:
            self._entry[0].close()
        except Exception:
            logger.exception("progress reporter close() failed")
        return False


def reporting(reporter, min_interval_s: float = 0.0) -> _ReportingScope:
    """Install a reporter on this thread for the duration of a ``with``.

    ``reporter`` is a :class:`ProgressReporter` or a plain callable (wrapped
    in :class:`CallbackReporter`).  ``min_interval_s`` throttles emission:
    intermediate events closer together than the interval are dropped
    (first and final events always fire).
    """
    if not isinstance(reporter, ProgressReporter):
        reporter = CallbackReporter(reporter)
    return _ReportingScope(reporter, min_interval_s)


def active() -> bool:
    """Whether a reporter is installed on this thread."""
    return bool(_reporters.stack)


class ProgressTracker:
    """Per-phase progress/ETA bookkeeping feeding one reporter."""

    def __init__(self, phase: str, total: float | None = None, unit: str = "",
                 reporter: ProgressReporter | None = None,
                 min_interval_s: float | None = None) -> None:
        if reporter is None:
            entry = _reporters.stack[-1]
            reporter = entry[0]
            if min_interval_s is None:
                min_interval_s = entry[1]
        self._reporter = reporter
        self._min_interval = float(min_interval_s or 0.0)
        self.phase = phase
        self.total = None if total is None else float(total)
        self.unit = unit
        self._t0 = _perf_counter()
        self._last_emit = -float("inf")
        self._emitted = 0
        self._closed = False
        if self.total is not None and self.total <= 0:
            # Degenerate phase (an empty sweep, a zero-length transient):
            # there is no work to watch and no rate to extrapolate an ETA
            # from, so complete immediately -- one done event, and every
            # later update()/finish() from the instrumented loop is a no-op
            # instead of a divide-by-zero or a post-completion event.
            self.finish(0.0)

    def update(self, completed: float, message: str = "", force: bool = False,
               **data) -> None:
        """Report progress; throttled by the installed minimum interval."""
        if self._closed:
            return
        now = _perf_counter()
        if not force and self._emitted \
                and now - self._last_emit < self._min_interval:
            return
        elapsed = now - self._t0
        eta = None
        if self.total is not None and self.total > 0 and completed > 0:
            remaining = max(0.0, self.total - completed)
            eta = elapsed * remaining / completed
        event = ProgressEvent(phase=self.phase, completed=float(completed),
                              total=self.total, unit=self.unit,
                              elapsed_s=elapsed, eta_s=eta,
                              message=message, span_path=current_path(),
                              data=data)
        self._emit(event)

    def finish(self, completed: float | None = None, message: str = "",
               **data) -> None:
        """Emit the phase's final event (never throttled, at most once)."""
        if self._closed:
            return
        self._closed = True
        if completed is None:
            completed = self.total if self.total is not None else 0.0
        elapsed = _perf_counter() - self._t0
        event = ProgressEvent(phase=self.phase, completed=float(completed),
                              total=self.total, unit=self.unit,
                              elapsed_s=elapsed,
                              eta_s=0.0 if self.total is not None else None,
                              done=True, message=message,
                              span_path=current_path(), data=data)
        self._emit(event)

    def _emit(self, event: ProgressEvent) -> None:
        self._last_emit = _perf_counter()
        self._emitted += 1
        try:
            self._reporter.update(event)
        except Exception:
            # A broken observer must never kill the solve it watches.
            logger.exception("progress reporter update() failed")


class _NullTracker:
    """Shared do-nothing tracker returned while no reporter is installed."""

    __slots__ = ()
    phase = ""
    total = None
    unit = ""

    def update(self, completed: float, message: str = "", force: bool = False,
               **data) -> None:
        pass

    def finish(self, completed: float | None = None, message: str = "",
               **data) -> None:
        pass


_NULL_TRACKER = _NullTracker()


def tracker(phase: str, total: float | None = None, unit: str = "",
            reporter: ProgressReporter | None = None,
            min_interval_s: float | None = None):
    """A :class:`ProgressTracker` for ``phase``, or a shared no-op.

    Returns the no-op when neither an explicit ``reporter`` nor an installed
    :func:`reporting` scope is present -- one thread-local check, so
    instrumented loops cost nothing while nobody watches.
    """
    if reporter is None and not _reporters.stack:
        return _NULL_TRACKER
    return ProgressTracker(phase, total=total, unit=unit, reporter=reporter,
                           min_interval_s=min_interval_s)
