"""Run records and the persistent JSONL ledger store.

A :class:`RunRecord` is the durable unit of observability: one run's
identity (git SHA, UTC timestamp, host, toolchain versions, an optional
options fingerprint) together with everything PR 6/7 already collect
in-process -- span totals, a metrics-registry delta (counters / gauges /
histogram digests), a convergence summary and per-benchmark ``--bench-out``
timings.  Records are plain JSON and schema-versioned, so a record written
today stays loadable (or fails loudly, never silently) tomorrow.

A :class:`RunLedger` is a directory holding an append-only
``records.jsonl`` file: one record per line, each line carrying a
content-addressed ID (SHA-256 over the canonical payload), with a bounded
retention count so an always-on CI recorder cannot grow without limit.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import platform
import socket
import subprocess
import sys
from datetime import datetime, timezone
from typing import Mapping

__all__ = ["SCHEMA", "LedgerError", "LedgerSchemaError", "RunRecord",
           "RunLedger", "capture_provenance", "current_git_sha",
           "content_id", "canonical_json"]

#: Record schema tag; bump on incompatible change.
SCHEMA = "repro-run-record/1"

#: ``--bench-out`` ledger schemas :meth:`RunRecord.from_bench_ledger` ingests.
BENCH_SCHEMAS = ("repro-bench-ledger/1", "repro-bench-ledger/2")


class LedgerError(ValueError):
    """A ledger operation failed (unknown record, ambiguous reference, ...)."""


class LedgerSchemaError(LedgerError):
    """A payload carries a schema this version cannot interpret."""


# ------------------------------------------------------------------ identity
def canonical_json(payload) -> str:
    """Deterministic JSON text of ``payload`` (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_id(payload, length: int = 12) -> str:
    """Content-addressed ID: SHA-256 hex prefix of the canonical payload."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:length]


def current_git_sha(cwd: str | None = None) -> str | None:
    """The checkout's HEAD SHA (``GITHUB_SHA`` fallback, None outside git)."""
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=cwd,
                              capture_output=True, text=True, timeout=10)
        if proc.returncode == 0:
            return proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA") or None


def _package_version(name: str) -> str | None:
    try:
        return __import__(name).__version__
    except Exception:  # noqa: BLE001 -- absent/broken package: just unknown
        return None


def capture_provenance() -> dict:
    """Identity of *this* run: who/where/when/with-what.

    The dict is the ``provenance`` block of a :class:`RunRecord` and of the
    ``--bench-out`` benchmark ledgers -- git SHA, UTC timestamp, hostname
    and Python/NumPy/SciPy versions, so any serialized artifact is
    self-describing without consulting the CI job that produced it.
    """
    return {
        "git_sha": current_git_sha(),
        "created_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "versions": {
            "python": sys.version.split()[0],
            "numpy": _package_version("numpy"),
            "scipy": _package_version("scipy"),
        },
    }


# -------------------------------------------------------------------- record
class RunRecord:
    """One run's durable observability payload.

    Parameters
    ----------
    label:
        Human-chosen name of what ran (``"bench"``, ``"campaign"``,
        ``"figure5"``, ...); diffing two records of different labels is
        legal but the tables call the mismatch out.
    span_totals:
        Per-span-name ``{count, total_s, self_s}`` aggregates (the
        :func:`repro.telemetry.aggregate_spans` shape).
    metrics:
        Registry snapshot/delta: ``{"counters", "gauges", "histograms"}``.
    convergence:
        Scalar convergence digest (the
        :meth:`~repro.telemetry.ConvergenceDiagnostics.summary` shape).
    benchmarks:
        Per-benchmark timings keyed by test id:
        ``{nodeid: {"outcome", "duration_s", "benchmark": {...} | None}}``.
    wall_s:
        Wall-clock seconds of the recorded work.
    options_fingerprint:
        Content hash of whatever configured the run (simulation options,
        evaluator payload, benchmark flags) so records of *different*
        experiments are never silently compared as equals.
    provenance:
        Identity block (defaults to :func:`capture_provenance` now).
    """

    def __init__(self, label: str = "run", *,
                 span_totals: Mapping | None = None,
                 metrics: Mapping | None = None,
                 convergence: Mapping | None = None,
                 benchmarks: Mapping | None = None,
                 wall_s: float = 0.0,
                 options_fingerprint: str | None = None,
                 provenance: Mapping | None = None) -> None:
        self.schema = SCHEMA
        self.label = str(label)
        self.span_totals = {str(name): dict(entry) for name, entry
                            in (span_totals or {}).items()}
        metrics = dict(metrics or {})
        self.metrics = {
            "counters": dict(metrics.get("counters", {})),
            "gauges": dict(metrics.get("gauges", {})),
            "histograms": {name: dict(digest) for name, digest
                           in metrics.get("histograms", {}).items()},
        }
        self.convergence = dict(convergence) if convergence else None
        # Benchmark entries and provenance nest (pytest-benchmark stats,
        # version dicts): deep-copy so two records never alias mutable state.
        self.benchmarks = {str(name): copy.deepcopy(dict(entry))
                           for name, entry in (benchmarks or {}).items()}
        self.wall_s = float(wall_s)
        self.options_fingerprint = options_fingerprint
        self.provenance = copy.deepcopy(dict(provenance)) \
            if provenance is not None else capture_provenance()

    # ------------------------------------------------------------ converters
    @classmethod
    def from_report(cls, report, label: str = "run", *,
                    benchmarks: Mapping | None = None,
                    options_fingerprint: str | None = None,
                    provenance: Mapping | None = None) -> "RunRecord":
        """Build a record from a :class:`~repro.telemetry.TelemetryReport`.

        Also accepts the merged campaign profile dict
        (``CampaignResult.telemetry``) -- any mapping with ``span_totals`` /
        ``metrics`` / ``wall_s`` keys.  Convergence diagnostics attached to
        the report are folded in as their scalar summary; when none are
        attached (session-level reports aggregate across analyses and drop
        the per-analysis diagnostics), ``newton_iterations`` is derived
        from the ``newton.<analysis>.solve_s`` histogram counts -- one
        linear solve per Newton iteration -- so any instrumented run's
        record diffs on Newton work.
        """
        if isinstance(report, Mapping):
            span_totals = report.get("span_totals", {})
            metrics = report.get("metrics", {})
            wall_s = report.get("wall_s", 0.0)
            convergence = report.get("convergence")
        else:
            span_totals = report.span_totals
            metrics = report.metrics
            wall_s = report.wall_s
            convergence = report.convergence
        if convergence is not None and not isinstance(convergence, Mapping):
            convergence = convergence.summary()
        if convergence is None:
            iterations = sum(
                int(digest.get("count", 0))
                for name, digest in dict(metrics or {}).get(
                    "histograms", {}).items()
                if name.startswith("newton.") and name.endswith(".solve_s"))
            if iterations:
                convergence = {"newton_iterations": iterations}
        return cls(label, span_totals=span_totals, metrics=metrics,
                   convergence=convergence, benchmarks=benchmarks,
                   wall_s=wall_s, options_fingerprint=options_fingerprint,
                   provenance=provenance)

    @classmethod
    def from_bench_ledger(cls, source, label: str | None = None, *,
                          options_fingerprint: str | None = None,
                          provenance: Mapping | None = None) -> "RunRecord":
        """Ingest a ``--bench-out`` benchmark ledger (path or payload).

        Schema-2 ledgers are self-describing (they embed a ``provenance``
        block, reused here); schema-1 ledgers predate provenance and get a
        freshly captured one.
        """
        if isinstance(source, (str, os.PathLike)):
            with open(source, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        else:
            payload = dict(source)
        schema = payload.get("schema")
        if schema not in BENCH_SCHEMAS:
            raise LedgerSchemaError(
                f"cannot ingest benchmark ledger with schema {schema!r} "
                f"(supported: {BENCH_SCHEMAS})")
        benchmarks = {}
        wall_s = 0.0
        for entry in payload.get("results", []):
            benchmarks[entry["test"]] = {
                "outcome": entry.get("outcome"),
                "duration_s": float(entry.get("duration_s", 0.0)),
                "benchmark": entry.get("benchmark"),
            }
            wall_s += float(entry.get("duration_s", 0.0))
        if provenance is None:
            provenance = payload.get("provenance")
        return cls(label or "bench", benchmarks=benchmarks, wall_s=wall_s,
                   options_fingerprint=options_fingerprint,
                   provenance=provenance)

    def to_json(self) -> dict:
        """JSON-serializable payload (the unit the ledger stores)."""
        out = {
            "schema": self.schema,
            "label": self.label,
            "provenance": dict(self.provenance),
            "options_fingerprint": self.options_fingerprint,
            "wall_s": self.wall_s,
            "span_totals": {name: dict(entry)
                            for name, entry in self.span_totals.items()},
            "metrics": {
                "counters": dict(self.metrics["counters"]),
                "gauges": dict(self.metrics["gauges"]),
                "histograms": {name: dict(digest) for name, digest
                               in self.metrics["histograms"].items()},
            },
            "benchmarks": {name: copy.deepcopy(dict(entry))
                           for name, entry in self.benchmarks.items()},
        }
        if self.convergence is not None:
            out["convergence"] = dict(self.convergence)
        return out

    @classmethod
    def from_json(cls, payload: Mapping) -> "RunRecord":
        """Reconstruct a record, failing loudly on a schema mismatch."""
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise LedgerSchemaError(
                f"run record has schema {schema!r} but this version reads "
                f"{SCHEMA!r}; re-record it or use a matching repro version")
        record = cls(payload.get("label", "run"),
                     span_totals=payload.get("span_totals"),
                     metrics=payload.get("metrics"),
                     convergence=payload.get("convergence"),
                     benchmarks=payload.get("benchmarks"),
                     wall_s=payload.get("wall_s", 0.0),
                     options_fingerprint=payload.get("options_fingerprint"),
                     provenance=payload.get("provenance", {}))
        return record

    @classmethod
    def load(cls, path) -> "RunRecord":
        """Load a standalone record JSON file (e.g. a committed baseline)."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))

    def dump(self, path) -> str:
        """Write the record as a standalone JSON file; returns the path."""
        path = str(path)
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # -------------------------------------------------------------- identity
    @property
    def record_id(self) -> str:
        """Content-addressed ID over the full canonical payload."""
        return content_id(self.to_json())

    def telemetry_report(self):
        """The record's profile as a renderable ``TelemetryReport``.

        Aggregate-only (records never store span trees), so
        ``profile_summary()`` and ``to_json()`` work while the Chrome-trace
        exporter has nothing to draw.
        """
        from ..context import TelemetryReport

        return TelemetryReport("summary", [], self.span_totals, self.metrics,
                               self.wall_s)

    def summary(self) -> dict:
        """Flat scalar digest for listings: identity + headline counts."""
        git_sha = self.provenance.get("git_sha")
        out = {
            "id": self.record_id,
            "label": self.label,
            "created_utc": self.provenance.get("created_utc"),
            "git_sha": git_sha[:12] if git_sha else None,
            "host": self.provenance.get("host"),
            "wall_s": self.wall_s,
            "spans": len(self.span_totals),
            "counters": len(self.metrics["counters"]),
            "benchmarks": len(self.benchmarks),
        }
        if self.convergence:
            out["newton_iterations"] = \
                self.convergence.get("newton_iterations", 0)
        return out

    def __repr__(self) -> str:
        return (f"RunRecord({self.label!r}, id={self.record_id}, "
                f"{len(self.span_totals)} span names, "
                f"{len(self.benchmarks)} benchmarks, "
                f"{self.wall_s * 1e3:.1f} ms)")


# -------------------------------------------------------------------- ledger
class RunLedger:
    """Append-only run-record store: a directory with ``records.jsonl``.

    Each line is ``{"id": <content id>, "record": <payload>}``.  Appends of
    an already-stored payload are deduplicated by ID.  ``retain`` bounds the
    file: after every append the oldest records beyond the bound are dropped
    (explicit :meth:`gc` re-applies or tightens the bound on demand).
    """

    FILENAME = "records.jsonl"

    def __init__(self, directory, retain: int = 200) -> None:
        if retain < 1:
            raise LedgerError("retain must be at least 1")
        self.directory = str(directory)
        self.retain = int(retain)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, self.FILENAME)

    # -------------------------------------------------------------- reading
    def _lines(self) -> list[dict]:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                raw = [line for line in handle if line.strip()]
        except FileNotFoundError:
            return []
        lines = []
        for number, line in enumerate(raw, start=1):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise LedgerError(
                    f"{self.path}:{number}: corrupt ledger line: {exc}") from exc
            lines.append(entry)
        return lines

    def ids(self) -> list[str]:
        """Stored record IDs, oldest first."""
        return [entry["id"] for entry in self._lines()]

    def entries(self) -> list[tuple[str, RunRecord]]:
        """Every stored ``(id, record)``, oldest first."""
        return [(entry["id"], RunRecord.from_json(entry["record"]))
                for entry in self._lines()]

    def load(self, ref: str) -> RunRecord:
        """Resolve a record reference: ``"latest"`` or an ID prefix."""
        entries = self._lines()
        if not entries:
            raise LedgerError(f"ledger {self.path} holds no records")
        if ref == "latest":
            return RunRecord.from_json(entries[-1]["record"])
        matches = [entry for entry in entries if entry["id"].startswith(ref)]
        if not matches:
            raise LedgerError(
                f"no record with id prefix {ref!r} in {self.path} "
                f"(known: {', '.join(e['id'] for e in entries[-5:])} ...)")
        distinct = {entry["id"] for entry in matches}
        if len(distinct) > 1:
            raise LedgerError(
                f"record id prefix {ref!r} is ambiguous: {sorted(distinct)}")
        return RunRecord.from_json(matches[-1]["record"])

    def latest(self) -> RunRecord | None:
        """The most recently appended record (None when empty)."""
        entries = self._lines()
        if not entries:
            return None
        return RunRecord.from_json(entries[-1]["record"])

    # -------------------------------------------------------------- writing
    def append(self, record: RunRecord) -> str:
        """Store one record; returns its content ID (deduplicated)."""
        payload = record.to_json()
        record_id = content_id(payload)
        entries = self._lines()
        if any(entry["id"] == record_id for entry in entries):
            return record_id
        entries.append({"id": record_id, "record": payload})
        if len(entries) > self.retain:
            entries = entries[-self.retain:]
        self._rewrite(entries)
        return record_id

    def gc(self, keep: int | None = None) -> int:
        """Drop the oldest records beyond ``keep`` (default: the retain bound).

        Returns how many records were removed.
        """
        keep = self.retain if keep is None else int(keep)
        if keep < 0:
            raise LedgerError("keep must be non-negative")
        entries = self._lines()
        removed = max(0, len(entries) - keep)
        if removed:
            self._rewrite(entries[len(entries) - keep:])
        return removed

    def _rewrite(self, entries: list[dict]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(canonical_json(entry))
                handle.write("\n")
        os.replace(tmp, self.path)

    def __len__(self) -> int:
        return len(self._lines())

    def __repr__(self) -> str:
        return (f"RunLedger({self.directory!r}, {len(self)} records, "
                f"retain={self.retain})")
