"""repro.telemetry.ledger -- persistent cross-run observability.

PR 6/7 made every *single* run observable; this package makes runs
comparable **across processes and commits**:

* :class:`RunRecord` -- one run's schema-versioned, self-describing
  payload: identity (git SHA, UTC timestamp, host, toolchain versions,
  options fingerprint) plus span totals, metrics-registry deltas
  (counters / gauges / histogram digests), a convergence summary and
  per-benchmark ``--bench-out`` timings.
* :class:`RunLedger` -- an append-only JSONL store with content-addressed
  record IDs and a bounded retention count.
* :func:`diff` -- structured deltas between two records: per-family
  metric deltas (absolute + relative; histogram digests compare by mean,
  not point value), span-tree structural changes and convergence drift.
* :func:`check_regressions` -- a :class:`RegressionPolicy` of per-family
  thresholds (noise-tolerant for wall-time, exact for counters) turning a
  diff into a machine-readable :class:`RegressionVerdict` -- the CI gate.
* ``python -m repro.telemetry.ledger`` -- ``record`` / ``show`` /
  ``compare`` / ``check`` / ``gc`` on ledgers and standalone record files.

Typical use::

    from repro.telemetry import ledger

    with telemetry.session(mode="summary") as sess:
        run_workload()
    record = ledger.RunRecord.from_report(sess.report, label="figure5")
    store = ledger.RunLedger(".runledger")
    record_id = store.append(record)

    verdict = ledger.check_regressions(record, store.load("latest"))
    assert verdict.ok, verdict.format()
"""

from .diffing import (FAMILIES, Delta, RecordDiff, RegressionPolicy,
                      RegressionVerdict, check_regressions, diff)
from .record import (SCHEMA, LedgerError, LedgerSchemaError, RunLedger,
                     RunRecord, canonical_json, capture_provenance,
                     content_id, current_git_sha)

__all__ = [
    "SCHEMA", "FAMILIES",
    "RunRecord", "RunLedger", "LedgerError", "LedgerSchemaError",
    "capture_provenance", "current_git_sha", "content_id", "canonical_json",
    "Delta", "RecordDiff", "diff",
    "RegressionPolicy", "RegressionVerdict", "check_regressions",
]
