"""Structured diffs between run records and the regression verdict engine.

:func:`diff` compares two :class:`~repro.telemetry.ledger.RunRecord`\\ s
into a :class:`RecordDiff`: one :class:`Delta` per metric present on both
sides, plus the structural view (span names / metrics / benchmarks that
appeared or vanished).  Every delta carries a **family** that decides how
it is judged:

* ``"time"`` -- wall-clock quantities (span ``total_s``/``self_s``,
  histogram means of ``*_s`` timings, benchmark durations, ``wall_s``).
  Noisy by nature: regression checks use a relative threshold with an
  absolute floor, and histogram digests compare by their *mean*
  (sum/count), never by a single point value.
* ``"counter"`` -- event counts (span counts, registry counters, histogram
  observation counts, integer convergence totals such as Newton
  iterations).  Deterministic by contract, so checks are exact by default.
* ``"gauge"`` -- last-written state (registry gauges, float convergence
  digests like rejection rates).  Informational; not checked by default.

:func:`check_regressions` turns a diff against a baseline into a
machine-readable :class:`RegressionVerdict` under a
:class:`RegressionPolicy` of per-family thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..export import _fmt_seconds

__all__ = ["Delta", "RecordDiff", "diff", "RegressionPolicy",
           "RegressionVerdict", "check_regressions", "FAMILIES"]

#: Metric families a delta can belong to.
FAMILIES = ("time", "counter", "gauge")


@dataclass
class Delta:
    """One metric compared across two records."""

    #: Namespaced metric name (``span.op.run.count``, ``counter.linalg...``,
    #: ``hist.batch.solve_s.mean``, ``bench.<nodeid>.duration_s``, ...).
    name: str
    #: ``"time"``, ``"counter"`` or ``"gauge"`` -- see the module docstring.
    family: str
    baseline: float
    current: float

    @property
    def absolute(self) -> float:
        """Signed difference ``current - baseline``."""
        return self.current - self.baseline

    @property
    def relative(self) -> float | None:
        """``absolute / |baseline|`` (None for a zero baseline)."""
        if self.baseline == 0:
            return None
        return self.absolute / abs(self.baseline)

    @property
    def changed(self) -> bool:
        return self.current != self.baseline

    def to_json(self) -> dict:
        return {"name": self.name, "family": self.family,
                "baseline": self.baseline, "current": self.current,
                "absolute": self.absolute, "relative": self.relative}

    def format(self) -> str:
        rel = self.relative
        rel_text = f"{rel * 100.0:+.1f}%" if rel is not None else "n/a"
        if self.family == "time":
            return (f"{self.name}: {_fmt_seconds(self.baseline)} -> "
                    f"{_fmt_seconds(self.current)} ({rel_text})")
        return (f"{self.name}: {self.baseline:g} -> {self.current:g} "
                f"({rel_text})")


@dataclass
class RecordDiff:
    """Everything that differs (and could differ) between two records."""

    baseline_summary: dict
    current_summary: dict
    deltas: list[Delta] = field(default_factory=list)
    #: Namespaced names present only in the current record.
    added: list[str] = field(default_factory=list)
    #: Namespaced names present only in the baseline record.
    removed: list[str] = field(default_factory=list)

    # -------------------------------------------------------------- queries
    def get(self, name: str) -> Delta | None:
        """The delta of one namespaced metric (None when not compared)."""
        for delta in self.deltas:
            if delta.name == name:
                return delta
        return None

    def by_family(self, family: str) -> list[Delta]:
        """Every delta of one family."""
        return [delta for delta in self.deltas if delta.family == family]

    def changed(self, family: str | None = None) -> list[Delta]:
        """Deltas whose values differ (optionally restricted to a family)."""
        return [delta for delta in self.deltas if delta.changed
                and (family is None or delta.family == family)]

    @property
    def structurally_identical(self) -> bool:
        """No phases/metrics/benchmarks appeared or vanished."""
        return not self.added and not self.removed

    def to_json(self) -> dict:
        return {
            "baseline": dict(self.baseline_summary),
            "current": dict(self.current_summary),
            "deltas": [delta.to_json() for delta in self.deltas],
            "added": list(self.added),
            "removed": list(self.removed),
        }

    # ------------------------------------------------------------ rendering
    def format_table(self, limit: int = 40) -> str:
        """Human-readable comparison in the ``profile_summary`` table style.

        Always leads with the headline wall-time and Newton-iteration
        deltas, then tabulates every changed metric sorted by relative
        magnitude (truncation is reported, never silent), then the
        structural changes.
        """
        lines = [
            f"baseline: {_describe(self.baseline_summary)}",
            f"current:  {_describe(self.current_summary)}",
        ]
        if self.baseline_summary.get("label") != \
                self.current_summary.get("label"):
            lines.append("WARNING: records have different labels -- the "
                         "runs may not be comparable")
        for name in ("wall_s", "conv.newton_iterations"):
            delta = self.get(name)
            if delta is not None:
                lines.append(delta.format())
        rows = sorted(self.changed(), key=_delta_magnitude, reverse=True)
        if rows:
            shown = rows[:limit]
            name_width = max(len(delta.name) for delta in shown)
            name_width = max(name_width, len("metric"))
            header = (f"{'metric':<{name_width}}  {'family':>7}  "
                      f"{'baseline':>12}  {'current':>12}  {'delta':>12}  "
                      f"{'rel':>8}")
            lines += ["", header, "-" * len(header)]
            for delta in shown:
                lines.append(
                    f"{delta.name:<{name_width}}  {delta.family:>7}  "
                    f"{_fmt_value(delta.baseline, delta.family):>12}  "
                    f"{_fmt_value(delta.current, delta.family):>12}  "
                    f"{_fmt_signed(delta.absolute, delta.family):>12}  "
                    f"{_fmt_rel(delta.relative):>8}")
            if len(rows) > limit:
                lines.append(f"... {len(rows) - limit} changed metrics "
                             f"omitted (of {len(rows)}; raise limit= to "
                             "see them)")
        else:
            lines += ["", f"no changed metrics "
                          f"({len(self.deltas)} compared)"]
        if self.added:
            lines.append(f"added ({len(self.added)}): "
                         + ", ".join(sorted(self.added)))
        if self.removed:
            lines.append(f"removed ({len(self.removed)}): "
                         + ", ".join(sorted(self.removed)))
        return "\n".join(lines)


def _delta_magnitude(delta: Delta) -> float:
    rel = delta.relative
    return abs(rel) if rel is not None else float("inf")


def _describe(summary: Mapping) -> str:
    parts = [str(summary.get("id", "?")),
             f"label={summary.get('label', '?')}"]
    if summary.get("git_sha"):
        parts.append(f"git={summary['git_sha']}")
    if summary.get("created_utc"):
        parts.append(str(summary["created_utc"]))
    if summary.get("host"):
        parts.append(str(summary["host"]))
    return "  ".join(parts)


def _fmt_value(value: float, family: str) -> str:
    if family == "time":
        return _fmt_seconds(value)
    return f"{value:g}"


def _fmt_signed(value: float, family: str) -> str:
    sign = "+" if value >= 0 else "-"
    if family == "time":
        return sign + _fmt_seconds(abs(value))
    return f"{value:+g}"


def _fmt_rel(relative: float | None) -> str:
    if relative is None:
        return "n/a"
    return f"{relative * 100.0:+.1f}%"


# ----------------------------------------------------------------- building
def _compare(deltas: list[Delta], added: list[str], removed: list[str],
             prefix: str, baseline: Mapping, current: Mapping,
             family_of) -> None:
    """Fold one mapping pair into deltas + structural lists."""
    for name in sorted(set(baseline) | set(current)):
        qualified = f"{prefix}.{name}"
        if name not in current:
            removed.append(qualified)
        elif name not in baseline:
            added.append(qualified)
        else:
            deltas.append(Delta(qualified, family_of(name, baseline[name]),
                                float(baseline[name]), float(current[name])))


def _histogram_mean(digest: Mapping) -> float:
    count = digest.get("count", 0)
    return digest.get("sum", 0.0) / count if count else 0.0


def _convergence_family(name: str, value) -> str:
    # Integer digests (iteration/step/failure totals) are deterministic
    # counts; float digests (rates, step sizes) are state.
    return "counter" if isinstance(value, int) and not isinstance(value, bool) \
        else "gauge"


def diff(baseline, current) -> RecordDiff:
    """Structured comparison of two run records (``baseline`` vs ``current``).

    Span totals contribute a count (counter family) and total/self times
    (time family) per span name; registry counters compare exactly, gauges
    as state, histograms by observation count *and* digest mean; the
    convergence summary splits into integer counts and float state; each
    benchmark contributes its call duration and, when pytest-benchmark
    stats were captured, its mean round time.
    """
    out = RecordDiff(baseline.summary(), current.summary())
    deltas, added, removed = out.deltas, out.added, out.removed

    deltas.append(Delta("wall_s", "time", baseline.wall_s, current.wall_s))

    for name in sorted(set(baseline.span_totals) | set(current.span_totals)):
        if name not in current.span_totals:
            removed.append(f"span.{name}")
            continue
        if name not in baseline.span_totals:
            added.append(f"span.{name}")
            continue
        b, c = baseline.span_totals[name], current.span_totals[name]
        deltas.append(Delta(f"span.{name}.count", "counter",
                            float(b["count"]), float(c["count"])))
        deltas.append(Delta(f"span.{name}.total_s", "time",
                            float(b["total_s"]), float(c["total_s"])))
        deltas.append(Delta(f"span.{name}.self_s", "time",
                            float(b["self_s"]), float(c["self_s"])))

    _compare(deltas, added, removed, "counter",
             baseline.metrics["counters"], current.metrics["counters"],
             lambda name, value: "counter")
    _compare(deltas, added, removed, "gauge",
             baseline.metrics["gauges"], current.metrics["gauges"],
             lambda name, value: "gauge")

    b_hists = baseline.metrics["histograms"]
    c_hists = current.metrics["histograms"]
    for name in sorted(set(b_hists) | set(c_hists)):
        if name not in c_hists:
            removed.append(f"hist.{name}")
            continue
        if name not in b_hists:
            added.append(f"hist.{name}")
            continue
        b, c = b_hists[name], c_hists[name]
        deltas.append(Delta(f"hist.{name}.count", "counter",
                            float(b.get("count", 0)), float(c.get("count", 0))))
        mean_family = "time" if name.endswith("_s") else "gauge"
        deltas.append(Delta(f"hist.{name}.mean", mean_family,
                            _histogram_mean(b), _histogram_mean(c)))

    if baseline.convergence is not None or current.convergence is not None:
        _compare(deltas, added, removed, "conv",
                 baseline.convergence or {}, current.convergence or {},
                 _convergence_family)

    for name in sorted(set(baseline.benchmarks) | set(current.benchmarks)):
        if name not in current.benchmarks:
            removed.append(f"bench.{name}")
            continue
        if name not in baseline.benchmarks:
            added.append(f"bench.{name}")
            continue
        b, c = baseline.benchmarks[name], current.benchmarks[name]
        deltas.append(Delta(f"bench.{name}.duration_s", "time",
                            float(b.get("duration_s", 0.0)),
                            float(c.get("duration_s", 0.0))))
        b_stats, c_stats = b.get("benchmark"), c.get("benchmark")
        if b_stats and c_stats:
            deltas.append(Delta(f"bench.{name}.mean_s", "time",
                                float(b_stats.get("mean_s", 0.0)),
                                float(c_stats.get("mean_s", 0.0))))
    return out


# --------------------------------------------------------------- regressions
@dataclass
class RegressionPolicy:
    """Per-metric-family thresholds turning a diff into a verdict.

    ``time`` metrics regress when the current value exceeds the baseline by
    more than ``max(time_abs_floor_s, time_rel_tol * baseline)`` -- the
    relative threshold absorbs machine noise, the absolute floor keeps
    microsecond-scale spans from tripping a 25 % check on nothing.
    ``counter`` metrics are exact by default (``counter_rel_tol = 0``): the
    solver work a run dispatches is deterministic, so *any* drift in e.g.
    Newton iteration counts is a real behaviour change.  ``gauge`` metrics
    are informational and only checked when ``check_gauges`` is set.
    Structural changes (phases or benchmarks appearing/vanishing) fail the
    verdict only under ``fail_on_structural``.
    """

    time_rel_tol: float = 0.25
    time_abs_floor_s: float = 5e-3
    counter_rel_tol: float = 0.0
    gauge_rel_tol: float = 0.25
    check_gauges: bool = False
    fail_on_structural: bool = False

    def judge(self, delta: Delta) -> str | None:
        """The failure reason for one delta, or None when it passes."""
        if delta.family == "time":
            allowed = max(self.time_abs_floor_s,
                          self.time_rel_tol * abs(delta.baseline))
            if delta.absolute > allowed:
                return (f"slower by {_fmt_seconds(delta.absolute)} "
                        f"(allowed {_fmt_seconds(allowed)})")
            return None
        if delta.family == "counter":
            allowed = self.counter_rel_tol * abs(delta.baseline)
            if abs(delta.absolute) > allowed:
                return (f"count drifted by {delta.absolute:+g} "
                        f"(allowed ±{allowed:g})")
            return None
        if delta.family == "gauge":
            if not self.check_gauges:
                return None
            allowed = self.gauge_rel_tol * abs(delta.baseline)
            if abs(delta.absolute) > allowed:
                return (f"state drifted by {delta.absolute:+g} "
                        f"(allowed ±{allowed:g})")
            return None
        raise ValueError(f"unknown metric family {delta.family!r}")

    def to_json(self) -> dict:
        return {"time_rel_tol": self.time_rel_tol,
                "time_abs_floor_s": self.time_abs_floor_s,
                "counter_rel_tol": self.counter_rel_tol,
                "gauge_rel_tol": self.gauge_rel_tol,
                "check_gauges": self.check_gauges,
                "fail_on_structural": self.fail_on_structural}


@dataclass
class RegressionVerdict:
    """Machine-readable outcome of one baseline check."""

    #: ``"ok"`` or ``"regressed"``.
    status: str
    #: One entry per failed metric: the delta payload plus ``reason``.
    failures: list[dict]
    #: Structural changes that contributed to the verdict (may be empty).
    structural: list[str]
    #: How many deltas the policy examined.
    checked: int
    policy: RegressionPolicy
    diff: RecordDiff

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def families(self) -> list[str]:
        """The metric families that regressed, sorted."""
        return sorted({failure["family"] for failure in self.failures})

    def to_json(self) -> dict:
        return {"status": self.status, "checked": self.checked,
                "families": self.families,
                "failures": [dict(failure) for failure in self.failures],
                "structural": list(self.structural),
                "policy": self.policy.to_json()}

    def format(self) -> str:
        if self.ok:
            return (f"verdict: ok ({self.checked} metrics within policy, "
                    f"baseline {self.diff.baseline_summary.get('id', '?')})")
        lines = [f"verdict: regressed -- "
                 f"{len(self.failures)} metric(s) in "
                 f"famil{'ies' if len(self.families) != 1 else 'y'} "
                 f"{', '.join(self.families)} "
                 f"({self.checked} checked)"]
        for failure in self.failures:
            lines.append(f"  [{failure['family']}] {failure['name']}: "
                         f"{failure['reason']}")
        for name in self.structural:
            lines.append(f"  [structural] {name}")
        return "\n".join(lines)


def check_regressions(record, baseline,
                      policy: RegressionPolicy | None = None
                      ) -> RegressionVerdict:
    """Judge ``record`` against ``baseline`` under ``policy``.

    Returns a :class:`RegressionVerdict`; ``verdict.ok`` is the gate CI
    keys off (the CLI ``check`` subcommand exits non-zero when it is not).
    """
    policy = policy if policy is not None else RegressionPolicy()
    delta_view = diff(baseline, record)
    failures = []
    checked = 0
    for delta in delta_view.deltas:
        if delta.family == "gauge" and not policy.check_gauges:
            continue
        checked += 1
        reason = policy.judge(delta)
        if reason is not None:
            failures.append({**delta.to_json(), "reason": reason})
    structural = []
    if policy.fail_on_structural and not delta_view.structurally_identical:
        structural = [f"added {name}" for name in delta_view.added] \
            + [f"removed {name}" for name in delta_view.removed]
    status = "regressed" if failures or structural else "ok"
    return RegressionVerdict(status, failures, structural, checked,
                             policy, delta_view)
