"""``python -m repro.telemetry.ledger`` -- the run-ledger command line.

Subcommands:

* ``record``  -- ingest a ``--bench-out`` benchmark ledger and/or a
  telemetry-report JSON into a ledger directory (prints the record ID),
* ``show``    -- list the ledger, or render one record (provenance,
  profile table, benchmark timings; ``--json`` for the raw payload),
* ``compare`` -- structured diff of two records (wall-time, Newton
  iterations, every changed metric),
* ``check``   -- regression gate: judge a record against a baseline under
  per-family thresholds; exits 1 on ``verdict: regressed``,
* ``gc``      -- apply/tighten the ledger's retention bound.

Record references are ``latest``, a content-ID prefix, or a path to a
standalone record JSON file (e.g. a committed baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .diffing import RegressionPolicy, check_regressions, diff
from .record import LedgerError, RunLedger, RunRecord

__all__ = ["main"]


def _resolve(ref: str, ledger: RunLedger | None) -> RunRecord:
    """A record from an ID prefix / ``latest`` / standalone JSON path."""
    if os.path.isfile(ref):
        return RunRecord.load(ref)
    if ledger is None:
        raise LedgerError(
            f"{ref!r} is not a record file and no --ledger directory was "
            "given to resolve it in")
    return ledger.load(ref)


def _ledger(args) -> RunLedger | None:
    if getattr(args, "ledger", None) is None:
        return None
    return RunLedger(args.ledger, retain=getattr(args, "retain", 200))


def _cmd_record(args) -> int:
    ledger = _ledger(args)
    if ledger is None:
        print("record: --ledger DIR is required", file=sys.stderr)
        return 2
    if not args.bench and not args.from_report:
        print("record: nothing to record (pass --bench and/or --from-report)",
              file=sys.stderr)
        return 2
    benchmarks = {}
    wall_s = 0.0
    provenance = None
    if args.bench:
        bench_record = RunRecord.from_bench_ledger(args.bench)
        benchmarks = bench_record.benchmarks
        wall_s = bench_record.wall_s
        provenance = bench_record.provenance
    if args.from_report:
        with open(args.from_report, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        record = RunRecord.from_report(
            payload, args.label, benchmarks=benchmarks,
            options_fingerprint=args.options_fingerprint,
            provenance=provenance)
        if not record.wall_s:
            record.wall_s = wall_s
    else:
        record = RunRecord(args.label, benchmarks=benchmarks, wall_s=wall_s,
                           options_fingerprint=args.options_fingerprint,
                           provenance=provenance)
    record_id = ledger.append(record)
    if args.out:
        record.dump(args.out)
    print(record_id)
    return 0


def _cmd_show(args) -> int:
    ledger = _ledger(args)
    if args.ref is None:
        if ledger is None:
            print("show: --ledger DIR is required to list records",
                  file=sys.stderr)
            return 2
        entries = ledger.entries()
        if not entries:
            print(f"ledger {ledger.path}: empty")
            return 0
        print(f"ledger {ledger.path}: {len(entries)} record(s), "
              f"retain={ledger.retain}")
        for record_id, record in entries:
            summary = record.summary()
            print(f"  {record_id}  {summary['label']:<12} "
                  f"{summary['created_utc'] or '?':<25} "
                  f"git={summary['git_sha'] or '?':<12} "
                  f"wall={summary['wall_s']:.3f}s "
                  f"spans={summary['spans']} bench={summary['benchmarks']}")
        return 0
    record = _resolve(args.ref, ledger)
    if args.json:
        json.dump(record.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    summary = record.summary()
    print(f"record {summary['id']}  label={summary['label']}")
    for key in ("created_utc", "git_sha", "host"):
        print(f"  {key}: {summary.get(key) or '?'}")
    versions = record.provenance.get("versions", {})
    if versions:
        print("  versions: " + ", ".join(f"{name}={version or '?'}"
                                         for name, version
                                         in sorted(versions.items())))
    if record.options_fingerprint:
        print(f"  options_fingerprint: {record.options_fingerprint}")
    print(f"  wall_s: {record.wall_s:.6f}")
    if record.convergence:
        print("  convergence: " + ", ".join(
            f"{name}={value:g}" for name, value
            in sorted(record.convergence.items())))
    if record.span_totals or record.metrics["histograms"]:
        print()
        print(record.telemetry_report().profile_summary(limit=args.limit))
    if record.benchmarks:
        print()
        print(f"{'benchmark':<60} {'outcome':>8} {'duration':>12}")
        for name, entry in sorted(record.benchmarks.items()):
            print(f"{name:<60} {entry.get('outcome') or '?':>8} "
                  f"{entry.get('duration_s', 0.0):>11.3f}s")
    return 0


def _cmd_compare(args) -> int:
    ledger = _ledger(args)
    baseline = _resolve(args.a, ledger)
    current = _resolve(args.b, ledger)
    delta_view = diff(baseline, current)
    if args.json:
        json.dump(delta_view.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(delta_view.format_table(limit=args.limit))
    return 0


def _cmd_check(args) -> int:
    ledger = _ledger(args)
    record = _resolve(args.ref, ledger)
    baseline = _resolve(args.baseline, ledger)
    policy = RegressionPolicy(
        time_rel_tol=args.time_tol,
        time_abs_floor_s=args.time_floor,
        counter_rel_tol=args.counter_tol,
        gauge_rel_tol=args.gauge_tol,
        check_gauges=args.check_gauges,
        fail_on_structural=args.fail_on_structural)
    verdict = check_regressions(record, baseline, policy)
    if args.json:
        json.dump(verdict.to_json(), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(verdict.format())
    return 0 if verdict.ok else 1


def _cmd_gc(args) -> int:
    ledger = _ledger(args)
    if ledger is None:
        print("gc: --ledger DIR is required", file=sys.stderr)
        return 2
    removed = ledger.gc(args.keep)
    print(f"removed {removed} record(s); {len(ledger)} kept")
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.ledger",
        description="Persistent cross-run observability: record, diff and "
                    "regression-gate repro runs.")
    commands = parser.add_subparsers(dest="command", required=True)

    def add_ledger_arg(sub):
        sub.add_argument("--ledger", metavar="DIR", default=None,
                         help="run-ledger directory (holds records.jsonl)")
        sub.add_argument("--retain", type=int, default=200, metavar="N",
                         help="retention bound applied on append (default 200)")

    sub = commands.add_parser(
        "record", help="ingest a benchmark ledger / telemetry report")
    add_ledger_arg(sub)
    sub.add_argument("--bench", metavar="FILE",
                     help="--bench-out JSON ledger to ingest")
    sub.add_argument("--from-report", metavar="FILE",
                     help="TelemetryReport.to_json() file to ingest")
    sub.add_argument("--label", default="bench",
                     help="record label (default: bench)")
    sub.add_argument("--options-fingerprint", default=None, metavar="HASH",
                     help="configuration fingerprint to stamp on the record")
    sub.add_argument("--out", metavar="FILE", default=None,
                     help="also write the record as a standalone JSON file")
    sub.set_defaults(func=_cmd_record)

    sub = commands.add_parser(
        "show", help="list the ledger or render one record")
    add_ledger_arg(sub)
    sub.add_argument("ref", nargs="?", default=None,
                     help="record reference: id prefix, 'latest' or a JSON "
                          "file (omit to list the ledger)")
    sub.add_argument("--json", action="store_true",
                     help="emit the raw record payload")
    sub.add_argument("--limit", type=int, default=20,
                     help="profile-table row cap (default 20)")
    sub.set_defaults(func=_cmd_show)

    sub = commands.add_parser(
        "compare", help="structured diff of two records (A = baseline)")
    add_ledger_arg(sub)
    sub.add_argument("a", help="baseline record reference")
    sub.add_argument("b", help="current record reference")
    sub.add_argument("--json", action="store_true",
                     help="emit the structured diff as JSON")
    sub.add_argument("--limit", type=int, default=40,
                     help="changed-metric row cap (default 40)")
    sub.set_defaults(func=_cmd_compare)

    sub = commands.add_parser(
        "check", help="regression-gate a record against a baseline "
                      "(exit 1 on verdict: regressed)")
    add_ledger_arg(sub)
    sub.add_argument("ref", nargs="?", default="latest",
                     help="record to judge (default: latest)")
    sub.add_argument("--baseline", required=True,
                     help="baseline record reference (id prefix, 'latest' "
                          "or a JSON file such as benchmarks/BASELINE.json)")
    sub.add_argument("--time-tol", type=float, default=0.25, metavar="REL",
                     help="relative slowdown allowed for time metrics "
                          "(default 0.25 = 25%%)")
    sub.add_argument("--time-floor", type=float, default=5e-3, metavar="S",
                     help="absolute slowdown floor in seconds (default 5 ms)")
    sub.add_argument("--counter-tol", type=float, default=0.0, metavar="REL",
                     help="relative drift allowed for counters (default 0 = "
                          "exact)")
    sub.add_argument("--gauge-tol", type=float, default=0.25, metavar="REL",
                     help="relative drift allowed for gauges (with "
                          "--check-gauges)")
    sub.add_argument("--check-gauges", action="store_true",
                     help="also judge gauge-family metrics")
    sub.add_argument("--fail-on-structural", action="store_true",
                     help="fail when phases/benchmarks appear or vanish")
    sub.add_argument("--json", action="store_true",
                     help="emit the verdict as JSON")
    sub.set_defaults(func=_cmd_check)

    sub = commands.add_parser("gc", help="apply/tighten the retention bound")
    add_ledger_arg(sub)
    sub.add_argument("--keep", type=int, default=None, metavar="N",
                     help="records to keep (default: the retain bound)")
    sub.set_defaults(func=_cmd_gc)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (LedgerError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
