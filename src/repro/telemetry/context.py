"""Hierarchical spans and collection sessions.

A **span** is one timed region of work with a name, typed attributes and
children -- ``with span("transient.step") as s: s.set("newton_iters", k)``.
Spans nest through a thread-local stack: a span opened while another is
open becomes its child, so a whole analysis run produces a tree whose
leaves are individual assemblies/factorizations and whose root is the run.

A **session** is the unit of collection: spans are only *recorded* while at
least one session is active on the current thread.  With no session active,
:func:`span` returns a shared no-op handle after a single thread-local
check -- the near-zero disabled path that lets every hot loop in the stack
stay instrumented unconditionally.  Sessions nest; completed root spans
belong to the innermost session, and when an inner session closes its
per-name aggregate totals fold into the enclosing one so an outer profile
still accounts for the work.

Cross-process use: a session constructed with ``keep_spans=False`` retains
only the per-name aggregates (count / total / self time) instead of the
span trees -- the form campaign pool workers ship back with result chunks.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Mapping

from . import registry

__all__ = ["Span", "TelemetrySession", "TelemetryReport", "span",
           "detail_span", "session", "enabled", "detail_enabled", "current",
           "current_path", "MODES", "aggregate_spans", "merge_span_totals"]

#: Collection modes: ``"summary"`` keeps coarse spans and convergence
#: digests; ``"full"`` additionally records fine-grained (per-iteration /
#: per-point) detail spans.
MODES = ("summary", "full")

_perf_counter = time.perf_counter


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: list[Span] = []
        self.sessions: list[TelemetrySession] = []


_state = _ThreadState()


class Span:
    """One timed, attributed region of work in the span tree."""

    __slots__ = ("name", "t0", "duration_s", "attrs", "children")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = attrs or {}
        self.children: list[Span] = []
        self.duration_s = 0.0
        self.t0 = 0.0

    # ------------------------------------------------------------- attributes
    def set(self, key: str, value) -> None:
        """Attach one typed attribute to this span."""
        self.attrs[key] = value

    def bump(self, key: str, amount: float = 1.0) -> None:
        """Accumulate into a numeric attribute (created at zero)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def annotate(self, **attrs) -> None:
        """Attach several attributes at once."""
        self.attrs.update(attrs)

    # ------------------------------------------------------------ aggregation
    @property
    def self_s(self) -> float:
        """Wall time not covered by child spans."""
        return max(0.0, self.duration_s
                   - sum(child.duration_s for child in self.children))

    def walk(self) -> Iterator[tuple["Span", int]]:
        """Yield ``(span, depth)`` over the subtree, pre-order."""
        pending = [(self, 0)]
        while pending:
            node, depth = pending.pop()
            yield node, depth
            for child in reversed(node.children):
                pending.append((child, depth + 1))

    # -------------------------------------------------------- context manager
    def __enter__(self) -> "Span":
        _state.stack.append(self)
        self.t0 = _perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = _perf_counter() - self.t0
        if exc_type is not None:
            # Exception safety: the span still closes, records what went
            # wrong, and never swallows the exception.
            self.attrs.setdefault("error", exc_type.__name__)
        stack = _state.stack
        # Unwind to this span even if an exception skipped inner __exit__s.
        while stack:
            top = stack.pop()
            if top is self:
                break
        if stack:
            stack[-1].children.append(self)
        elif _state.sessions:
            _state.sessions[-1]._add_root(self)
        return False

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_s * 1e3:.3f} ms, "
                f"{len(self.children)} children)")


class _NullSpan:
    """Shared do-nothing span handle returned while telemetry is disabled."""

    __slots__ = ()
    name = ""
    duration_s = 0.0
    self_s = 0.0
    attrs: dict = {}
    children: list = []

    def set(self, key: str, value) -> None:
        pass

    def bump(self, key: str, amount: float = 1.0) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# ------------------------------------------------------------------- factory
def span(name: str, **attrs):
    """Open a span (records only while a session is active on this thread)."""
    if not _state.sessions:
        return _NULL_SPAN
    return Span(name, attrs or None)


def detail_span(name: str, **attrs):
    """Open a fine-grained span, recorded only in ``"full"`` mode sessions."""
    sessions = _state.sessions
    if not sessions or sessions[-1].mode != "full":
        return _NULL_SPAN
    return Span(name, attrs or None)


def enabled() -> bool:
    """Whether spans/timings are being collected on this thread."""
    return bool(_state.sessions)


def detail_enabled() -> bool:
    """Whether fine-grained (``"full"`` mode) collection is active."""
    sessions = _state.sessions
    return bool(sessions) and sessions[-1].mode == "full"


def current():
    """The innermost open span (a no-op handle when none is open)."""
    stack = _state.stack
    return stack[-1] if stack else _NULL_SPAN


def current_path(separator: str = "/") -> str:
    """The open span stack as a path (``"tran.run/transient.step"``).

    Empty string when no span is open -- the hook the logging bridge uses to
    correlate log records with the span tree without holding references.
    """
    stack = _state.stack
    if not stack:
        return ""
    return separator.join(node.name for node in stack)


# -------------------------------------------------------------- span totals
def aggregate_spans(spans, totals: dict | None = None) -> dict:
    """Per-name ``{count, total_s, self_s}`` totals over span trees.

    ``total_s`` sums every span of the name (children included in their
    parents' totals -- the flame-graph convention), ``self_s`` the time not
    covered by children; merging the two views is what makes a profile of
    thousands of spans shippable across a process boundary.
    """
    totals = {} if totals is None else totals
    for root in spans:
        for node, _ in root.walk():
            entry = totals.get(node.name)
            if entry is None:
                totals[node.name] = {"count": 1, "total_s": node.duration_s,
                                     "self_s": node.self_s}
            else:
                entry["count"] += 1
                entry["total_s"] += node.duration_s
                entry["self_s"] += node.self_s
    return totals


def merge_span_totals(total: dict, part: Mapping) -> dict:
    """Accumulate one span-totals mapping into another, in place."""
    for name, entry in part.items():
        into = total.get(name)
        if into is None:
            total[name] = dict(entry)
        else:
            into["count"] += entry["count"]
            into["total_s"] += entry["total_s"]
            into["self_s"] += entry["self_s"]
    return total


# ------------------------------------------------------------------ sessions
class TelemetryReport:
    """What one session collected: span trees, totals, metric deltas.

    ``spans`` holds the completed root spans (empty for aggregate-only
    sessions), ``span_totals`` the per-name aggregates, ``metrics`` the
    registry delta over the session and ``convergence`` the analysis-level
    convergence diagnostics when the producing analysis attached them.
    """

    def __init__(self, mode: str, spans: list[Span], span_totals: dict,
                 metrics: dict, wall_s: float, convergence=None) -> None:
        self.mode = mode
        self.spans = spans
        self.span_totals = span_totals
        self.metrics = metrics
        self.wall_s = wall_s
        self.convergence = convergence

    # Exporters live in repro.telemetry.export; thin forwarding keeps the
    # report the single object callers interact with.
    def chrome_trace(self) -> list[dict]:
        """The Chrome/Perfetto ``trace_event`` list of the span trees."""
        from .export import chrome_trace_events

        return chrome_trace_events(self.spans)

    def write_chrome_trace(self, path) -> str:
        """Write a Perfetto-loadable ``trace_event`` JSON file."""
        from .export import write_chrome_trace

        return write_chrome_trace(path, self.spans)

    def to_json(self) -> dict:
        """JSON-serializable dict of everything the session collected."""
        from .export import report_to_json

        return report_to_json(self)

    def profile_summary(self, limit: int = 20, sort: str = "self") -> str:
        """Human-readable per-span-name profile table.

        ``sort`` is ``"self"`` (default), ``"total"`` or ``"count"``; a
        table truncated by ``limit`` reports how many rows were omitted.
        """
        from .export import profile_summary

        return profile_summary(self, limit=limit, sort=sort)

    def aggregate_payload(self) -> dict:
        """Picklable cross-process payload: span totals + metric deltas."""
        return {"span_totals": self.span_totals, "metrics": self.metrics,
                "wall_s": self.wall_s}

    def __repr__(self) -> str:
        return (f"TelemetryReport(mode={self.mode!r}, {len(self.spans)} root "
                f"spans, {len(self.span_totals)} span names, "
                f"{self.wall_s * 1e3:.1f} ms)")


class TelemetrySession:
    """Scoped span collection on the current thread.

    Parameters
    ----------
    mode:
        ``"summary"`` or ``"full"`` (enables :func:`detail_span`).
    keep_spans:
        When False, completed root spans are folded into the per-name
        aggregates and dropped immediately -- bounded memory for arbitrarily
        long campaigns, at the cost of no flame-graph trees.
    """

    def __init__(self, mode: str = "full", keep_spans: bool = True) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown telemetry mode {mode!r} (use one of {MODES})")
        self.mode = mode
        self.keep_spans = bool(keep_spans)
        self.report: TelemetryReport | None = None
        self._spans: list[Span] = []
        self._span_totals: dict = {}
        self._metrics_before: dict | None = None
        self._t0 = 0.0

    def _add_root(self, root: Span) -> None:
        if self.keep_spans:
            self._spans.append(root)
        else:
            aggregate_spans((root,), self._span_totals)

    def __enter__(self) -> "TelemetrySession":
        self._metrics_before = registry.snapshot()
        self._t0 = _perf_counter()
        _state.sessions.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = _perf_counter() - self._t0
        sessions = _state.sessions
        if self in sessions:
            sessions.remove(self)
        metrics = registry.delta(self._metrics_before)
        totals = aggregate_spans(self._spans, dict(self._span_totals)) \
            if self.keep_spans else dict(self._span_totals)
        self.report = TelemetryReport(self.mode, list(self._spans), totals,
                                      metrics, wall_s)
        if sessions:
            # Fold this session's work into the enclosing profile so outer
            # observers (e.g. a campaign chunk session around per-analysis
            # sessions) still account for every span.
            merge_span_totals(sessions[-1]._span_totals, totals)
        return False


def session(mode: str = "full", keep_spans: bool = True) -> TelemetrySession:
    """Open a collection session (``with telemetry.session() as s: ...``)."""
    return TelemetrySession(mode, keep_spans=keep_spans)
