"""Failure flight recorder: structured reports and replayable bundles.

When a solve diverges three questions matter: *what* failed (which equation,
how badly, with what conditioning), *where* the trajectory was last healthy,
and *how to reproduce it* away from the 10k-point campaign that surfaced it.
This module answers all three:

- :class:`FailureReport` -- the structured post-mortem attached to
  :class:`~repro.errors.ConvergenceError` / ``SingularMatrixError`` (and
  FEM/optim failures) when ``SimulationOptions.forensics`` is on: residual
  trajectory, offending unknown names, condition estimate, last-good state,
  recent step/LTE history, the full option set.
- a process-wide ring buffer of recent reports (:func:`record`,
  :func:`last_failure`, :func:`recent_failures`) so campaign drivers can
  collect post-mortems even when a worker swallowed the exception.
- :class:`ReproductionBundle` -- a self-contained JSON dump (circuit
  fingerprint + factory reference, options, analysis arguments, the failure
  report) that :func:`replay` re-runs deterministically: load the bundle,
  rebuild the circuit from its factory, re-run the failing analysis and
  check the same failure reappears.

Everything here is import-light (stdlib + numpy + sibling telemetry
modules); the circuit/analysis layer is imported lazily inside
:func:`replay` only, keeping ``repro.telemetry`` free of import cycles.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from . import registry
from . import health as _health

__all__ = ["FailureReport", "ReproductionBundle", "ReplayResult",
           "record", "last_failure", "recent_failures", "clear",
           "circuit_fingerprint", "dump_bundle", "load_bundle", "replay"]

#: Schema tag written into every bundle; bump on incompatible change.
_BUNDLE_SCHEMA = "repro-forensics-bundle/1"

#: How many reports the in-process ring buffer retains.
_RING_SIZE = 16


@dataclass
class FailureReport:
    """Structured post-mortem of one solver failure."""

    #: Failure class: ``"newton"``, ``"singular"``, ``"step_underflow"``,
    #: ``"fem"``, ``"optim"``.
    kind: str
    #: Producing analysis (``"op"``, ``"dc"``, ``"tran"``, ``"ac"``, ...).
    analysis: str
    message: str
    error_type: str = ""
    #: Simulated time of the failure (transient), sweep value (DC), or None.
    time: float | None = None
    iterations: int | None = None
    residual_norm: float | None = None
    #: Max-norm residual per Newton iteration of the failing solve.
    residual_trajectory: list = field(default_factory=list)
    #: ``[(unknown label, residual value), ...]`` worst first.
    offending: list = field(default_factory=list)
    condition_estimate: float | None = None
    #: Output of :func:`repro.telemetry.health.singular_diagnosis`.
    diagnosis: dict | None = None
    #: Last accepted solution: ``{"time": t, "values": {label: value}}``.
    last_good: dict | None = None
    #: Tail of the transient step/LTE history (dicts of StepRecord fields).
    step_history: list = field(default_factory=list)
    #: Full ``SimulationOptions`` field dict of the failing run.
    options: dict | None = None
    #: Free-form extras (system size, sweep point, parameter values, ...).
    context: dict = field(default_factory=dict)

    @property
    def offending_unknown(self) -> str | None:
        """The single most suspicious unknown name, if any was identified."""
        if self.offending:
            return str(self.offending[0][0])
        if self.diagnosis and self.diagnosis.get("suspects"):
            return str(self.diagnosis["suspects"][0])
        return None

    def summary(self) -> dict:
        """Flat picklable digest -- the form campaign rows carry."""
        return {
            "kind": self.kind,
            "analysis": self.analysis,
            "error_type": self.error_type,
            "message": self.message,
            "time": self.time,
            "iterations": self.iterations,
            "residual_norm": self.residual_norm,
            "offending_unknown": self.offending_unknown,
            "condition_estimate": self.condition_estimate,
        }

    def to_json(self) -> dict:
        """JSON-serializable dict of every field."""
        payload = dataclasses.asdict(self)
        payload["offending"] = [[str(name), float(value)]
                                for name, value in self.offending]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "FailureReport":
        known = {f.name for f in dataclasses.fields(cls)}
        data = {key: value for key, value in payload.items() if key in known}
        data["offending"] = [(name, value)
                             for name, value in data.get("offending", [])]
        return cls(**data)

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"FailureReport[{self.kind}] in {self.analysis}: {self.message}"]
        if self.time is not None:
            lines.append(f"  at t={self.time:g}")
        if self.iterations is not None:
            lines.append(f"  after {self.iterations} iterations")
        if self.residual_trajectory:
            tail = ", ".join(f"{value:.3e}"
                             for value in self.residual_trajectory[-5:])
            lines.append(f"  residual trajectory (tail): {tail}")
        if self.condition_estimate is not None:
            lines.append(f"  condition estimate: {self.condition_estimate:.3e}")
        for name, value in self.offending[:5]:
            lines.append(f"  residual[{name}] = {value:.3e}")
        if self.diagnosis is not None:
            lines.append(f"  structure: {self.diagnosis.get('message', '')}")
        if self.last_good is not None:
            lines.append(f"  last good state at t={self.last_good.get('time')}")
        return "\n".join(lines)


# ------------------------------------------------------------- ring buffer
_ring: deque = deque(maxlen=_RING_SIZE)
_ring_lock = threading.Lock()


def record(report: FailureReport) -> FailureReport:
    """Retain ``report`` in the process-wide ring buffer (and count it)."""
    with _ring_lock:
        _ring.append(report)
    registry.inc("forensics.reports")
    registry.inc(f"forensics.reports.{report.kind}")
    return report


def last_failure() -> FailureReport | None:
    """The most recently recorded report, or None."""
    with _ring_lock:
        return _ring[-1] if _ring else None


def recent_failures() -> list[FailureReport]:
    """The retained reports, oldest first."""
    with _ring_lock:
        return list(_ring)


def clear() -> None:
    """Drop all retained reports (test isolation)."""
    with _ring_lock:
        _ring.clear()


# --------------------------------------------------------- capture helpers
def capture(exc, report: FailureReport) -> FailureReport:
    """Record ``report`` and attach it to ``exc`` (returns the report)."""
    record(report)
    exc.report = report
    report.error_type = report.error_type or type(exc).__name__
    return report


def state_snapshot(labels, values, time=None) -> dict:
    """A ``last_good`` dict from unknown labels and a solution vector."""
    values = np.asarray(values, dtype=float)
    return {"time": None if time is None else float(time),
            "values": {str(label): float(value)
                       for label, value in zip(labels, values)}}


# ----------------------------------------------------------------- bundles
def circuit_fingerprint(circuit) -> str:
    """Deterministic SHA-256 over the circuit's device/topology content.

    Hashes each device's class, name, scalar attributes and node hookup.
    Two circuits built by the same factory at the same parameter point hash
    identically; :func:`replay` uses this to verify the rebuilt circuit
    matches the one that failed.
    """
    digest = hashlib.sha256()
    for device in circuit:
        digest.update(type(device).__name__.encode())
        digest.update(str(getattr(device, "name", "?")).encode())
        for key, value in sorted(vars(device).items()):
            if isinstance(value, (bool, int, float, str)):
                digest.update(f"{key}={value!r};".encode())
            elif dataclasses.is_dataclass(value) and not isinstance(value, type):
                # Waveform objects (DC/Pulse/Sine, ...) carry the source
                # values; dataclass reprs are deterministic field dumps.
                digest.update(f"{key}={value!r};".encode())
            elif hasattr(value, "name") and isinstance(value.name, str):
                # Node (or node-like) attributes hash by name.
                digest.update(f"{key}=@{value.name};".encode())
    return digest.hexdigest()


def _qualified_name(obj) -> str:
    return f"{obj.__module__}:{obj.__qualname__}"


def _resolve_qualified(name: str):
    module_name, _, attr_path = name.partition(":")
    if not attr_path:
        module_name, _, attr_path = name.rpartition(".")
    target = importlib.import_module(module_name)
    for part in attr_path.split("."):
        target = getattr(target, part)
    return target


@dataclass
class ReproductionBundle:
    """Self-contained description of how to re-run one failing solve."""

    #: Analysis kind: ``"op"``, ``"dc"``, ``"tran"`` or ``"ac"``.
    analysis: str
    #: Constructor arguments beyond the circuit (sweep values, t_stop, ...).
    analysis_args: dict = field(default_factory=dict)
    #: Full ``SimulationOptions`` field dict.
    options: dict = field(default_factory=dict)
    #: ``"module:qualname"`` of the circuit factory, or None when the caller
    #: will pass a circuit to :func:`replay` directly.
    build: str | None = None
    #: Keyword arguments of the factory (the failing parameter point).
    params: dict = field(default_factory=dict)
    #: :func:`circuit_fingerprint` of the failing circuit.
    fingerprint: str | None = None
    #: ``FailureReport.to_json()`` of the original failure.
    failure: dict | None = None
    schema: str = _BUNDLE_SCHEMA

    def dump(self, path) -> str:
        path = str(path)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(dataclasses.asdict(self), handle, indent=2, default=str)
        return path

    @classmethod
    def load(cls, path) -> "ReproductionBundle":
        with open(str(path), "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        schema = payload.get("schema", "")
        if not schema.startswith("repro-forensics-bundle/"):
            raise ValueError(f"not a forensics bundle: schema={schema!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items()
                      if key in known})


def dump_bundle(path, *, analysis: str, options, analysis_args: dict | None = None,
                build=None, params: dict | None = None, circuit=None,
                report: FailureReport | None = None) -> ReproductionBundle:
    """Write a reproduction bundle for one failing analysis run.

    ``options`` may be a ``SimulationOptions`` instance or a plain dict;
    ``build`` a callable circuit factory (stored by qualified name) or the
    ``"module:qualname"`` string itself.
    """
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        options = dataclasses.asdict(options)
    if build is not None and not isinstance(build, str):
        build = _qualified_name(build)
    bundle = ReproductionBundle(
        analysis=analysis,
        analysis_args=dict(analysis_args or {}),
        options=dict(options or {}),
        build=build,
        params=dict(params or {}),
        fingerprint=circuit_fingerprint(circuit) if circuit is not None else None,
        failure=report.to_json() if report is not None else None)
    bundle.dump(path)
    registry.inc("forensics.bundles_dumped")
    return bundle


load_bundle = ReproductionBundle.load


@dataclass
class ReplayResult:
    """Outcome of re-running a reproduction bundle."""

    #: Whether the original failure reappeared (same error type and, when
    #: both runs identified one, the same offending unknown).
    reproduced: bool
    #: The exception of the replay run (None if it unexpectedly succeeded).
    error: Exception | None
    #: The replay's own FailureReport, when one was captured.
    report: FailureReport | None
    #: The analysis result, when the replay unexpectedly succeeded.
    result: object = None
    #: True when the rebuilt circuit hashed to the bundled fingerprint.
    fingerprint_match: bool | None = None


def replay(bundle, build=None, circuit=None) -> ReplayResult:
    """Re-run a dumped failure and check it reproduces.

    ``bundle`` is a :class:`ReproductionBundle` or a path to one.  The
    circuit is rebuilt from ``circuit`` (given directly), ``build`` (a
    factory called with the bundled parameter point), or the factory
    recorded in the bundle by qualified name -- in that order.
    """
    if not isinstance(bundle, ReproductionBundle):
        bundle = ReproductionBundle.load(bundle)
    from ..circuit.analysis.ac import ACAnalysis
    from ..circuit.analysis.dcsweep import DCSweepAnalysis
    from ..circuit.analysis.op import OperatingPointAnalysis
    from ..circuit.analysis.options import SimulationOptions
    from ..circuit.analysis.transient import TransientAnalysis
    from ..errors import ReproError

    if circuit is None:
        factory = build if build is not None else (
            _resolve_qualified(bundle.build) if bundle.build else None)
        if factory is None:
            raise ValueError("bundle records no circuit factory; pass build= "
                             "or circuit=")
        circuit = factory(**bundle.params)
    fingerprint_match = None
    if bundle.fingerprint:
        fingerprint_match = circuit_fingerprint(circuit) == bundle.fingerprint
    # Forensics stay on for the replay so the fresh run yields its own
    # report to compare against the bundled one.
    options = SimulationOptions(**{**bundle.options, "forensics": True})
    args = bundle.analysis_args
    if bundle.analysis == "op":
        analysis = OperatingPointAnalysis(circuit, options=options)
        run = analysis.run
    elif bundle.analysis == "dc":
        analysis = DCSweepAnalysis(circuit, args["source"], args["values"],
                                   options=options)
        run = analysis.run
    elif bundle.analysis == "tran":
        analysis = TransientAnalysis(circuit, t_stop=args["t_stop"],
                                     t_step=args["t_step"],
                                     t_start=args.get("t_start", 0.0),
                                     options=options)
        run = analysis.run
    elif bundle.analysis == "ac":
        analysis = ACAnalysis(circuit, args["frequencies"], options=options)
        run = analysis.run
    else:
        raise ValueError(f"cannot replay analysis kind {bundle.analysis!r}")
    try:
        result = run()
    except ReproError as exc:
        report = exc.report if isinstance(exc.report, FailureReport) else None
        expected = bundle.failure or {}
        reproduced = True
        if expected.get("error_type"):
            reproduced = type(exc).__name__ == expected["error_type"]
        if reproduced and report is not None and expected:
            bundled = FailureReport.from_json(expected)
            if bundled.offending_unknown and report.offending_unknown:
                reproduced = (report.offending_unknown
                              == bundled.offending_unknown)
        return ReplayResult(reproduced=reproduced, error=exc, report=report,
                            fingerprint_match=fingerprint_match)
    return ReplayResult(reproduced=False, error=None, report=None,
                        result=result, fingerprint_match=fingerprint_match)


# -------------------------------------------------- analysis-side builders
def newton_failure(*, kind: str, analysis: str, message: str, error_type: str = "",
                   time=None, iterations=None, labels=None, residual=None,
                   trajectory=(), factorization=None, matrix=None,
                   options=None, context=None) -> FailureReport:
    """Assemble (and record) a report for a failed Newton-family solve.

    Shared by op/dcsweep/transient: ranks the residual against the unknown
    labels, pulls a condition estimate off the held factorization when one
    exists, and runs the structural singularity diagnosis when the assembled
    matrix is at hand.  Never raises -- a forensics capture must not mask
    the original failure.
    """
    offending = []
    if labels is not None and residual is not None:
        try:
            offending = _health.attribute_residual(labels, residual)
        except Exception:
            offending = []
    condition = None
    if factorization is not None:
        try:
            condition = float(factorization.condition_estimate())
        except Exception:
            condition = None
    diagnosis = None
    if matrix is not None:
        try:
            diagnosis = _health.singular_diagnosis(matrix, labels)
        except Exception:
            diagnosis = None
    residual_norm = None
    if residual is not None:
        finite = np.asarray(residual, dtype=float)
        if finite.size:
            residual_norm = float(np.max(np.abs(finite)))
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        options = dataclasses.asdict(options)
    report = FailureReport(
        kind=kind, analysis=analysis, message=message, error_type=error_type,
        time=None if time is None else float(time), iterations=iterations,
        residual_norm=residual_norm, residual_trajectory=list(trajectory),
        offending=offending, condition_estimate=condition,
        diagnosis=diagnosis, options=options, context=dict(context or {}))
    return record(report)
