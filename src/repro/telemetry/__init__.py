"""repro.telemetry -- hierarchical tracing, metrics and convergence
diagnostics across the whole stack.

The subsystem has three moving parts:

* **Spans** (:func:`span`, :func:`detail_span`): timed, attributed, nested
  regions of work collected per-thread while a :func:`session` is active.
  With no session active the factories return a shared no-op handle, so
  permanently-instrumented hot loops pay one thread-local check.
* **Metrics registry** (:mod:`repro.telemetry.registry`): process-wide
  counters/gauges/histograms generalizing the old ``linalg.metrics``
  counters (that module is now a shim over this registry), with
  delta/merge plumbing for cross-process aggregation.
* **Convergence diagnostics** (:mod:`repro.telemetry.convergence`): Newton
  residual trajectories, transient step histories and optimizer iterate
  traces, attached to result objects behind ``SimulationOptions.telemetry``.

Typical use::

    from repro import telemetry

    with telemetry.session(mode="full") as s:
        result = TransientAnalysis(t_stop=1e-3).run(circuit)
    s.report.write_chrome_trace("run.trace.json")
    print(s.report.profile_summary())

Analyses do this internally when ``SimulationOptions(telemetry="full")`` is
set and attach the report as ``result.telemetry``.
"""

from . import forensics, health, ledger, progress, registry
from .context import (MODES, Span, TelemetryReport, TelemetrySession,
                      aggregate_spans, current, current_path, detail_enabled,
                      detail_span, enabled, merge_span_totals, session, span)
from .convergence import (ConvergenceDiagnostics, IterateRecord, NewtonTrace,
                          StepRecord)
from .export import (chrome_trace_events, profile_summary, report_to_json,
                     spans_to_json, write_chrome_trace)
from .forensics import FailureReport, ReproductionBundle
from .health import ConditionRecord, NumericalHealthWarning
from .progress import (CallbackReporter, LoggingProgressReporter,
                       ProgressEvent, ProgressReporter, ProgressTracker,
                       StallWarning, reporting, tracker)

__all__ = [
    "registry", "health", "forensics", "progress", "ledger",
    "Span", "TelemetrySession", "TelemetryReport", "MODES",
    "span", "detail_span", "session", "enabled", "detail_enabled", "current",
    "current_path", "aggregate_spans", "merge_span_totals",
    "ConvergenceDiagnostics", "NewtonTrace", "StepRecord", "IterateRecord",
    "chrome_trace_events", "write_chrome_trace", "spans_to_json",
    "report_to_json", "profile_summary",
    "ConditionRecord", "NumericalHealthWarning",
    "FailureReport", "ReproductionBundle",
    "ProgressEvent", "ProgressReporter", "CallbackReporter",
    "LoggingProgressReporter", "ProgressTracker", "StallWarning",
    "reporting", "tracker",
]
