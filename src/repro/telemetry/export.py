"""Exporters: structured JSON, Chrome/Perfetto traces, profile tables.

Three ways out of a :class:`~repro.telemetry.TelemetryReport`:

* :func:`report_to_json` / :func:`spans_to_json` -- plain dicts for
  machine consumption (the structure mirrors the in-memory objects),
* :func:`chrome_trace_events` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` JSON-array format, loadable in ``ui.perfetto.dev`` or
  ``chrome://tracing`` for flame-graph viewing,
* :func:`profile_summary` -- a fixed-width per-span-name table for humans.
"""

from __future__ import annotations

import json
from typing import Iterable

__all__ = ["spans_to_json", "report_to_json", "chrome_trace_events",
           "write_chrome_trace", "profile_summary"]


# ----------------------------------------------------------- structured JSON
def spans_to_json(spans: Iterable) -> list[dict]:
    """Nested dict form of span trees (durations in seconds)."""
    out = []
    for root in spans:
        out.append({
            "name": root.name,
            "duration_s": root.duration_s,
            "self_s": root.self_s,
            "attrs": dict(root.attrs),
            "children": spans_to_json(root.children),
        })
    return out


def report_to_json(report) -> dict:
    """JSON-serializable dict of one telemetry report."""
    out = {
        "mode": report.mode,
        "wall_s": report.wall_s,
        "span_totals": {name: dict(entry)
                        for name, entry in report.span_totals.items()},
        "metrics": report.metrics,
        "spans": spans_to_json(report.spans),
    }
    if report.convergence is not None:
        out["convergence"] = report.convergence.to_json()
    return out


# ------------------------------------------------------- Chrome trace_event
def chrome_trace_events(spans: Iterable, pid: int = 1, tid: int = 1) -> list[dict]:
    """Chrome ``trace_event`` list (complete ``"X"`` events, µs units).

    Spans carry only durations, so event timestamps are reconstructed by
    laying each root out after the previous one and packing children at
    their parent's start -- the nesting (the part a flame graph shows) is
    exact; only inter-span gaps are elided.
    """
    events = []
    cursor = 0.0  # µs

    def emit(node, start_us: float) -> None:
        duration_us = node.duration_s * 1e6
        event = {
            "name": node.name,
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(duration_us, 3),
            "pid": pid,
            "tid": tid,
            "cat": node.name.split(".", 1)[0] or "span",
        }
        if node.attrs:
            event["args"] = {key: value for key, value in node.attrs.items()
                             if isinstance(value, (int, float, str, bool))}
        events.append(event)
        child_cursor = start_us
        for child in node.children:
            emit(child, child_cursor)
            child_cursor += child.duration_s * 1e6

    for root in spans:
        emit(root, cursor)
        cursor += root.duration_s * 1e6

    return events


def write_chrome_trace(path, spans: Iterable, pid: int = 1, tid: int = 1) -> str:
    """Write spans as a Perfetto-loadable ``trace_event`` JSON file."""
    path = str(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": chrome_trace_events(spans, pid=pid, tid=tid),
                   "displayTimeUnit": "ms"}, handle)
    return path


# ----------------------------------------------------------- profile summary
#: Column each ``profile_summary(sort=...)`` key orders by (descending).
_PROFILE_SORT_KEYS = {"self": "self_s", "total": "total_s", "count": "count"}


def profile_summary(report, limit: int = 20, sort: str = "self") -> str:
    """Fixed-width table of per-span-name totals.

    ``sort`` orders the rows descending by ``"self"`` (exclusive time, the
    default), ``"total"`` (inclusive time) or ``"count"``.  Only the top
    ``limit`` rows are printed; a truncated table says how many rows were
    omitted so a clipped profile can never be mistaken for a complete one.
    The ``self %`` / ``total %`` columns are shares of the report's wall
    time (inclusive shares exceed 100% summed -- parents contain children).

    Histogram metrics collected by the report (e.g. the batched-execution
    ``batch.size`` / ``batch.solve_s`` digests riding campaign telemetry
    payloads) are appended as their own count/mean/min/max section, so a
    campaign profile shows its batching behaviour without digging into the
    raw ``metrics`` dict.
    """
    if sort not in _PROFILE_SORT_KEYS:
        raise ValueError(f"unknown sort key {sort!r} "
                         f"(use one of {tuple(_PROFILE_SORT_KEYS)})")
    column = _PROFILE_SORT_KEYS[sort]
    ordered = sorted(report.span_totals.items(),
                     key=lambda item: item[1][column], reverse=True)
    rows = ordered[:limit]
    omitted = len(ordered) - len(rows)
    wall = report.wall_s or sum(entry["self_s"]
                                for _, entry in report.span_totals.items())
    name_width = max([len(name) for name, _ in rows] + [len("span")])
    header = (f"{'span':<{name_width}}  {'count':>7}  {'total':>10}  "
              f"{'total %':>7}  {'self':>10}  {'self %':>7}")
    lines = [header, "-" * len(header)]
    for name, entry in rows:
        self_share = (entry["self_s"] / wall * 100.0) if wall else 0.0
        total_share = (entry["total_s"] / wall * 100.0) if wall else 0.0
        lines.append(
            f"{name:<{name_width}}  {entry['count']:>7d}  "
            f"{_fmt_seconds(entry['total_s']):>10}  {total_share:>6.1f}%  "
            f"{_fmt_seconds(entry['self_s']):>10}  {self_share:>6.1f}%")
    if omitted:
        lines.append(f"... {omitted} rows omitted (of {len(ordered)}; "
                     f"raise limit= to see them)")
    metrics = getattr(report, "metrics", None) or {}
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.extend(_histogram_lines(histograms))
    counters = metrics.get("counters", {})
    if counters:
        lines.extend(_counter_lines(counters))
    lines.append(f"wall time: {_fmt_seconds(wall)}")
    return "\n".join(lines)


def _counter_lines(counters: dict) -> list[str]:
    """The counter section appended to a profile table.

    Counters are always-on registry metrics (``linalg.factorizations``,
    ``hdl.compile.count``/``hdl.compile.cache_hits``, ...), so the caching
    behaviour of a run reads straight off its profile.
    """
    name_width = max([len(name) for name in counters] + [len("counter")])
    lines = ["", f"{'counter':<{name_width}}  {'value':>10}",
             "-" * (name_width + 12)]
    for name in sorted(counters):
        lines.append(f"{name:<{name_width}}  {counters[name]:>10g}")
    return lines


def _histogram_lines(histograms: dict) -> list[str]:
    """The histogram-digest section appended to a profile table."""
    name_width = max([len(name) for name in histograms] + [len("histogram")])
    header = (f"{'histogram':<{name_width}}  {'count':>7}  {'mean':>10}  "
              f"{'min':>10}  {'max':>10}")
    lines = ["", header, "-" * len(header)]

    def fmt(name: str, value: float) -> str:
        # Durations carry the _s suffix by convention; everything else
        # (batch sizes, iteration counts) prints as a plain number.
        return _fmt_seconds(value) if name.endswith("_s") else f"{value:g}"

    for name in sorted(histograms):
        digest = histograms[name]
        count = digest.get("count", 0)
        mean = digest.get("sum", 0.0) / count if count else 0.0
        lines.append(
            f"{name:<{name_width}}  {int(count):>7d}  {fmt(name, mean):>10}  "
            f"{fmt(name, digest.get('min', 0.0)):>10}  "
            f"{fmt(name, digest.get('max', 0.0)):>10}")
    return lines


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f} ms"
    return f"{value * 1e6:.1f} us"
