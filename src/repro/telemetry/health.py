"""Numerical health checks: condition estimates and singularity attribution.

PR 6 made the solver stack *observable*; this module makes it *diagnosable*.
Three ingredients, all cheap enough to run on demand:

- :func:`check_factorization` turns the 1-norm condition estimate a
  :class:`repro.linalg.Factorization` handle can compute (LAPACK ``gecon``
  for dense LU, a deterministic Hager/Higham iteration for SuperLU/CG) into
  a :class:`ConditionRecord`, feeds the ``linalg.condition_estimate``
  histogram, and emits a :class:`NumericalHealthWarning` when the estimate
  crosses the caller's limit.  Opt-in via ``SimulationOptions.health_check``
  so the default hot path never pays for it.
- :func:`attribute_residual` names the unknowns carrying the dominant
  residual terms when a Newton solve fails -- "which equation is broken".
- :func:`singular_diagnosis` inspects an assembled (not factorable) matrix
  for structurally empty or numerically negligible rows/columns and maps
  them back to unknown names -- "which stamp broke the matrix" (a floating
  node shows up as an empty column, a dangling current row as an empty row).

The module deliberately imports nothing from ``repro.linalg`` or
``repro.circuit`` (both import ``repro.telemetry``); callers hand in
factorization handles, matrices and label lists.
"""

from __future__ import annotations

import logging
import math
import warnings

import numpy as np

from . import registry
from .context import current_path

__all__ = ["NumericalHealthWarning", "ConditionRecord", "check_factorization",
           "attribute_residual", "singular_diagnosis"]

logger = logging.getLogger("repro.telemetry.health")


class NumericalHealthWarning(UserWarning):
    """A factorized system matrix is near-singular (condition over limit)."""


class ConditionRecord:
    """Outcome of one condition-estimate health check."""

    __slots__ = ("context", "backend", "size", "condition", "limit")

    def __init__(self, context: str, backend: str, size: int,
                 condition: float, limit: float) -> None:
        self.context = context
        self.backend = backend
        self.size = int(size)
        self.condition = float(condition)
        self.limit = float(limit)

    @property
    def near_singular(self) -> bool:
        """Whether the estimate crossed the limit (or is not finite)."""
        return not math.isfinite(self.condition) or self.condition >= self.limit

    def to_json(self) -> dict:
        return {"context": self.context, "backend": self.backend,
                "size": self.size, "condition": self.condition,
                "limit": self.limit, "near_singular": self.near_singular}

    def __repr__(self) -> str:
        flag = " NEAR-SINGULAR" if self.near_singular else ""
        return (f"ConditionRecord({self.context!r}, {self.backend}, n={self.size}, "
                f"cond~{self.condition:.3e}{flag})")


def check_factorization(factorization, limit: float = 1e12,
                        context: str = "", warn: bool = True) -> ConditionRecord:
    """Estimate the condition of a factorized matrix and judge it.

    Feeds the process-wide registry (``health.condition_checks`` counter,
    ``linalg.condition_estimate`` histogram, ``health.near_singular``
    counter) and -- when the estimate crosses ``limit`` -- logs a warning on
    the ``repro.telemetry.health`` logger and issues a
    :class:`NumericalHealthWarning` (suppress with ``warn=False``).
    An estimator failure is reported as an infinite condition rather than
    raised: a health check must never turn a working solve into a crash.
    """
    try:
        condition = float(factorization.condition_estimate())
    except Exception:  # estimator trouble == worst possible health
        condition = float("inf")
    record = ConditionRecord(context=context,
                             backend=getattr(factorization, "backend", "?"),
                             size=factorization.shape[0],
                             condition=condition, limit=limit)
    registry.inc("health.condition_checks")
    if math.isfinite(condition):
        registry.observe("linalg.condition_estimate", condition)
    if record.near_singular:
        registry.inc("health.near_singular")
        where = context or current_path() or "solve"
        message = (f"near-singular system matrix in {where}: condition "
                   f"estimate {condition:.3e} exceeds limit {limit:.1e} "
                   f"(backend={record.backend}, n={record.size})")
        logger.warning(message, extra={"span_path": current_path()})
        if warn:
            warnings.warn(message, NumericalHealthWarning, stacklevel=2)
    return record


def attribute_residual(labels, residual, top: int = 5):
    """Rank unknowns by absolute residual contribution, worst first.

    Returns ``[(label, value), ...]`` of the ``top`` largest ``|residual|``
    entries (non-finite entries rank above everything).  This is the
    "which equation is broken" signal attached to Newton failures: in MNA
    terms each label is a node's KCL equation (``v(node)``) or a device's
    branch equation, so the top entry names the stamp whose contribution
    the iteration could not balance.
    """
    residual = np.asarray(residual, dtype=float)
    labels = list(labels)
    if residual.shape[0] != len(labels):
        raise ValueError(f"residual has {residual.shape[0]} entries for "
                         f"{len(labels)} labels")
    magnitude = np.abs(residual)
    # Non-finite residual entries are the failure; surface them first.
    magnitude = np.where(np.isfinite(magnitude), magnitude, np.inf)
    order = np.argsort(-magnitude, kind="stable")[:max(0, int(top))]
    return [(labels[i], float(residual[i])) for i in order]


def singular_diagnosis(matrix, labels=None, rtol: float = 1e-12) -> dict:
    """Structural diagnosis of a singular or near-singular assembled matrix.

    Finds rows and columns whose 1-norm is zero or below ``rtol`` times the
    largest row/column norm, and maps them to unknown names when ``labels``
    are given.  An empty *column* means no equation constrains that unknown
    (floating node); an empty *row* means that equation constrains nothing
    (dangling branch relation).  Returns a dict with ``zero_rows``,
    ``zero_cols``, ``suspects`` (the union, worst candidates first) and a
    human-readable ``message``.
    """
    if hasattr(matrix, "toarray") and not isinstance(matrix, np.ndarray):
        dense = np.abs(np.asarray(matrix.todense()))
    else:
        dense = np.abs(np.asarray(matrix))
    n = dense.shape[0]
    names = [str(label) for label in labels] if labels is not None \
        else [f"unknown[{i}]" for i in range(n)]
    if len(names) != n:
        raise ValueError(f"matrix is {n}x{n} but {len(names)} labels given")
    row_norms = dense.sum(axis=1)
    col_norms = dense.sum(axis=0)
    scale = float(max(row_norms.max(initial=0.0), col_norms.max(initial=0.0)))
    threshold = rtol * scale
    zero_rows = [names[i] for i in range(n) if row_norms[i] <= threshold]
    zero_cols = [names[i] for i in range(n) if col_norms[i] <= threshold]
    suspects = list(dict.fromkeys(zero_cols + zero_rows))
    if suspects:
        message = ("no equation constrains " + ", ".join(zero_cols)
                   if zero_cols else
                   "equation(s) for " + ", ".join(zero_rows) + " constrain nothing")
    else:
        message = ("no structurally empty rows/columns; singularity is "
                   "numerical (e.g. cancelling stamps or a shorted loop)")
    return {"zero_rows": zero_rows, "zero_cols": zero_cols,
            "suspects": suspects, "message": message}
