"""Simulation-campaign engine: declarative sweeps on a parallel worker pool.

The paper characterizes a transducer "by iterating the variation of boundary
conditions" -- a many-point sweep workload.  This package turns that pattern
into a first-class subsystem:

* :mod:`repro.campaign.spec` -- declarative, serializable campaign specs
  (:class:`GridSweep`, seeded :class:`MonteCarlo`, :class:`CornerSet`,
  ``zip``/``product`` combinators),
* :mod:`repro.campaign.runner` -- a :class:`CampaignRunner` executing every
  scenario point on a serial or multiprocessing backend with deterministic
  result ordering and per-point error capture, plus the
  :class:`CircuitEvaluator` bridge to the op/dc/ac/transient analyses,
* :mod:`repro.campaign.cache` -- content-addressed result caching (SHA-256
  over evaluator identity + scenario point) in memory and on disk,
* :mod:`repro.campaign.results` -- the columnar :class:`CampaignResult`
  table with filtering, group-by and percentile/yield statistics.

Quickstart::

    from repro.campaign import CampaignRunner, GridSweep, MonteCarlo, Normal

    spec = GridSweep(displacement=[-1e-5, 0.0, 1e-5], voltage=[2.0, 5.0, 10.0])
    result = CampaignRunner(backend="pool").run(spec, my_evaluator)
    result.column("force")          # in spec order, NaN where a point failed

    mc = MonteCarlo({"gap": Normal(2e-6, 0.1e-6)}, samples=500, seed=7)
    yield_ok = CampaignRunner().run(mc, my_evaluator).yield_fraction(
        lambda row: row["pull_in_voltage"] > 30.0)
"""

from .cache import ResultCache, canonicalize, scenario_key
from .results import CampaignResult, CampaignRow
from .runner import (
    OPTIONS_PREFIX,
    CampaignRunner,
    CircuitEvaluator,
    FunctionEvaluator,
    evaluator_payload,
    split_point,
)
from .spec import (
    CampaignSpec,
    CornerSet,
    Discrete,
    Distribution,
    GridSweep,
    LogNormal,
    MonteCarlo,
    Normal,
    PointList,
    ProductSpec,
    Uniform,
    ZipSpec,
    spec_from_dict,
)

__all__ = [
    "CampaignSpec",
    "GridSweep",
    "MonteCarlo",
    "CornerSet",
    "PointList",
    "ZipSpec",
    "ProductSpec",
    "Distribution",
    "Uniform",
    "Normal",
    "LogNormal",
    "Discrete",
    "spec_from_dict",
    "CampaignRunner",
    "CircuitEvaluator",
    "FunctionEvaluator",
    "OPTIONS_PREFIX",
    "split_point",
    "evaluator_payload",
    "ResultCache",
    "scenario_key",
    "canonicalize",
    "CampaignResult",
    "CampaignRow",
]
