"""Campaign execution: map scenario points onto analysis runs.

The runner is pure execution policy -- *which* points exist is the spec's
business (:mod:`repro.campaign.spec`), *what* one point means is the
evaluator's.  An evaluator is any callable ``point_dict -> {name: float}``;
for the multiprocessing backend it must be picklable, which in practice
means a module-level function or an instance of a picklable class such as
:class:`CircuitEvaluator`.

Guarantees, regardless of backend:

* **deterministic ordering** -- the result rows come back in spec order,
  even though the pool completes chunks out of order,
* **per-point error capture** -- an exception inside one point becomes that
  row's ``error`` string instead of aborting the campaign (a pull-in fold
  in the middle of a Monte Carlo run must not kill the other 990 samples);
  under the batch backend a failing lane is retired from its vectorized
  slice and re-run serially, so it produces the *same* error row,
* **transparent caching** -- with a :class:`~repro.campaign.cache.ResultCache`
  attached, points whose content hash (evaluator identity + scenario point)
  is already stored are served without dispatching any work.

:class:`CircuitEvaluator` is the bridge to the simulator: it rebuilds a
netlist per point via a picklable factory function, applies ``options.*``
parameters onto :class:`~repro.circuit.analysis.options.SimulationOptions`
(so a campaign can select e.g. the sparse linear solver per point), runs an
``op`` / ``dc`` / ``ac`` / ``tran`` analysis and reduces the outcome to a
flat row of floats.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
import warnings
from typing import Callable, Mapping, Sequence

from .. import telemetry
from ..circuit.analysis.ac import ACAnalysis
from ..circuit.analysis.batch import (ParameterColumns, batch_supported,
                                      batched_dcsweeps,
                                      batched_operating_points)
from ..circuit.analysis.dcsweep import DCSweepAnalysis
from ..circuit.analysis.op import OperatingPointAnalysis
from ..circuit.analysis.options import SimulationOptions
from ..circuit.analysis.transient import TransientAnalysis
from ..errors import CampaignError, DeviceError, NetlistError
from ..linalg import metrics as linalg_metrics
from .cache import ResultCache, canonicalize, scenario_key
from .results import CampaignResult, CampaignRow
from .spec import CampaignSpec

__all__ = ["CampaignRunner", "CircuitEvaluator", "FunctionEvaluator",
           "OPTIONS_PREFIX", "split_point", "evaluator_payload"]

#: Scenario-point keys with this prefix override ``SimulationOptions`` fields.
OPTIONS_PREFIX = "options."


def split_point(point: Mapping[str, object]) -> tuple[dict, dict]:
    """Split a scenario point into model parameters and options overrides."""
    params, overrides = {}, {}
    for name, value in point.items():
        if name.startswith(OPTIONS_PREFIX):
            overrides[name[len(OPTIONS_PREFIX):]] = value
        else:
            params[name] = value
    return params, overrides


def _qualified_name(obj) -> str:
    """Stable identity string of a function/class for cache payloads."""
    module = getattr(obj, "__module__", type(obj).__module__)
    name = getattr(obj, "__qualname__", type(obj).__qualname__)
    return f"{module}.{name}"


def evaluator_payload(evaluator) -> dict:
    """The evaluator's cache-identity payload.

    Evaluators that can be re-parameterized (netlist recipe, analysis
    options, ...) expose ``cache_payload()``; plain functions fall back to
    their qualified name, which is enough as long as the function body's
    behaviour does not change between runs.
    """
    payload = getattr(evaluator, "cache_payload", None)
    if callable(payload):
        return payload()
    return {"evaluator": _qualified_name(evaluator)}


def _evaluate_one(evaluator, index: int, point: Mapping[str, object]
                  ) -> tuple[int, dict, str | None, dict | None]:
    """Run one point, converting any failure into an error string.

    A failure that carries a :class:`~repro.telemetry.FailureReport` (the
    solver raised with ``options.forensics`` on) additionally yields the
    report's flat picklable :meth:`~repro.telemetry.FailureReport.summary`,
    so campaign rows can say *which unknown* broke a point, not only that
    it broke.
    """
    try:
        outputs = evaluator(dict(point))
        if not isinstance(outputs, Mapping):
            raise CampaignError(
                f"evaluator returned {type(outputs).__name__}, expected a "
                "mapping of output name to float")
        row = {str(name): float(value) for name, value in outputs.items()}
        return index, row, None, None
    except Exception as exc:  # noqa: BLE001 -- per-point isolation is the point
        forensics = None
        report = getattr(exc, "report", None)
        if report is not None:
            try:
                forensics = report.summary()
            except Exception:
                forensics = None
        return index, {}, f"{type(exc).__name__}: {exc}", forensics


def _overrides_signature(point: Mapping[str, object]) -> str:
    """Stable grouping key of a point's ``options.*`` overrides."""
    _, overrides = split_point(point)
    return repr(canonicalize(overrides))


def _batch_slices(items: Sequence[tuple[int, dict]], batch_size: int
                  ) -> list[list[tuple[int, dict]]]:
    """Split (index, point) pairs into batchable slices.

    Points inside one slice share their ``options.*`` overrides (a batch
    runs under one :class:`SimulationOptions`) and there are at most
    ``batch_size`` of them.
    """
    groups: dict[str, list[tuple[int, dict]]] = {}
    for item in items:
        groups.setdefault(_overrides_signature(item[1]), []).append(item)
    return [group[start:start + batch_size]
            for group in groups.values()
            for start in range(0, len(group), batch_size)]


def _evaluate_batch_items(evaluator, items: Sequence[tuple[int, dict]]
                          ) -> list[tuple[int, dict, str | None, dict | None]]:
    """Evaluate one same-overrides slice through the evaluator's batch path.

    Lanes the batch could not finish (``None`` rows, or a whole-slice
    ``None``) are re-dispatched through :func:`_evaluate_one`, so they keep
    the exact serial semantics -- including error strings and forensics for
    points that genuinely fail.
    """
    lanes = None
    if len(items) > 1:
        lanes = evaluator.evaluate_batch([point for _, point in items])
    if lanes is None:
        return [_evaluate_one(evaluator, index, point)
                for index, point in items]
    results = []
    for (index, point), row in zip(items, lanes):
        if row is None:
            results.append(_evaluate_one(evaluator, index, point))
        else:
            results.append(
                (index, {str(name): float(value)
                         for name, value in row.items()}, None, None))
    return results


#: Behavioral-compiler registry counters shipped alongside the linalg cache
#: counters in every chunk's solver-stats delta (``solver_stats`` key ->
#: :mod:`repro.telemetry.registry` counter name).  They ride the same
#: always-on delta/merge path, so kernel-cache efficacy inside pool workers
#: is visible on the aggregated :class:`~repro.campaign.results
#: .CampaignResult` even with telemetry off.
_HDL_COUNTERS = (("hdl_compiles", "hdl.compile.count"),
                 ("hdl_compile_cache_hits", "hdl.compile.cache_hits"))


def _merge_solver_stats(total: dict[str, int], delta: dict[str, int]) -> None:
    """Fold one chunk's counter delta (linalg + hdl) into the running total."""
    linalg_metrics.merge_counters(total, delta)
    for key, _ in _HDL_COUNTERS:
        total[key] = total.get(key, 0) + int(delta.get(key, 0))


def _evaluate_chunk(task: tuple, on_point=None
                    ) -> tuple[list[tuple[int, dict, str | None, dict | None]],
                               dict[str, int], dict | None, dict]:
    """Worker entry point: evaluate one chunk of (index, point) pairs.

    ``task`` is ``(evaluator, items, telemetry_mode)`` with an optional
    fourth ``batch_size`` element: when present, the chunk is evaluated in
    same-overrides slices of at most that many points through the
    evaluator's ``evaluate_batch`` (one vectorized solve per slice) instead
    of point by point.

    Besides the per-point results the chunk ships the *delta* of the
    worker's process-wide :mod:`repro.linalg.metrics` counters back to the
    parent, so factorization/pattern-cache efficacy inside pool workers
    becomes visible on the aggregated :class:`CampaignResult`.  With a
    telemetry mode requested, the chunk additionally runs inside an
    aggregate-only :func:`repro.telemetry.session` (span trees folded into
    per-name totals -- bounded memory for arbitrarily long campaigns) and
    ships the session's picklable payload back the same way.

    Every chunk also returns a worker *heartbeat* -- ``{"pid", "points",
    "wall_s"}`` -- which the parent folds into its progress events, so a
    watcher sees which worker delivered and how long the chunk took.
    ``on_point`` (serial backend only; pools cannot pickle a callback) is
    invoked with each finished point index for per-point progress.
    """
    evaluator, items, telemetry_mode, *rest = task
    batch_size = rest[0] if rest else None
    t0 = time.perf_counter()
    before = linalg_metrics.snapshot()
    hdl_before = {key: telemetry.registry.counter_value(name)
                  for key, name in _HDL_COUNTERS}

    def run_items():
        results = []
        if batch_size is not None:
            for slice_items in _batch_slices(items, batch_size):
                results.extend(_evaluate_batch_items(evaluator, slice_items))
                if on_point is not None:
                    for index, _ in slice_items:
                        on_point(index)
            return results
        for index, point in items:
            results.append(_evaluate_one(evaluator, index, point))
            if on_point is not None:
                on_point(index)
        return results

    if telemetry_mode == "off":
        results = run_items()
        payload = None
    else:
        with telemetry.session(mode=telemetry_mode, keep_spans=False) as sess:
            results = run_items()
        payload = sess.report.aggregate_payload()
    heartbeat = {"pid": os.getpid(), "points": len(items),
                 "wall_s": time.perf_counter() - t0}
    stats_delta = linalg_metrics.counter_delta(before)
    stats_delta.update(
        {key: int(telemetry.registry.counter_value(name) - hdl_before[key])
         for key, name in _HDL_COUNTERS})
    return results, stats_delta, payload, heartbeat


class CampaignRunner:
    """Execute a campaign spec against an evaluator.

    Parameters
    ----------
    backend:
        ``"serial"`` (in-process loop), ``"pool"`` (``multiprocessing``
        process pool with chunked dispatch), ``"batch"`` (one vectorized
        solve per slice of points through the evaluator's
        ``evaluate_batch``; with ``processes > 1`` the slices are spread
        over a pool, so each worker solves whole batches) or ``"auto"``
        (batch when the evaluator supports it, otherwise pool on
        multi-core hosts, otherwise serial).
    processes:
        Worker count for the pool backend (default: ``os.cpu_count()``);
        for the batch backend the default is 1 (in-process batches).
    chunk_size:
        Points per dispatched task; the default splits the pending work
        into about four chunks per worker to balance load against
        serialization overhead.
    batch_size:
        Batch/auto backends: maximum number of points stacked into one
        vectorized solve (default 64).  Larger batches amortize more
        Python overhead per solve but hold ``B`` dense Jacobians in
        memory at once and make lockstep iteration waste grow when
        convergence behaviour varies wildly across the batch.
    cache:
        Optional :class:`ResultCache`; cached points are not dispatched.
    telemetry:
        ``"off"`` (default), ``"summary"`` or ``"full"``: run every chunk
        inside an aggregate-only telemetry session and merge the shipped
        span/metric payloads into ``CampaignResult.telemetry``, making
        :meth:`CampaignResult.solver_summary` a full campaign profile.
        (Chunks never keep span *trees* -- pool payloads stay bounded -- so
        ``"full"`` here only controls detail-span collection inside the
        workers.)
    stall_timeout:
        Pool backend only: seconds the parent waits for *any* chunk to
        complete before emitting a :class:`~repro.telemetry.StallWarning`
        (a structured warning naming the silent interval and the progress
        so far -- the run itself keeps waiting).  ``None`` (default) never
        times out.
    stall_abandon:
        With ``stall_timeout`` set: instead of warning and waiting forever,
        terminate the pool at the first stall and mark every undelivered
        point as a failed row (``error`` starting with ``"StallError"``),
        so a single hung worker cannot hang the whole campaign.
    ledger:
        Optional :class:`~repro.telemetry.ledger.RunLedger` (or a directory
        path, wrapped in one): every :meth:`run` appends a
        :class:`~repro.telemetry.ledger.RunRecord` of the campaign's merged
        telemetry profile -- span totals, metric deltas, summed worker wall
        time -- fingerprinted by evaluator identity and spec shape, so runs
        of the same campaign diff across commits.  Recording needs a
        profile: a runner constructed with ``telemetry="off"`` is upgraded
        to ``"summary"``.  The appended record's ID lands on the result as
        ``CampaignResult.run_record_id``; because workers ship
        deterministic aggregates, serial and pool executions of one
        campaign produce records whose counter/span-count diff is zero.
    """

    BACKENDS = ("serial", "pool", "batch", "auto")

    def __init__(self, backend: str = "serial", processes: int | None = None,
                 chunk_size: int | None = None,
                 batch_size: int = 64,
                 cache: ResultCache | None = None,
                 telemetry: str = "off",
                 stall_timeout: float | None = None,
                 stall_abandon: bool = False,
                 ledger=None) -> None:
        if backend not in self.BACKENDS:
            raise CampaignError(
                f"unknown backend {backend!r} (use one of {self.BACKENDS})")
        if processes is not None and processes < 1:
            raise CampaignError("processes must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise CampaignError("chunk_size must be at least 1")
        if batch_size < 1:
            raise CampaignError("batch_size must be at least 1")
        if telemetry not in ("off", "summary", "full"):
            raise CampaignError(
                f"unknown telemetry level {telemetry!r} "
                "(use 'off', 'summary' or 'full')")
        if stall_timeout is not None and stall_timeout <= 0.0:
            raise CampaignError("stall_timeout must be positive")
        if stall_abandon and stall_timeout is None:
            raise CampaignError("stall_abandon requires a stall_timeout")
        if ledger is not None and not hasattr(ledger, "append"):
            from ..telemetry.ledger import RunLedger
            ledger = RunLedger(ledger)
        if ledger is not None and telemetry == "off":
            # A record without a profile is empty; summary mode is the
            # cheapest level that still ships span totals and counters.
            telemetry = "summary"
        self.backend = backend
        self.processes = processes
        self.chunk_size = chunk_size
        self.batch_size = int(batch_size)
        self.cache = cache
        self.telemetry = telemetry
        self.ledger = ledger
        self.stall_timeout = None if stall_timeout is None else float(stall_timeout)
        self.stall_abandon = bool(stall_abandon)

    # ------------------------------------------------------------------ run
    def run(self, spec: CampaignSpec, evaluator) -> CampaignResult:
        """Evaluate every point of ``spec`` and return the ordered result."""
        points = spec.points()
        if not points:
            raise CampaignError("the campaign spec produced no points")
        payload = evaluator_payload(evaluator) if self.cache is not None else None

        rows: list[CampaignRow | None] = [None] * len(points)
        pending: list[tuple[int, dict]] = []
        keys: list[str | None] = [None] * len(points)
        for index, point in enumerate(points):
            if self.cache is not None:
                key = scenario_key(payload, canonicalize(point))
                keys[index] = key
                cached = self.cache.get(key)
                if cached is not None:
                    rows[index] = CampaignRow(index, point, cached,
                                              error=None, from_cache=True)
                    continue
            pending.append((index, point))

        dispatched, solver_stats, profile = self._dispatch(evaluator, pending)
        for index, outputs, error, forensics in dispatched:
            point = points[index]
            rows[index] = CampaignRow(index, point, outputs, error=error,
                                      forensics=forensics)
            if self.cache is not None and error is None:
                self.cache.put(keys[index], outputs)

        result = CampaignResult([row for row in rows if row is not None],
                                param_names=spec.names,
                                solver_stats=solver_stats,
                                telemetry=profile)
        if self.ledger is not None and profile is not None:
            result.run_record_id = self._record_run(spec, evaluator, points,
                                                    profile)
        return result

    def _record_run(self, spec: CampaignSpec, evaluator,
                    points: Sequence[Mapping[str, object]],
                    profile: Mapping) -> str:
        """Append this campaign's profile to the attached run ledger."""
        from ..telemetry.ledger import RunRecord
        fingerprint = scenario_key(evaluator_payload(evaluator),
                                   {"params": list(spec.names),
                                    "points": len(points)})
        record = RunRecord.from_report(profile, label="campaign",
                                       options_fingerprint=fingerprint)
        return self.ledger.append(record)

    # ------------------------------------------------------------- dispatch
    def _resolve_backend(self, evaluator, n_points: int) -> str:
        """Pick the execution strategy: serial, pool, batch or batch+pool."""
        if self.backend in ("serial", "pool"):
            return self.backend
        capable = callable(getattr(evaluator, "evaluate_batch", None))
        probe = getattr(evaluator, "batch_capable", None)
        if capable and callable(probe):
            capable = bool(probe())
        if self.backend == "batch":
            if not capable:
                raise CampaignError(
                    "backend 'batch' needs a batch-capable evaluator "
                    "(e.g. CircuitEvaluator(param_map=...) running an "
                    "'op' or 'dc' analysis)")
            processes = self.processes or 1
            return "batch-pool" if processes > 1 \
                and n_points > self.batch_size else "batch"
        # auto: vectorize when possible, otherwise parallelize processes.
        cpus = self.processes or os.cpu_count() or 1
        if capable:
            return "batch-pool" if cpus > 1 \
                and n_points > 2 * self.batch_size else "batch"
        return "pool" if cpus > 1 and n_points > 1 else "serial"

    def _dispatch(self, evaluator, pending: Sequence[tuple[int, dict]]
                  ) -> tuple[list[tuple[int, dict, str | None, dict | None]],
                             dict[str, int], dict | None]:
        solver_stats = {name: 0 for name in linalg_metrics.COUNTER_NAMES}
        solver_stats.update({key: 0 for key, _ in _HDL_COUNTERS})
        if not pending:
            return [], solver_stats, None
        backend = self._resolve_backend(evaluator, len(pending))
        track = telemetry.progress.tracker("campaign", total=len(pending),
                                           unit="points")
        if backend in ("serial", "batch"):
            done = 0

            def advance(_index: int) -> None:
                nonlocal done
                done += 1
                track.update(done)

            batch_size = self.batch_size if backend == "batch" else None
            results, delta, payload, _ = _evaluate_chunk(
                (evaluator, list(pending), self.telemetry, batch_size),
                on_point=advance)
            _merge_solver_stats(solver_stats, delta)
            track.finish(len(pending))
            return results, solver_stats, self._merge_profiles([payload])
        processes = self.processes or os.cpu_count() or 1
        processes = min(processes, len(pending))
        if backend == "batch-pool":
            # Compose vectorization with process parallelism: every pool
            # task is one same-overrides batch slice, solved vectorized
            # inside its worker.
            chunks = [(evaluator, slice_items, self.telemetry, self.batch_size)
                      for slice_items in _batch_slices(pending, self.batch_size)]
            processes = min(processes, len(chunks))
        else:
            chunk = self.chunk_size or max(1, -(-len(pending) // (4 * processes)))
            chunks = [(evaluator, pending[i:i + chunk], self.telemetry)
                      for i in range(0, len(pending), chunk)]
        completed = []
        done_points = 0
        stalled = False
        with multiprocessing.Pool(processes) as pool:
            # Unordered completion + a bounded wait per delivery: the parent
            # notices a silent pool instead of blocking in pool.map forever.
            # Results carry their spec indices, so order needs no barrier.
            iterator = pool.imap_unordered(_evaluate_chunk, chunks)
            for _ in range(len(chunks)):
                while True:
                    try:
                        batch = iterator.next(timeout=self.stall_timeout)
                        break
                    except multiprocessing.TimeoutError:
                        telemetry.registry.inc("campaign.stalls")
                        action = "abandoning undelivered points" \
                            if self.stall_abandon else "still waiting"
                        warnings.warn(
                            f"campaign pool delivered nothing for "
                            f"{self.stall_timeout:g}s ({done_points}/"
                            f"{len(pending)} points done); {action}",
                            telemetry.progress.StallWarning, stacklevel=3)
                        if self.stall_abandon:
                            stalled = True
                            break
                if stalled:
                    pool.terminate()
                    break
                completed.append(batch)
                _, delta, _, heartbeat = batch
                _merge_solver_stats(solver_stats, delta)
                done_points += heartbeat["points"]
                track.update(done_points, **heartbeat)
        results = [item for batch, _, _, _ in completed for item in batch]
        if stalled:
            delivered = {index for index, _, _, _ in results}
            for index, _point in pending:
                if index not in delivered:
                    results.append((
                        index, {},
                        f"StallError: no result within {self.stall_timeout:g}s; "
                        "worker abandoned", None))
        track.finish(done_points, message="stalled" if stalled else "")
        return results, solver_stats, \
            self._merge_profiles([payload for _, _, payload, _ in completed])

    def _merge_profiles(self, payloads: Sequence[dict | None]) -> dict | None:
        """Fold the chunks' telemetry payloads into one campaign profile."""
        if self.telemetry == "off":
            return None
        profile = {"mode": self.telemetry, "span_totals": {}, "metrics": {},
                   "wall_s": 0.0}
        for payload in payloads:
            if payload is None:
                continue
            telemetry.merge_span_totals(profile["span_totals"],
                                        payload["span_totals"])
            telemetry.registry.merge(profile["metrics"], payload["metrics"])
            # Summed worker wall time: CPU-seconds of evaluation, not the
            # campaign's elapsed time (chunks overlap under the pool).
            profile["wall_s"] += payload["wall_s"]
        return profile


# --------------------------------------------------------------------------- #
# evaluators                                                                  #
# --------------------------------------------------------------------------- #

class FunctionEvaluator:
    """Bind a picklable module-level function and a fixed config payload.

    ``fn(config, params, options)`` receives the static config dict, the
    point's model parameters and the per-point ``SimulationOptions`` and
    returns a mapping of output name to float.
    """

    def __init__(self, fn: Callable, config: Mapping[str, object] | None = None,
                 options: SimulationOptions | None = None) -> None:
        self.fn = fn
        self.config = dict(config or {})
        self.options = options

    def __call__(self, point: Mapping[str, object]) -> dict:
        params, overrides = split_point(point)
        options = (self.options or SimulationOptions()).with_(
            **_coerced_overrides(overrides))
        return dict(self.fn(self.config, params, options))

    def cache_payload(self) -> dict:
        return {
            "evaluator": _qualified_name(self.fn),
            "config": canonicalize(self.config),
            "options": _options_payload(self.options),
        }


class CircuitEvaluator:
    """Evaluate points as circuit analyses over a rebuilt netlist.

    Parameters
    ----------
    build:
        Module-level function ``params_dict -> Circuit``.  Rebuilding the
        netlist per point keeps the evaluator picklable and stateless.
    analysis:
        ``"op"``, ``"dc"``, ``"ac"`` or ``"tran"``.
    analysis_args:
        Constructor arguments of the analysis (e.g. ``source_name`` and
        ``values`` for a DC sweep, ``t_stop`` for a transient).
    outputs:
        For ``"op"``: the signal names to keep (default: every signal).
    reduce:
        Module-level function ``(result, params) -> {name: float}``;
        required for ``dc`` / ``ac`` / ``tran`` whose results are not flat
        scalars.  ``params`` is the point's model-parameter dict, so the
        reduction can depend on the scenario (e.g. a per-sample gap).
    options:
        Baseline simulation options; per-point ``options.*`` parameters are
        applied on top, so a campaign axis can flip e.g.
        ``options.linear_solver`` between dense and sparse.
    param_map:
        Optional mapping enabling the *batched* execution path for ``op``
        and ``dc`` analyses: scenario parameter name -> ``"DEVICE.param"``
        target (a tunable device parameter), or ``("DEVICE.param", fn)``
        with a module-level transform applied to the scenario value first.
        With every varying scenario parameter mapped this way, the circuit
        is built once and a whole slice of points becomes one stacked
        solve (see :mod:`repro.circuit.analysis.batch`); without it the
        evaluator only runs point by point.  Mapped values are applied
        through ``set_parameter`` (the sensitivity-seeding path), which
        skips constructor validation -- feed it physically valid values,
        as out-of-range ones (say a negative resistance) only surface as
        the serial build error when the stacked solve happens to fail.
    """

    ANALYSES = ("op", "dc", "ac", "tran")

    def __init__(self, build: Callable, analysis: str = "op",
                 analysis_args: Mapping[str, object] | None = None,
                 outputs: Sequence[str] | None = None,
                 reduce: Callable | None = None,
                 options: SimulationOptions | None = None,
                 param_map: Mapping[str, object] | None = None) -> None:
        if analysis not in self.ANALYSES:
            raise CampaignError(
                f"unknown analysis {analysis!r} (use one of {self.ANALYSES})")
        if analysis != "op" and reduce is None:
            raise CampaignError(
                f"analysis {analysis!r} returns waveforms; a module-level "
                "'reduce' function is required to produce scalar outputs")
        self.build = build
        self.analysis = analysis
        self.analysis_args = dict(analysis_args or {})
        self.outputs = None if outputs is None else tuple(outputs)
        self.reduce = reduce
        self.options = options
        self.param_map = None if param_map is None else dict(param_map)
        for name, target in (self.param_map or {}).items():
            if isinstance(target, (tuple, list)):
                if len(target) != 2 or not callable(target[1]):
                    raise CampaignError(
                        f"param_map[{name!r}] must be 'DEVICE.param' or "
                        "('DEVICE.param', transform)")
                target = target[0]
            if "." not in str(target):
                raise CampaignError(
                    f"param_map[{name!r}] target {target!r} must be of the "
                    "form 'DEVICE.param'")

    def __call__(self, point: Mapping[str, object]) -> dict:
        params, overrides = split_point(point)
        options = (self.options or SimulationOptions()).with_(
            **_coerced_overrides(overrides))
        circuit = self.build(params)
        if self.analysis == "op":
            op = OperatingPointAnalysis(circuit, options).run(**self.analysis_args)
            if self.reduce is not None:
                return dict(self.reduce(op, params))
            names = self.outputs if self.outputs is not None else op.signals()
            return {name: float(op[name]) for name in names}
        if self.analysis == "dc":
            result = DCSweepAnalysis(circuit, options=options,
                                     **self.analysis_args).run()
        elif self.analysis == "ac":
            result = ACAnalysis(circuit, options=options,
                                **self.analysis_args).run()
        else:
            result = TransientAnalysis(circuit, options=options,
                                       **self.analysis_args).run()
        return dict(self.reduce(result, params))

    # ------------------------------------------------------------- batching
    def batch_capable(self) -> bool:
        """Whether this evaluator can stack points into vectorized solves."""
        return bool(self.param_map) and self.analysis in ("op", "dc")

    def _parameter_columns(self, circuit, param_sets: Sequence[Mapping]
                           ) -> "ParameterColumns | None":
        assignments = []
        for name, target in self.param_map.items():
            if name not in param_sets[0]:
                # The spec does not sweep this mapped parameter; the circuit
                # built from the slice's params already carries its default.
                continue
            transform = None
            if isinstance(target, (tuple, list)):
                target, transform = target
            device_name, _, device_param = str(target).partition(".")
            values = [point_params[name] for point_params in param_sets]
            if transform is not None:
                values = [transform(value) for value in values]
            assignments.append((device_name, device_param, values))
        if not assignments:
            return None
        try:
            return ParameterColumns(circuit, assignments)
        except (DeviceError, NetlistError) as exc:
            raise CampaignError(f"invalid param_map: {exc}") from exc

    def evaluate_batch(self, points: Sequence[Mapping[str, object]]
                       ) -> list[dict | None] | None:
        """Evaluate a same-overrides slice of points as one stacked solve.

        Returns one outputs dict per point, with ``None`` for lanes the
        batch could not finish (non-convergence, or a per-lane reduction
        error) -- the runner re-runs exactly those through the serial path,
        reproducing the serial error rows.  Returns ``None`` outright when
        this slice cannot be batched at all (unbatchable options, unmapped
        varying parameters, ...); a misconfigured ``param_map`` raises
        :class:`CampaignError` instead of silently degrading.
        """
        if not self.batch_capable():
            return None
        split = [split_point(dict(point)) for point in points]
        params0, overrides0 = split[0]
        if any(overrides != overrides0 for _, overrides in split[1:]):
            return None
        options = (self.options or SimulationOptions()).with_(
            **_coerced_overrides(overrides0))
        if not batch_supported(options):
            return None
        # Unmapped parameters may steer the netlist factory, so they must
        # be constant across the slice (the circuit is built only once).
        unmapped = set(params0) - set(self.param_map)
        for params, _ in split:
            if set(params) != set(params0):
                return None
            if any(params[name] != params0[name] for name in unmapped):
                return None
        circuit = self.build(dict(params0))
        columns = self._parameter_columns(
            circuit, [params for params, _ in split])
        if columns is None:
            return None
        if self.analysis == "op":
            lanes = batched_operating_points(circuit, options, columns)
        else:
            args = dict(self.analysis_args)
            try:
                source_name = args.pop("source_name")
                values = args.pop("values")
            except KeyError:
                return None
            continue_on_failure = bool(args.pop("continue_on_failure", False))
            if args:
                return None
            lanes = batched_dcsweeps(circuit, str(source_name), values,
                                     options, columns,
                                     continue_on_failure=continue_on_failure)
        rows: list[dict | None] = []
        for lane, result in enumerate(lanes):
            if result is None:
                rows.append(None)
                continue
            params = split[lane][0]
            try:
                if self.reduce is not None:
                    rows.append(dict(self.reduce(result, params)))
                else:
                    names = self.outputs if self.outputs is not None \
                        else result.signals()
                    rows.append({name: float(result[name]) for name in names})
            except Exception:  # noqa: BLE001 -- serial rerun recreates the error
                rows.append(None)
        return rows

    def cache_payload(self) -> dict:
        payload = {
            "evaluator": _qualified_name(self),
            "build": _qualified_name(self.build),
            "analysis": self.analysis,
            "analysis_args": canonicalize(self.analysis_args),
            "outputs": list(self.outputs) if self.outputs is not None else None,
            "reduce": None if self.reduce is None else _qualified_name(self.reduce),
            "options": _options_payload(self.options),
        }
        if self.param_map:
            payload["param_map"] = {
                name: [target[0], _qualified_name(target[1])]
                if isinstance(target, (tuple, list)) else str(target)
                for name, target in sorted(self.param_map.items())}
        return payload


def _coerced_overrides(overrides: Mapping[str, object]) -> dict:
    """Coerce ``options.*`` point values onto SimulationOptions field types."""
    fields = {f.name: f.type for f in dataclasses.fields(SimulationOptions)}
    coerced: dict[str, object] = {}
    for name, value in overrides.items():
        if name not in fields:
            raise CampaignError(
                f"unknown simulation option {OPTIONS_PREFIX}{name}")
        if isinstance(value, str):
            coerced[name] = value
        elif "bool" in str(fields[name]):
            coerced[name] = bool(value)
        elif "int" in str(fields[name]):
            coerced[name] = int(value)
        else:
            coerced[name] = float(value)
    return coerced


def _options_payload(options: SimulationOptions | None) -> dict:
    return dataclasses.asdict(options or SimulationOptions())
