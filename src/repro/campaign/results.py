"""Columnar campaign results with filtering, grouping and yield statistics.

:class:`CampaignResult` is the table every campaign run returns: one row per
scenario point (in spec order, regardless of execution backend), one column
per swept parameter and per evaluator output.  Failed points keep their row
-- parameters intact, outputs NaN, the error message in ``error(i)`` -- so a
Monte Carlo yield study can distinguish "converged but out of spec" from
"no stable solution" (e.g. beyond the pull-in fold).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

import numpy as np

from ..errors import CampaignError

__all__ = ["CampaignRow", "CampaignResult"]


class CampaignRow(Mapping[str, object]):
    """One scenario point: parameters, outputs, and the failure state.

    ``forensics`` carries the flat
    :meth:`~repro.telemetry.FailureReport.summary` dict of the solver
    failure that killed the point (offending unknown, residual norm,
    condition estimate, ...) when the evaluator ran with
    ``options.forensics`` on -- ``None`` for successful rows and for
    failures that produced no report.
    """

    __slots__ = ("index", "params", "outputs", "error", "from_cache",
                 "forensics")

    def __init__(self, index: int, params: Mapping[str, object],
                 outputs: Mapping[str, object], error: str | None = None,
                 from_cache: bool = False,
                 forensics: Mapping[str, object] | None = None) -> None:
        self.index = int(index)
        self.params = dict(params)
        self.outputs = dict(outputs)
        self.error = error
        self.from_cache = bool(from_cache)
        self.forensics = dict(forensics) if forensics else None

    @property
    def ok(self) -> bool:
        """True when the point evaluated without error."""
        return self.error is None

    def __getitem__(self, key: str):
        if key in self.outputs:
            return self.outputs[key]
        if key in self.params:
            return self.params[key]
        known = ", ".join(sorted({*self.params, *self.outputs}))
        raise KeyError(f"unknown column {key!r}; available: {known}")

    def __iter__(self) -> Iterator[str]:
        yield from self.params
        yield from self.outputs

    def __len__(self) -> int:
        return len(self.params) + len(self.outputs)

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"error={self.error!r}"
        return f"CampaignRow(#{self.index}, {state})"


class CampaignResult:
    """Ordered table of campaign rows with columnar accessors.

    Parameters
    ----------
    rows:
        The per-point rows in spec order.
    param_names:
        Column order of the swept parameters (defaults to first-row order).
    solver_stats:
        Aggregated :mod:`repro.linalg.metrics` counter deltas of the work
        actually dispatched for this campaign (factorizations,
        factorization-cache hits/misses/evictions, sparsity-pattern
        rebuilds/reuses, transposed solves) -- summed over serial execution
        and every pool worker chunk.  Empty for derived results
        (``filter``/``group_by``), whose work already appears in the
        parent's counters.
    telemetry:
        Merged telemetry profile of the dispatched work when the runner was
        created with ``telemetry != "off"``: a dict with ``mode``,
        ``span_totals`` (per-span-name count/total/self aggregates over
        every worker), ``metrics`` (merged registry deltas) and ``wall_s``
        (summed worker evaluation time).  ``None`` otherwise and for
        derived results.
    """

    def __init__(self, rows: Iterable[CampaignRow],
                 param_names: Iterable[str] | None = None,
                 solver_stats: Mapping[str, int] | None = None,
                 telemetry: Mapping | None = None) -> None:
        self.rows = list(rows)
        self.solver_stats: dict[str, int] = \
            {str(k): int(v) for k, v in (solver_stats or {}).items()}
        self.telemetry = dict(telemetry) if telemetry else None
        #: ID of the RunRecord appended for this run, when the runner had a
        #: ledger attached (set post-construction by the runner).
        self.run_record_id: str | None = None
        if param_names is not None:
            self.param_names = tuple(param_names)
        elif self.rows:
            self.param_names = tuple(self.rows[0].params)
        else:
            self.param_names = ()
        outputs: dict[str, None] = {}
        for row in self.rows:
            for name in row.outputs:
                outputs.setdefault(name)
        self.output_names = tuple(outputs)

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[CampaignRow]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> CampaignRow:
        return self.rows[index]

    def columns(self) -> tuple[str, ...]:
        """All column names, parameters first."""
        return (*self.param_names, *self.output_names)

    @property
    def ok_mask(self) -> np.ndarray:
        """Boolean mask of rows that evaluated without error."""
        return np.array([row.ok for row in self.rows], dtype=bool)

    @property
    def num_failures(self) -> int:
        """Number of rows that failed to evaluate."""
        return sum(not row.ok for row in self.rows)

    @property
    def num_cached(self) -> int:
        """Number of rows served from the result cache."""
        return sum(row.from_cache for row in self.rows)

    def failures(self) -> list[CampaignRow]:
        """The failed rows (parameters intact, error message set)."""
        return [row for row in self.rows if not row.ok]

    def forensic_summaries(self) -> list[dict]:
        """Flat forensic digests of the failed rows that captured one.

        Each entry is the row's :attr:`CampaignRow.forensics` dict plus the
        row ``index`` -- empty unless the evaluator ran with
        ``options.forensics`` enabled.
        """
        return [{"index": row.index, **row.forensics}
                for row in self.rows if row.forensics]

    def error(self, index: int) -> str | None:
        """Error message of row ``index`` (None when it succeeded)."""
        return self.rows[index].error

    # ----------------------------------------------------------------- columns
    def column(self, name: str) -> np.ndarray:
        """One column over all rows; missing/failed outputs become NaN.

        Numeric columns come back as float arrays; non-numeric parameter
        columns (corner labels, device variants) as object arrays.
        """
        if not self.rows:
            return np.array([], dtype=float)
        if name in self.param_names:
            values = [row.params.get(name) for row in self.rows]
        elif name in self.output_names:
            values = [row.outputs.get(name, np.nan) for row in self.rows]
        else:
            known = ", ".join(self.columns())
            raise CampaignError(f"unknown column {name!r}; available: {known}")
        try:
            return np.array([np.nan if v is None else float(v) for v in values],
                            dtype=float)
        except (TypeError, ValueError):
            return np.array(values, dtype=object)

    def ok_column(self, name: str) -> np.ndarray:
        """A column restricted to rows that evaluated successfully."""
        return self.column(name)[self.ok_mask]

    # --------------------------------------------------------------- filtering
    def filter(self, predicate: Callable[[CampaignRow], bool] | None = None,
               **param_equals) -> "CampaignResult":
        """Rows satisfying a predicate and/or exact parameter values."""
        selected = []
        for row in self.rows:
            if param_equals and any(row.params.get(k) != v
                                    for k, v in param_equals.items()):
                continue
            if predicate is not None and not predicate(row):
                continue
            selected.append(row)
        return CampaignResult(selected, self.param_names)

    def group_by(self, name: str) -> dict:
        """Sub-results keyed by the distinct values of one column.

        Grouping by an output column skips failed rows (they have no value
        to group under); grouping by a parameter column keeps every row.
        """
        if name not in self.columns():
            raise CampaignError(f"unknown column {name!r}")
        is_param = name in self.param_names
        groups: dict[object, list[CampaignRow]] = {}
        for row in self.rows:
            if is_param:
                groups.setdefault(row.params[name], []).append(row)
            elif name in row.outputs:
                groups.setdefault(row.outputs[name], []).append(row)
        return {key: CampaignResult(rows, self.param_names)
                for key, rows in groups.items()}

    # -------------------------------------------------------------- statistics
    def _ok_values(self, name: str) -> np.ndarray:
        values = self.ok_column(name).astype(float)
        values = values[np.isfinite(values)]
        if values.size == 0:
            raise CampaignError(
                f"no successful finite values of {name!r} to aggregate")
        return values

    def mean(self, name: str) -> float:
        """Mean of a column over successful rows."""
        return float(np.mean(self._ok_values(name)))

    def std(self, name: str) -> float:
        """Standard deviation of a column over successful rows."""
        return float(np.std(self._ok_values(name)))

    def minimum(self, name: str) -> float:
        """Minimum of a column over successful rows."""
        return float(np.min(self._ok_values(name)))

    def maximum(self, name: str) -> float:
        """Maximum of a column over successful rows."""
        return float(np.max(self._ok_values(name)))

    def percentile(self, name: str, q: float | Iterable[float]):
        """Percentile(s) of a column over successful rows."""
        result = np.percentile(self._ok_values(name), q)
        return float(result) if np.ndim(result) == 0 else np.asarray(result)

    def yield_fraction(self, predicate: Callable[[CampaignRow], bool] | None = None
                       ) -> float:
        """Fraction of all points that evaluated OK and pass ``predicate``.

        Failed points always count against the yield -- a device that pulls
        in (no stable solution) is a yield loss even though it produced no
        number to compare against the spec limit.
        """
        if not self.rows:
            raise CampaignError("cannot compute the yield of an empty result")
        passing = sum(1 for row in self.rows
                      if row.ok and (predicate is None or predicate(row)))
        return passing / len(self.rows)

    def summary(self, name: str) -> dict[str, float]:
        """Mean/std/min/median/max digest of one output column."""
        values = self._ok_values(name)
        return {
            "count": int(values.size),
            "mean": float(np.mean(values)),
            "std": float(np.std(values)),
            "min": float(np.min(values)),
            "p50": float(np.percentile(values, 50.0)),
            "max": float(np.max(values)),
        }

    def solver_summary(self) -> dict[str, float]:
        """Cache-efficacy digest of the dispatched solver work.

        Hit *rates* are derived from the aggregated counters; a campaign
        whose workers never touched a cache reports zero rates rather than
        NaN.  When the campaign ran with telemetry enabled the digest grows
        into a full profile: the merged ``span_totals`` / ``metrics`` /
        ``wall_s`` of every worker appear under a ``telemetry`` key
        (see :meth:`telemetry_report` for the renderable form).
        """
        stats = dict(self.solver_stats)
        hits = stats.get("factorization_cache_hits", 0)
        misses = stats.get("factorization_cache_misses", 0)
        reuses = stats.get("structure_reuses", 0)
        rebuilds = stats.get("structure_rebuilds", 0)
        stats["factorization_cache_hit_rate"] = \
            hits / (hits + misses) if hits + misses else 0.0
        stats["structure_reuse_rate"] = \
            reuses / (reuses + rebuilds) if reuses + rebuilds else 0.0
        compiles = stats.get("hdl_compiles", 0)
        kernel_hits = stats.get("hdl_compile_cache_hits", 0)
        stats["hdl_compile_cache_hit_rate"] = \
            kernel_hits / (kernel_hits + compiles) \
            if kernel_hits + compiles else 0.0
        if self.telemetry is not None:
            stats["telemetry"] = {
                "mode": self.telemetry.get("mode"),
                "wall_s": self.telemetry.get("wall_s", 0.0),
                "span_totals": {name: dict(entry) for name, entry in
                                self.telemetry.get("span_totals", {}).items()},
                "metrics": self.telemetry.get("metrics", {}),
            }
        return stats

    def telemetry_report(self):
        """The merged campaign profile as a :class:`~repro.telemetry.TelemetryReport`.

        Aggregate-only (no span trees -- workers never ship those), so the
        Chrome-trace exporter has nothing to draw, but
        ``profile_summary()`` and ``to_json()`` work.  ``None`` when the
        campaign ran without telemetry.
        """
        if self.telemetry is None:
            return None
        from ..telemetry import TelemetryReport

        return TelemetryReport(
            self.telemetry.get("mode") or "summary", [],
            self.telemetry.get("span_totals", {}),
            self.telemetry.get("metrics", {}),
            self.telemetry.get("wall_s", 0.0))

    def to_rows(self) -> list[dict]:
        """Plain-dict rows (params + outputs + error) for serialization."""
        return [{**row.params, **row.outputs, "error": row.error}
                for row in self.rows]

    def __repr__(self) -> str:
        solver = ""
        if self.solver_stats.get("factorizations"):
            solver = f", {self.solver_stats['factorizations']} factorizations"
        return (f"CampaignResult({len(self.rows)} points, "
                f"{len(self.param_names)} params, {len(self.output_names)} outputs, "
                f"{self.num_failures} failures, {self.num_cached} cached"
                f"{solver})")
