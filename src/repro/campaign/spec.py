"""Declarative, serializable campaign specifications.

A *campaign spec* describes the set of scenario points a simulation campaign
visits, without saying anything about how each point is evaluated.  Each
point is a plain ``dict`` binding parameter names to values; the names are
interpreted by the evaluator (netlist knobs, device geometry, analysis
options -- see :mod:`repro.campaign.runner`).

Three primitive specs cover the paper's characterization workloads:

* :class:`GridSweep` -- the full cartesian product of named axes; the PXT
  flow's "iterating the variation of boundary conditions" is a 2-axis grid,
* :class:`MonteCarlo` -- seeded random sampling of parameter distributions
  (:class:`Uniform`, :class:`Normal`, :class:`LogNormal`, :class:`Discrete`)
  for process-variation / yield studies,
* :class:`CornerSet` -- a handful of named worst-case corners.

Specs compose with :meth:`CampaignSpec.zip` (same-length pointwise merge)
and :meth:`CampaignSpec.product` (cartesian combination), and round-trip
through ``to_dict`` / :func:`spec_from_dict` so that a campaign can be
stored next to its cached results.

Determinism is a hard requirement -- a :class:`MonteCarlo` spec with a given
seed must generate bit-identical points in every process (the cache keys and
the serial/pool equivalence tests depend on it).  Every distribution is
sampled from a child generator seeded by ``(seed, sha256(name))``, so the
draws do not depend on dict insertion order or on Python's per-process hash
salt.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from ..errors import CampaignError

__all__ = [
    "CampaignSpec",
    "GridSweep",
    "MonteCarlo",
    "CornerSet",
    "PointList",
    "ZipSpec",
    "ProductSpec",
    "Distribution",
    "Uniform",
    "Normal",
    "LogNormal",
    "Discrete",
    "spec_from_dict",
]


# --------------------------------------------------------------------------- #
# parameter distributions                                                     #
# --------------------------------------------------------------------------- #

class Distribution:
    """A seeded 1-D parameter distribution used by :class:`MonteCarlo`."""

    kind = "distribution"

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    @staticmethod
    def from_dict(payload: Mapping) -> "Distribution":
        kinds = {cls.kind: cls for cls in (Uniform, Normal, LogNormal, Discrete)}
        try:
            cls = kinds[payload["kind"]]
        except KeyError:
            raise CampaignError(
                f"unknown distribution kind {payload.get('kind')!r}") from None
        return cls._from_dict(payload)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform samples in ``[low, high)``."""

    low: float
    high: float
    kind = "uniform"

    def __post_init__(self) -> None:
        if not self.high > self.low:
            raise CampaignError("Uniform needs high > low")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, count)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "low": float(self.low), "high": float(self.high)}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "Uniform":
        return cls(float(payload["low"]), float(payload["high"]))


@dataclass(frozen=True)
class Normal(Distribution):
    """Gaussian samples, optionally clipped to ``[low, high]``.

    Clipping keeps physically-bounded parameters (gaps, thicknesses) from
    going non-positive in the far tails without distorting the bulk.
    """

    mean: float
    sigma: float
    low: float | None = None
    high: float | None = None
    kind = "normal"

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise CampaignError("Normal needs a positive sigma")
        if self.low is not None and self.high is not None and self.low >= self.high:
            raise CampaignError("Normal clip bounds need low < high")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        values = rng.normal(self.mean, self.sigma, count)
        if self.low is not None or self.high is not None:
            values = np.clip(values, self.low, self.high)
        return values

    def to_dict(self) -> dict:
        return {"kind": self.kind, "mean": float(self.mean), "sigma": float(self.sigma),
                "low": None if self.low is None else float(self.low),
                "high": None if self.high is None else float(self.high)}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "Normal":
        return cls(float(payload["mean"]), float(payload["sigma"]),
                   payload.get("low"), payload.get("high"))


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal samples: ``exp(N(mu, sigma))`` -- always positive."""

    mu: float
    sigma: float
    kind = "lognormal"

    def __post_init__(self) -> None:
        if self.sigma <= 0.0:
            raise CampaignError("LogNormal needs a positive sigma")

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, count)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "mu": float(self.mu), "sigma": float(self.sigma)}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "LogNormal":
        return cls(float(payload["mu"]), float(payload["sigma"]))


@dataclass(frozen=True)
class Discrete(Distribution):
    """Uniform choice from a finite set of values (e.g. device variants)."""

    choices: tuple
    kind = "discrete"

    def __init__(self, choices: Sequence) -> None:
        if len(choices) == 0:
            raise CampaignError("Discrete needs at least one choice")
        object.__setattr__(self, "choices", tuple(choices))

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        indices = rng.integers(0, len(self.choices), count)
        return np.array([self.choices[i] for i in indices], dtype=object)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "choices": list(self.choices)}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "Discrete":
        return cls(payload["choices"])


# --------------------------------------------------------------------------- #
# campaign specs                                                              #
# --------------------------------------------------------------------------- #

class CampaignSpec:
    """Base class of every campaign specification.

    A spec is an immutable description of an ordered list of scenario
    points.  ``points()`` materialises the list; the order is part of the
    contract (campaign results are reported in spec order regardless of the
    execution backend).
    """

    kind = "spec"

    @property
    def names(self) -> tuple[str, ...]:
        """The parameter names every point of this spec binds."""
        raise NotImplementedError

    def points(self) -> list[dict]:
        """The ordered scenario points as plain dicts."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[dict]:
        return iter(self.points())

    def to_dict(self) -> dict:
        raise NotImplementedError

    # -------------------------------------------------------------- combinators
    def zip(self, other: "CampaignSpec") -> "ZipSpec":
        """Pointwise merge with a same-length spec (disjoint names)."""
        return ZipSpec(self, other)

    def product(self, other: "CampaignSpec") -> "ProductSpec":
        """Cartesian combination with another spec (self is the outer axis)."""
        return ProductSpec(self, other)

    def _check_disjoint(self, other: "CampaignSpec") -> None:
        clash = set(self.names) & set(other.names)
        if clash:
            raise CampaignError(
                f"combined specs bind the same parameter(s): {sorted(clash)}")


class GridSweep(CampaignSpec):
    """Full cartesian product of named axes.

    Axes iterate in insertion order with the *last* axis fastest, matching
    the nested-loop order of the seed's PXT extractor (outer displacement,
    inner voltage).

    Parameters
    ----------
    axes:
        Mapping of parameter name to a 1-D sequence of values.
    """

    kind = "grid"

    def __init__(self, axes: Mapping[str, Sequence] | None = None, **kw_axes) -> None:
        merged: dict[str, tuple] = {}
        for source in (axes or {}), kw_axes:
            for name, values in source.items():
                if name in merged:
                    raise CampaignError(f"axis {name!r} given twice")
                values = tuple(np.asarray(values).tolist()) \
                    if isinstance(values, np.ndarray) else tuple(values)
                if len(values) == 0:
                    raise CampaignError(f"axis {name!r} is empty")
                merged[name] = values
        if not merged:
            raise CampaignError("a grid sweep needs at least one axis")
        self.axes = merged

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.axes)

    def __len__(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def points(self) -> list[dict]:
        names = list(self.axes)
        return [dict(zip(names, combo))
                for combo in itertools.product(*self.axes.values())]

    def to_dict(self) -> dict:
        return {"kind": self.kind,
                "axes": {name: list(values) for name, values in self.axes.items()}}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "GridSweep":
        return cls(payload["axes"])

    def __repr__(self) -> str:
        shape = "x".join(str(len(v)) for v in self.axes.values())
        return f"GridSweep({', '.join(self.axes)}; {shape} = {len(self)} points)"


def _name_seed(seed: int, name: str) -> np.random.Generator:
    """Child generator for one parameter, stable across processes.

    ``hash()`` is salted per process, so the per-name stream is derived from
    a SHA-256 digest of the name instead.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    words = [int.from_bytes(digest[i:i + 4], "big") for i in range(0, 16, 4)]
    return np.random.default_rng([int(seed), *words])


class MonteCarlo(CampaignSpec):
    """Seeded random sampling of parameter distributions.

    Each parameter draws ``samples`` values from its own child generator
    (derived from the campaign seed and the parameter name), so the points
    are reproducible bit-for-bit in every process and do not change when
    unrelated parameters are added or reordered.

    Parameters
    ----------
    distributions:
        Mapping of parameter name to :class:`Distribution`.
    samples:
        Number of scenario points.
    seed:
        Campaign seed; same seed, same points -- everywhere.
    """

    kind = "monte_carlo"

    def __init__(self, distributions: Mapping[str, Distribution],
                 samples: int, seed: int = 0) -> None:
        if not distributions:
            raise CampaignError("Monte Carlo needs at least one distribution")
        if samples < 1:
            raise CampaignError("Monte Carlo needs at least one sample")
        if seed < 0:
            raise CampaignError("Monte Carlo seed must be non-negative")
        for name, dist in distributions.items():
            if not isinstance(dist, Distribution):
                raise CampaignError(
                    f"parameter {name!r} is not bound to a Distribution")
        self.distributions = dict(distributions)
        self.samples = int(samples)
        self.seed = int(seed)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self.distributions)

    def __len__(self) -> int:
        return self.samples

    def points(self) -> list[dict]:
        columns = {
            name: dist.sample(_name_seed(self.seed, name), self.samples)
            for name, dist in self.distributions.items()
        }
        return [
            {name: (values[i] if values.dtype == object else float(values[i]))
             for name, values in columns.items()}
            for i in range(self.samples)
        ]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "samples": self.samples, "seed": self.seed,
                "distributions": {name: dist.to_dict()
                                  for name, dist in self.distributions.items()}}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "MonteCarlo":
        distributions = {name: Distribution.from_dict(d)
                         for name, d in payload["distributions"].items()}
        return cls(distributions, int(payload["samples"]), int(payload["seed"]))

    def __repr__(self) -> str:
        return (f"MonteCarlo({', '.join(self.distributions)}; "
                f"{self.samples} samples, seed={self.seed})")


class CornerSet(CampaignSpec):
    """A small set of named worst-case corners.

    Every corner must bind the same parameter names.  The corner label is
    exposed as the ``corner`` parameter of each point so that results can be
    grouped by corner; evaluators ignore parameters they do not bind.
    """

    kind = "corners"
    LABEL = "corner"

    def __init__(self, corners: Mapping[str, Mapping[str, object]]) -> None:
        if not corners:
            raise CampaignError("a corner set needs at least one corner")
        names: tuple[str, ...] | None = None
        cleaned: dict[str, dict] = {}
        for label, values in corners.items():
            if self.LABEL in values:
                raise CampaignError(
                    f"corner {label!r} binds the reserved name {self.LABEL!r}")
            these = tuple(values)
            if names is None:
                names = these
            elif set(these) != set(names):
                raise CampaignError(
                    f"corner {label!r} binds {sorted(these)}, "
                    f"expected {sorted(names)}")
            cleaned[str(label)] = dict(values)
        self.corners = cleaned
        self._names = tuple(names or ())

    @property
    def names(self) -> tuple[str, ...]:
        return (self.LABEL, *self._names)

    def __len__(self) -> int:
        return len(self.corners)

    def points(self) -> list[dict]:
        return [{self.LABEL: label, **values}
                for label, values in self.corners.items()]

    def to_dict(self) -> dict:
        return {"kind": self.kind,
                "corners": {label: dict(values)
                            for label, values in self.corners.items()}}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "CornerSet":
        return cls(payload["corners"])

    def __repr__(self) -> str:
        return f"CornerSet({', '.join(self.corners)})"


class PointList(CampaignSpec):
    """An explicit, ordered list of scenario points.

    The escape hatch for point sets that are neither grids, samples nor
    corners -- e.g. the start vectors of a multi-start optimization fan-out,
    or a hand-picked validation set.  Every point must bind the same
    parameter names; the list order is the campaign order.
    """

    kind = "points"

    def __init__(self, points: Sequence[Mapping[str, object]]) -> None:
        cleaned = [dict(point) for point in points]
        if not cleaned:
            raise CampaignError("a point list needs at least one point")
        names = tuple(cleaned[0])
        for index, point in enumerate(cleaned):
            if set(point) != set(names):
                raise CampaignError(
                    f"point #{index} binds {sorted(point)}, "
                    f"expected {sorted(names)}")
        self._points = cleaned
        self._names = names

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    def __len__(self) -> int:
        return len(self._points)

    def points(self) -> list[dict]:
        return [dict(point) for point in self._points]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "points": [dict(p) for p in self._points]}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "PointList":
        return cls(payload["points"])

    def __repr__(self) -> str:
        return f"PointList({', '.join(self._names)}; {len(self)} points)"


class ZipSpec(CampaignSpec):
    """Pointwise merge of two same-length specs (disjoint parameter names)."""

    kind = "zip"

    def __init__(self, left: CampaignSpec, right: CampaignSpec) -> None:
        left._check_disjoint(right)
        if len(left) != len(right):
            raise CampaignError(
                f"zip needs same-length specs ({len(left)} vs {len(right)} points)")
        self.left = left
        self.right = right

    @property
    def names(self) -> tuple[str, ...]:
        return (*self.left.names, *self.right.names)

    def __len__(self) -> int:
        return len(self.left)

    def points(self) -> list[dict]:
        return [{**a, **b} for a, b in zip(self.left.points(), self.right.points())]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "left": self.left.to_dict(),
                "right": self.right.to_dict()}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "ZipSpec":
        return cls(spec_from_dict(payload["left"]), spec_from_dict(payload["right"]))


class ProductSpec(CampaignSpec):
    """Cartesian product of two specs; the left spec is the outer axis."""

    kind = "product"

    def __init__(self, left: CampaignSpec, right: CampaignSpec) -> None:
        left._check_disjoint(right)
        self.left = left
        self.right = right

    @property
    def names(self) -> tuple[str, ...]:
        return (*self.left.names, *self.right.names)

    def __len__(self) -> int:
        return len(self.left) * len(self.right)

    def points(self) -> list[dict]:
        inner = self.right.points()
        return [{**a, **b} for a in self.left.points() for b in inner]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "left": self.left.to_dict(),
                "right": self.right.to_dict()}

    @classmethod
    def _from_dict(cls, payload: Mapping) -> "ProductSpec":
        return cls(spec_from_dict(payload["left"]), spec_from_dict(payload["right"]))


_SPEC_KINDS = {cls.kind: cls for cls in
               (GridSweep, MonteCarlo, CornerSet, PointList, ZipSpec,
                ProductSpec)}


def spec_from_dict(payload: Mapping) -> CampaignSpec:
    """Rebuild any campaign spec from its ``to_dict`` payload."""
    try:
        cls = _SPEC_KINDS[payload["kind"]]
    except KeyError:
        raise CampaignError(f"unknown spec kind {payload.get('kind')!r}") from None
    return cls._from_dict(payload)
