"""Content-addressed result caching for simulation campaigns.

A campaign point is fully determined by *what* is evaluated (the evaluator's
identity payload: netlist recipe, analysis kind, simulation options) and
*where* (the scenario point's parameter values).  :func:`scenario_key`
hashes a canonical JSON form of both into a SHA-256 key, so

* re-running a grid after extending one axis only pays for the new points,
* changing any simulation option (tolerances, solver selection) changes the
  key and transparently invalidates stale entries,
* two processes -- or two machines sharing the cache directory -- agree on
  every key.

:class:`ResultCache` layers an in-memory dict over an optional on-disk store
(one JSON file per entry, sharded by key prefix to keep directories small).
Only successful rows are cached; failures are re-attempted on the next run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Mapping

from ..errors import CampaignError

__all__ = ["canonicalize", "scenario_key", "ResultCache"]


def canonicalize(value):
    """Reduce a payload to canonical JSON-compatible primitives.

    Mappings are sorted by key, tuples become lists, numpy scalars/arrays
    become Python numbers/lists.  Floats stay exact: ``json`` serializes
    them with shortest round-trip repr.
    """
    if isinstance(value, Mapping):
        return {str(key): canonicalize(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if hasattr(value, "tolist"):  # numpy scalar or array
        return canonicalize(value.tolist())
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise CampaignError(
        f"cannot canonicalize {type(value).__name__!r} for cache keying")


def scenario_key(*parts) -> str:
    """SHA-256 hex key of the canonical JSON form of ``parts``."""
    payload = json.dumps([canonicalize(part) for part in parts],
                         sort_keys=True, separators=(",", ":"), allow_nan=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """In-memory + optional on-disk store of campaign result rows.

    Parameters
    ----------
    directory:
        On-disk location; ``None`` keeps the cache memory-only.  The
        directory (and shard subdirectories) are created on demand.
    max_disk_bytes:
        Optional cap on the total size of the persisted entries.  When a
        store pushes the cache past the cap, the least-recently-used entries
        (by file modification time; reads refresh it) are pruned until the
        cache fits.  ``None`` disables eviction.
    """

    def __init__(self, directory: str | os.PathLike | None = None,
                 max_disk_bytes: int | None = None) -> None:
        self.directory = None if directory is None else os.fspath(directory)
        if max_disk_bytes is not None and max_disk_bytes < 1:
            raise CampaignError("max_disk_bytes must be positive (or None)")
        if max_disk_bytes is not None and self.directory is None:
            raise CampaignError(
                "max_disk_bytes bounds the on-disk store; it needs a cache "
                "directory (memory-only caches are unbounded)")
        self.max_disk_bytes = max_disk_bytes
        self._memory: dict[str, dict] = {}
        #: Running total of persisted bytes (None until first needed); kept
        #: incrementally so capped stores do not rescan the store per put.
        self._disk_bytes: int | None = None
        #: Strictly increasing recency clock: plain mtimes tie within the
        #: filesystem timestamp granularity, which would make LRU ordering
        #: of rapid touches arbitrary.
        self._recency_clock = 0.0
        self.hits = 0
        #: Subset of ``hits`` served by promoting an on-disk entry (a cold
        #: start against a warm directory is all disk hits; later hits of
        #: the same keys come from memory).
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # ------------------------------------------------------------------ paths
    def _path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def _touch(self, path: str) -> None:
        """Stamp ``path`` with a strictly newer mtime than any prior touch."""
        self._recency_clock = max(time.time(), self._recency_clock + 1e-4)
        try:
            os.utime(path, times=(self._recency_clock, self._recency_clock))
        except OSError:
            pass

    # ------------------------------------------------------------------ access
    def get(self, key: str) -> dict | None:
        """The cached row for ``key``, or ``None`` on a miss."""
        row = self._memory.get(key)
        if row is not None:
            self.hits += 1
            if self.directory is not None and self.max_disk_bytes is not None:
                # Memory hits must refresh the on-disk recency too, or the
                # hottest rows look stalest to the LRU pruner.
                self._touch(self._path(key))
            return dict(row)
        if self.directory is not None:
            path = self._path(key)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    row = json.load(handle)
            except (OSError, ValueError):
                row = None
            if isinstance(row, dict):
                self._memory[key] = row  # promote for the rest of the run
                self.hits += 1
                self.disk_hits += 1
                if self.max_disk_bytes is not None:
                    self._touch(path)  # refresh LRU recency for the pruner
                return dict(row)
        self.misses += 1
        return None

    def put(self, key: str, row: Mapping[str, object]) -> None:
        """Store one row under ``key`` (memory, and disk when configured).

        For a disk-backed cache the memory layer and the ``stores`` counter
        are only updated after the disk write succeeds, so a failed
        serialization leaves the cache consistent (no phantom same-process
        hits for rows that were never persisted).
        """
        row = dict(row)
        if self.directory is None:
            self._memory[key] = row
            self.stores += 1
            return
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            previous_size = os.path.getsize(path)
        except OSError:
            previous_size = 0
        # Write-rename so a concurrent reader never sees a torn file.
        fd, tmp_path = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(row, handle, allow_nan=True)
            os.replace(tmp_path, path)
        except Exception:
            # Also non-OSError failures (e.g. an unserializable value raising
            # TypeError inside json.dump) must not leak the temp file.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._memory[key] = row
        self.stores += 1
        if self.max_disk_bytes is not None:
            self._touch(path)  # granularity-proof recency for the pruner
            if self._disk_bytes is None:
                self._disk_bytes = sum(self._entry_sizes().values())
            else:
                try:
                    self._disk_bytes += os.path.getsize(path) - previous_size
                except OSError:
                    pass
            if self._disk_bytes > self.max_disk_bytes:
                self._prune_disk(keep=key)

    def _entry_sizes(self) -> dict[str, int]:
        sizes = {}
        for path in self._disk_files():
            try:
                sizes[path] = os.path.getsize(path)
            except OSError:
                continue
        return sizes

    def _prune_disk(self, keep: str | None = None) -> None:
        """Evict least-recently-used entries until the store fits the cap.

        Only runs when the running byte total exceeds the cap, and prunes to
        90% of it so back-to-back stores near the limit do not rescan the
        shard tree every time.  ``keep`` protects the just-written key so a
        single oversized row cannot evict itself into a store/miss loop.
        """
        entries = []
        total = 0
        for path in self._disk_files():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        self._disk_bytes = total  # authoritative rescan
        if total <= self.max_disk_bytes:
            return
        low_water = int(0.9 * self.max_disk_bytes)
        protected = None if keep is None else self._path(keep)
        entries.sort()  # oldest mtime first
        for _, size, path in entries:
            if total <= low_water:
                break
            if path == protected:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            self.evictions += 1
            # The memory layer mirrors the persistent store; a pruned entry
            # must miss (and be recomputed) next run, not ghost-hit here.
            self._memory.pop(os.path.splitext(os.path.basename(path))[0], None)
        self._disk_bytes = total

    def _disk_files(self):
        """Yield the path of every persisted entry (empty for memory-only)."""
        if self.directory is None or not os.path.isdir(self.directory):
            return
        for shard in os.listdir(self.directory):
            shard_dir = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def contains(self, key: str) -> bool:
        """True when ``key`` is available (without counting a hit/miss)."""
        if key in self._memory:
            return True
        return self.directory is not None and os.path.exists(self._path(key))

    def invalidate(self, key: str) -> None:
        """Drop one entry from memory and disk."""
        self._memory.pop(key, None)
        if self.directory is not None:
            path = self._path(key)
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                return
            if self._disk_bytes is not None:
                self._disk_bytes = max(0, self._disk_bytes - size)

    def clear(self) -> None:
        """Drop every entry (and reset the hit/miss counters)."""
        self._memory.clear()
        for path in self._disk_files():
            try:
                os.unlink(path)
            except OSError:
                pass
        self._disk_bytes = 0 if self.directory is not None else None
        self.hits = self.disk_hits = self.misses = self.stores = self.evictions = 0

    def stats(self) -> dict[str, float]:
        """Cache size and counter snapshot.

        For a disk-backed cache, ``entries``/``bytes`` describe the
        persistent store (on-disk entry count and total payload size); for a
        memory-only cache ``entries`` falls back to the in-memory count and
        ``bytes`` is 0.  ``memory_entries`` always reports the in-process
        layer, and ``hits``/``misses``/``stores`` are the counters since
        construction or :meth:`clear`.

        ``hit_rate`` and ``disk_hit_rate`` are derived per-lookup rates
        (``hits / (hits + misses)`` and ``disk_hits / (hits + misses)``);
        both are 0.0 when the cache has seen no lookups.
        """
        disk_entries = 0
        disk_bytes = 0
        for path in self._disk_files():
            try:
                disk_bytes += os.path.getsize(path)
            except OSError:
                continue
            disk_entries += 1
        lookups = self.hits + self.misses
        return {"hits": self.hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "stores": self.stores,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "disk_hit_rate": self.disk_hits / lookups if lookups else 0.0,
                "memory_entries": len(self._memory),
                "entries": disk_entries if self.directory is not None
                else len(self._memory),
                "bytes": disk_bytes}

    def __repr__(self) -> str:
        where = self.directory or "memory"
        return (f"ResultCache({where}: {len(self._memory)} entries, "
                f"{self.hits} hits / {self.misses} misses)")
