"""HDL-A-like analog hardware description language front-end.

This package is the substitute for ANACAD's proprietary HDL-ATM compiler.
It implements the subset of HDL-A that the paper actually uses (Listing 1
plus what the PXT model generator emits):

* ``ENTITY`` declarations with ``GENERIC`` and ``PIN`` clauses (pins typed by
  nature: ``electrical``, ``mechanical1`` ...),
* ``ARCHITECTURE`` bodies with ``VARIABLE``/``STATE``/``CONSTANT``
  declarations and a ``RELATION`` block,
* ``PROCEDURAL FOR <domains> =>`` statement groups (``init``, ``dc``, ``ac``,
  ``transient``),
* assignments ``:=``, branch contributions ``[p, n].i %= expr`` /
  ``[p, n].f %= expr``, ``IF/ELSIF/ELSE`` statements,
* the analog operators ``ddt`` and ``integ``, the usual math functions, and
  the ``table1d`` piecewise-linear lookup used by generated macromodels.

Typical use::

    from repro.hdl import parse, instantiate

    module = parse(hdl_source_text)
    device = instantiate(module, "eletran", name="X1",
                         generics={"A": 1e-4, "d": 0.15e-3, "er": 1.0},
                         pins={"a": node_a, "b": gnd, "c": node_m, "d": gnd})
    circuit.add(device)

The elaborated device is a regular
:class:`~repro.circuit.devices.behavioral.BehavioralDevice`, so every circuit
analysis (DC, AC, transient) works on HDL models without special cases.
"""

from . import compile  # noqa: A004 - submodule, shadows the builtin on purpose
from .lexer import tokenize
from .ast_nodes import (
    EntityDecl,
    ArchitectureDecl,
    Module,
    PinDecl,
    GenericDecl,
)
from .parser import parse
from .semantic import analyze
from .elaborate import instantiate, HDLEntityInstance
from .codegen import (
    generate_entity,
    generate_architecture,
    generate_model,
    table1d_expression,
)
from .stdlib import BUILTIN_FUNCTIONS

__all__ = [
    "compile",
    "tokenize",
    "parse",
    "analyze",
    "instantiate",
    "HDLEntityInstance",
    "Module",
    "EntityDecl",
    "ArchitectureDecl",
    "PinDecl",
    "GenericDecl",
    "generate_entity",
    "generate_architecture",
    "generate_model",
    "table1d_expression",
    "BUILTIN_FUNCTIONS",
]
