"""Token definitions for the HDL-A lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenType", "Token", "KEYWORDS"]


class TokenType(enum.Enum):
    """Lexical token categories."""

    IDENT = "identifier"
    NUMBER = "number"
    STRING = "string"
    KEYWORD = "keyword"

    # punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    DOT = "."
    ASSIGN = ":="
    CONTRIB = "%="
    ARROW = "=>"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    POWER = "**"
    EQ = "="
    NEQ = "/="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EOF = "end of input"


#: Reserved words (case-insensitive, as in VHDL).
KEYWORDS = {
    "entity", "is", "end", "generic", "pin", "architecture", "of",
    "variable", "state", "constant", "begin", "relation", "procedural",
    "for", "if", "then", "elsif", "else", "and", "or", "not", "xor",
    "port", "signal",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """True when type (and, if given, lower-cased value) match."""
        if self.type is not token_type:
            return False
        if value is None:
            return True
        return self.value.lower() == value.lower()

    def __repr__(self) -> str:
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"
