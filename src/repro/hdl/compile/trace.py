"""Concolic tracing of behavioral models into the typed IR.

A behavioral model (a Python closure or an elaborated HDL ``_Interpreter``)
runs once with :class:`Tracer` objects in place of its numeric inputs; the
ordinary arithmetic the model performs builds the IR as a side effect while
concrete values ride along to decide data-dependent branches.  The result is
a :class:`TracedVariant`: the model's contributions/equations/records as IR
expressions, plus the *guards* -- comparisons whose boolean outcome the
model branched on.  A compiled kernel is only valid while its guards keep
evaluating to the traced outcomes; a mismatch triggers a re-trace (a new
variant) or the interpreter fallback.

Design constraints that make the trace trustworthy:

* ``Tracer`` deliberately has **no** ``value`` attribute and its
  ``__float__`` raises :class:`TraceError`.  The HDL interpreter reads
  ``float(getattr(x, "value", x))`` before every relational/logical
  operation, so HDL models with data-dependent control flow fail the trace
  loudly and stay on the interpreter instead of being silently concretized.
* Python ``if`` statements on traced comparisons *are* supported for native
  closures: the comparison returns a :class:`TraceBool` whose ``__bool__``
  records a guard.
* Anything the tracer cannot follow (``float()``/``int()`` conversions,
  unsupported operators, foreign AD duals) raises :class:`TraceError` and
  the device permanently falls back to the interpreter.
"""

from __future__ import annotations

import numbers

import numpy as np

from ...circuit.devices.behavioral import BehaviorContext
from . import ir

__all__ = ["TraceError", "Tracer", "TraceBool", "Trace", "TracedVariant",
           "trace_behavior"]


class TraceError(Exception):
    """The behavior performed an operation the tracer cannot follow."""


class Trace:
    """Mutable recording state shared by every tracer of one trace run."""

    def __init__(self) -> None:
        self.builder = ir.IRBuilder()
        #: ``(Compare, outcome)`` pairs in the order the model branched.
        self.guards: list[tuple[ir.Compare, bool]] = []
        #: Defaults seen through ``ctx.param(name, default)``.
        self.param_defaults: dict[str, float] = {}

    def as_node(self, value) -> tuple[ir.Node, float]:
        """IR node + concrete value of a traced or plain numeric value."""
        if isinstance(value, Tracer):
            return value._ir, value._concrete
        if isinstance(value, bool) or not isinstance(value, numbers.Real):
            raise TraceError(f"cannot trace value of type {type(value).__name__}")
        plain = float(value)
        return self.builder.const(plain), plain

    def tracer(self, node: ir.Node, concrete: float) -> "Tracer":
        return Tracer(self, node, float(concrete))

    def guard(self, compare: ir.Compare, outcome: bool) -> bool:
        self.guards.append((compare, bool(outcome)))
        return bool(outcome)


_COMPARE_EVAL = {
    "<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b, ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b, "!=": lambda a, b: a != b,
}


class TraceBool:
    """Deferred comparison result: concretizing it records a trace guard."""

    __slots__ = ("_trace", "_compare", "_outcome")

    def __init__(self, trace: Trace, compare: ir.Compare, outcome: bool) -> None:
        self._trace = trace
        self._compare = compare
        self._outcome = bool(outcome)

    def __bool__(self) -> bool:
        return self._trace.guard(self._compare, self._outcome)

    def _repro_where_(self, a, b):
        """Hook for :func:`repro.ad.functions.where`: a runtime Select."""
        trace = self._trace
        na, ca = trace.as_node(a)
        nb, cb = trace.as_node(b)
        return trace.tracer(trace.builder.select(self._compare, na, nb),
                            ca if self._outcome else cb)


class Tracer:
    """A symbolic float: arithmetic builds IR, a concrete value rides along.

    The concrete part mirrors what the interpreter would compute and only
    steers trace-time decisions (guard outcomes, selected branches); the
    kernels re-derive every number from the IR at run time.
    """

    __slots__ = ("_trace", "_ir", "_concrete")
    #: Duck-typing marker for the ``repro.ad.functions`` dispatch hooks.
    _repro_tracer_ = True
    __array_priority__ = 120.0  # beat numpy scalars to the operator

    def __init__(self, trace: Trace, node: ir.Node, concrete: float) -> None:
        self._trace = trace
        self._ir = node
        self._concrete = concrete

    # ------------------------------------------------------------- conversions
    def __float__(self) -> float:
        raise TraceError(
            "behavior concretized a traced value with float(); the model is "
            "not traceable (data-dependent structure)")

    __int__ = __index__ = __complex__ = __float__

    def __bool__(self) -> bool:
        # ``if expr:`` on a traced value -- mirror Dual.__bool__ (value != 0)
        # as a recorded guard.
        compare = self._trace.builder.compare(
            "!=", self._ir, self._trace.builder.const(0.0))
        return self._trace.guard(compare, self._concrete != 0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer({self._ir!r}, ~{self._concrete!r})"

    # -------------------------------------------------------------- arithmetic
    def _coerce(self, other) -> tuple[ir.Node, float] | None:
        if isinstance(other, Tracer):
            if other._trace is not self._trace:
                raise TraceError("mixed tracers from different trace runs")
            return other._ir, other._concrete
        if isinstance(other, bool):
            return None
        if isinstance(other, numbers.Real):
            plain = float(other)
            return self._trace.builder.const(plain), plain
        return None

    def _binary(self, op: str, other, swapped: bool = False):
        pair = self._coerce(other)
        if pair is None:
            return NotImplemented
        node, concrete = pair
        if swapped:
            a, b = node, self._ir
            ca, cb = concrete, self._concrete
        else:
            a, b = self._ir, node
            ca, cb = self._concrete, concrete
        return self._trace.tracer(self._trace.builder.binary(op, a, b),
                                  ir._fold_binary(op, ca, cb))

    def __add__(self, other):
        return self._binary("+", other)

    def __radd__(self, other):
        # Dual.__radd__ is Dual.__add__ (self + other); mirror that order.
        return self._binary("+", other)

    def __sub__(self, other):
        return self._binary("-", other)

    def __rsub__(self, other):
        return self._binary("-", other, swapped=True)

    def __mul__(self, other):
        return self._binary("*", other)

    def __rmul__(self, other):
        # Dual.__rmul__ is Dual.__mul__; value/deriv formulas commute exactly.
        return self._binary("*", other)

    def __truediv__(self, other):
        return self._binary("/", other)

    def __rtruediv__(self, other):
        return self._binary("/", other, swapped=True)

    def __pow__(self, other):
        if isinstance(other, numbers.Real) and not isinstance(other, Tracer):
            exponent = float(other)
            if exponent == 0.0:
                # Dual ** 0.0 is exactly 1.0 with a zero derivative.
                return self._trace.tracer(self._trace.builder.const(1.0), 1.0)
        return self._binary("**", other)

    def __rpow__(self, other):
        return self._binary("**", other, swapped=True)

    def __neg__(self):
        return self._trace.tracer(self._trace.builder.unary("neg", self._ir),
                                  -self._concrete)

    def __pos__(self):
        return self._trace.tracer(self._trace.builder.unary("pos", self._ir),
                                  +self._concrete)

    def __abs__(self):
        # A dedicated Call node: codegen mirrors Dual.__abs__'s value branch
        # when the operand carries derivatives and plain fabs otherwise.
        return self._trace.tracer(self._trace.builder.call("abs", self._ir),
                                  abs(self._concrete))

    # ------------------------------------------------------------- comparisons
    def _compare(self, op: str, other) -> "TraceBool":
        pair = self._coerce(other)
        if pair is None:
            return NotImplemented
        node, concrete = pair
        compare = self._trace.builder.compare(op, self._ir, node)
        outcome = _COMPARE_EVAL[op](self._concrete, concrete)
        return TraceBool(self._trace, compare, outcome)

    def __lt__(self, other):
        return self._compare("<", other)

    def __le__(self, other):
        return self._compare("<=", other)

    def __gt__(self, other):
        return self._compare(">", other)

    def __ge__(self, other):
        return self._compare(">=", other)

    def __eq__(self, other):
        result = self._compare("==", other)
        return NotImplemented if result is NotImplemented else result

    def __ne__(self, other):
        result = self._compare("!=", other)
        return NotImplemented if result is NotImplemented else result

    __hash__ = None  # tracers are not hashable (value equality is a guard)

    # --------------------------------------------------- ad.functions dispatch
    def _repro_unary_(self, name: str, fn) -> "Tracer":
        """Hook for :func:`repro.ad.functions._unary` (sqrt/exp/log/...)."""
        return self._trace.tracer(self._trace.builder.call(name, self._ir),
                                  fn(self._concrete))

    def _repro_minmax_(self, a, b, op: str) -> "Tracer":
        """Hook for ``minimum``/``maximum``: value-compare runtime Select."""
        trace = self._trace
        na, ca = trace.as_node(a)
        nb, cb = trace.as_node(b)
        compare = trace.builder.compare(op, na, nb)
        outcome = _COMPARE_EVAL[op](ca, cb)
        return trace.tracer(trace.builder.select(compare, na, nb),
                            ca if outcome else cb)

    def _repro_where_(self, a, b) -> "Tracer":
        """Hook for ``where`` with a traced (truthy-value) condition."""
        trace = self._trace
        compare = trace.builder.compare("!=", self._ir,
                                        trace.builder.const(0.0))
        na, ca = trace.as_node(a)
        nb, cb = trace.as_node(b)
        return trace.tracer(trace.builder.select(compare, na, nb),
                            ca if self._concrete != 0.0 else cb)


class TraceContext(BehaviorContext):
    """A :class:`BehaviorContext` whose inputs are tracers.

    ``stamp_ctx`` may be ``None`` (the *origin probe*: every across/unknown
    reads 0 and the state operators take their DC form); with a live context
    the concrete parts mirror the interpreter exactly and the state
    operators delegate their value arithmetic -- and pending-state
    bookkeeping -- to the real integrator (the interpreter stamp that
    follows a mid-solve trace rewrites identical pending values).
    """

    def __init__(self, device, mode: str, stamp_ctx, trace: Trace) -> None:
        super().__init__(device, mode, stamp_ctx=stamp_ctx, with_jacobian=False)
        self._trace = trace

    # ------------------------------------------------------------------ inputs
    @property
    def time(self):
        # Time must stay a runtime input -- baking the trace-time value
        # would freeze waveforms at one instant.
        concrete = 0.0 if self._stamp_ctx is None else self._stamp_ctx.time
        return self._trace.tracer(self._trace.builder.input("time", "t"),
                                  concrete)

    def across(self, port_name: str):
        port = self._device.port(port_name)
        if self._stamp_ctx is None:
            concrete = 0.0
        else:
            concrete = (self._stamp_ctx.across(port.p)
                        - self._stamp_ctx.across(port.n))
        return self._trace.tracer(
            self._trace.builder.input("across", port_name), concrete)

    def unknown(self, name: str):
        if name not in self._device.extra_unknowns:
            # Same validation/error as the interpreter path.
            super().unknown(name)
        if self._stamp_ctx is None:
            concrete = 0.0
        else:
            concrete = self._stamp_ctx.aux_value(self._device, name)
        return self._trace.tracer(
            self._trace.builder.input("unknown", name), concrete)

    def param(self, name: str, default: float | None = None):
        concrete = super().param(name, default)
        if isinstance(concrete, Tracer):
            # A bound-attribute tracer was also mirrored into ``params``.
            return concrete
        if not isinstance(concrete, numbers.Real):
            raise TraceError(f"parameter {name!r} is not a plain number")
        if name not in self._device.params and default is not None:
            self._trace.param_defaults[name] = float(default)
        return self._trace.tracer(
            self._trace.builder.input("param", name), float(concrete))

    # ---------------------------------------------------------------- dynamics
    def ddt(self, expression, key: str | None = None):
        full_key = self._full_key(key, "ddt")
        node, concrete = self._trace.as_node(expression)
        if self._stamp_ctx is None:
            value = 0.0 * concrete
        else:
            value = self._stamp_ctx.ddt(full_key, concrete)
        return self._trace.tracer(
            self._trace.builder.ddt(node, full_key[1]), value)

    def integ(self, expression, key: str | None = None,
              initial: float | None = None):
        full_key = self._full_key(key, "integ")
        if initial is None:
            initial = self._device.state_initials.get(
                key if key is not None else full_key[1], 0.0)
        initial = float(initial)  # a traced initial raises TraceError
        node, concrete = self._trace.as_node(expression)
        if self._stamp_ctx is None:
            value = 0.0 * concrete + initial
        else:
            value = self._stamp_ctx.integ(full_key, concrete, initial=initial)
        return self._trace.tracer(
            self._trace.builder.integ(node, full_key[1], initial), value)

    # ----------------------------------------------------------------- outputs
    # contribute()/equation() are inherited: accumulating tracers with the
    # interpreter's own ``current + expression`` arithmetic records the
    # accumulation order in the IR for free.

    def record(self, name: str, expression) -> None:
        node, concrete = self._trace.as_node(expression)
        self.recorded[name] = float(np.real(concrete))
        self._record_ir = getattr(self, "_record_ir", {})
        self._record_ir[name] = node


class TracedVariant:
    """One successful trace of a behavioral model in one analysis mode."""

    __slots__ = ("mode", "builder", "guards", "contributions", "equations",
                 "records", "inputs", "param_defaults", "state_suffixes")

    def __init__(self, mode: str, builder: ir.IRBuilder,
                 guards, contributions, equations, records,
                 param_defaults) -> None:
        self.mode = mode
        self.builder = builder
        self.guards = list(guards)
        #: ``[(port_name, Node)]`` in contribution (stamp) order.
        self.contributions = list(contributions)
        #: ``[(unknown_name, Node)]`` in equation order.
        self.equations = list(equations)
        #: ``[(record_name, Node)]`` in record order.
        self.records = list(records)
        self.param_defaults = dict(param_defaults)
        roots = ([node for _, node in self.contributions]
                 + [node for _, node in self.equations]
                 + [node for _, node in self.records]
                 + [compare for compare, _ in self.guards])
        inputs: dict[tuple[str, str], ir.Input] = {}
        suffixes: list[str] = []
        for node in ir.walk(roots):
            if isinstance(node, ir.Input):
                inputs.setdefault((node.kind, node.name), node)
            elif isinstance(node, (ir.Ddt, ir.Integ)):
                if node.state not in suffixes:
                    suffixes.append(node.state)
        #: ``[(kind, name)]`` in first-use order -- the kernel input layout.
        self.inputs = tuple(inputs)
        #: State-key suffixes in first-use order (device name prepended at
        #: stamp time).
        self.state_suffixes = tuple(suffixes)

    def fingerprint_payload(self):
        """Canonical structural payload for process-wide kernel caching."""
        return (
            "behavioral-kernel/1", self.mode,
            tuple((kind, name) for kind, name in self.inputs),
            tuple((compare.key, outcome) for compare, outcome in self.guards),
            tuple((name, node.key) for name, node in self.contributions),
            tuple((name, node.key) for name, node in self.equations),
            tuple((name, node.key) for name, node in self.records),
        )


def _install_param_tracers(device, trace: Trace):
    """Replace bound owner attributes with param tracers; return undo state.

    Behaviors that read tunable parameters from closure-captured objects
    (e.g. a transducer's geometry attributes) see leaf tracers, so those
    parameters stay *runtime inputs* of the kernel instead of baked
    constants -- one kernel serves every instance and campaign lane.
    """
    saved = []
    mirrored = []
    for name, (owner, attribute) in device.parameter_bindings.items():
        current = getattr(owner, attribute)
        if isinstance(current, bool) or not isinstance(current, numbers.Real):
            raise TraceError(
                f"bound parameter {name!r} is not a plain number")
        tracer = trace.tracer(trace.builder.input("param", name),
                              float(current))
        saved.append((owner, attribute, current))
        setattr(owner, attribute, tracer)
        if name in device.params:
            # ``ctx.param`` reads of the same generic must yield the same
            # leaf; TraceContext.param passes bound tracers through.
            mirrored.append((name, device.params[name]))
            device.params[name] = tracer
    return saved, mirrored


def _restore_param_tracers(device, undo) -> None:
    saved, mirrored = undo
    for owner, attribute, value in saved:
        setattr(owner, attribute, value)
    for name, value in mirrored:
        device.params[name] = value


def trace_behavior(device, mode: str, stamp_ctx=None) -> TracedVariant:
    """Run ``device.behavior`` once under the tracer and return the variant.

    Raises :class:`TraceError` (or any exception the behavior itself raises
    on traced inputs) when the model cannot be traced; callers treat every
    failure as "keep the interpreter".
    """
    trace = Trace()
    ctx = TraceContext(device, mode, stamp_ctx, trace)
    undo = _install_param_tracers(device, trace)
    try:
        device.behavior(ctx)
    finally:
        _restore_param_tracers(device, undo)
    contributions = [(name, trace.as_node(value)[0])
                     for name, value in ctx.contributions.items()]
    equations = [(name, trace.as_node(value)[0])
                 for name, value in ctx.equations.items()]
    records = [(name, node)
               for name, node in getattr(ctx, "_record_ir", {}).items()]
    return TracedVariant(mode, trace.builder, trace.guards, contributions,
                         equations, records, trace.param_defaults)
