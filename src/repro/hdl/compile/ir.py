"""Typed expression IR for compiled behavioral models.

The IR is a small, immutable expression language the concolic tracer
(:mod:`repro.hdl.compile.trace`) builds while a behavioral model runs once
through the interpreter, and the code generator
(:mod:`repro.hdl.compile.codegen`) lowers to scalar or lane-vectorized
Python kernels.  Nodes are hash-consed by an :class:`IRBuilder`, so
structurally identical subexpressions are *the same object* -- common
subexpression elimination falls out of construction, and fingerprinting /
equality are identity-cheap.

Node kinds
----------
``Const``    -- a float literal baked at trace time (model constants).
``Input``    -- a runtime input: port across value, extra unknown, device
                parameter, or analysis time.
``Unary``    -- ``neg`` / ``pos``.
``Binary``   -- ``+ - * / **`` with the operand order preserved.
``Call``     -- an :mod:`repro.ad.functions` elementary function.
``Compare``  -- ``< <= > >= == !=`` on values; appears only as a
                :class:`Select` condition or a trace guard.
``Select``   -- ``a if cond else b`` (runtime branch, no re-trace needed).
``Ddt``      -- the HDL-A ``ddt`` operator (state keyed per device).
``Integ``    -- the HDL-A ``integ`` operator with its initial value.

Fingerprints are stable SHA-256 digests of the canonical serialization, so
process-wide kernel caching keys the same way :func:`repro.linalg.cache.
matrix_fingerprint` keys factorizations: by content, not identity.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

__all__ = [
    "Node", "Const", "Input", "Unary", "Binary", "Call", "Compare",
    "Select", "Ddt", "Integ", "IRBuilder", "fingerprint", "walk",
]

#: Elementary functions the IR may call (mirrors ``repro.ad.functions``).
CALL_FUNCTIONS = frozenset({
    "sqrt", "exp", "log", "sin", "cos", "tan", "sinh", "cosh", "tanh",
    "atan", "asin", "acos", "sign", "abs",
})

#: Valid comparison operators for ``Compare`` nodes.
COMPARE_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})

#: Valid ``Input`` kinds.
INPUT_KINDS = frozenset({"across", "unknown", "param", "time"})


class Node:
    """Base class of all IR nodes.

    Instances are immutable and interned by the owning :class:`IRBuilder`;
    two nodes built by the same builder are structurally equal iff they are
    the same object.  ``key`` is the canonical structural tuple used for
    interning and fingerprinting.
    """

    __slots__ = ("key",)

    def children(self) -> tuple["Node", ...]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}{self.key[1:]}"


class Const(Node):
    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = float(value)
        self.key = ("const", self.value.hex())


class Input(Node):
    __slots__ = ("kind", "name")

    def __init__(self, kind: str, name: str) -> None:
        if kind not in INPUT_KINDS:
            raise ValueError(f"unknown input kind {kind!r}")
        self.kind = kind
        self.name = str(name)
        self.key = ("input", kind, self.name)


class Unary(Node):
    __slots__ = ("op", "x")

    def __init__(self, op: str, x: Node) -> None:
        if op not in ("neg", "pos"):
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.x = x
        self.key = ("unary", op, x.key)

    def children(self):
        return (self.x,)


class Binary(Node):
    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Node, b: Node) -> None:
        if op not in ("+", "-", "*", "/", "**"):
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.a = a
        self.b = b
        self.key = ("binary", op, a.key, b.key)

    def children(self):
        return (self.a, self.b)


class Call(Node):
    __slots__ = ("fn", "args")

    def __init__(self, fn: str, args: Iterable[Node]) -> None:
        if fn not in CALL_FUNCTIONS:
            raise ValueError(f"unknown call {fn!r}")
        self.fn = fn
        self.args = tuple(args)
        self.key = ("call", fn, *(a.key for a in self.args))

    def children(self):
        return self.args


class Compare(Node):
    __slots__ = ("op", "a", "b")

    def __init__(self, op: str, a: Node, b: Node) -> None:
        if op not in COMPARE_OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.op = op
        self.a = a
        self.b = b
        self.key = ("compare", op, a.key, b.key)

    def children(self):
        return (self.a, self.b)


class Select(Node):
    """``a if cond else b`` -- a runtime branch, evaluated per call/lane."""

    __slots__ = ("cond", "a", "b")

    def __init__(self, cond: Compare, a: Node, b: Node) -> None:
        self.cond = cond
        self.a = a
        self.b = b
        self.key = ("select", cond.key, a.key, b.key)

    def children(self):
        return (self.cond, self.a, self.b)


class Ddt(Node):
    """HDL-A ``ddt``: value delegated to the stamp context's integrator.

    ``state`` is the per-device state key suffix (the device name is added
    at stamp time, matching ``BehaviorContext._full_key``).
    """

    __slots__ = ("x", "state")

    def __init__(self, x: Node, state: str) -> None:
        self.x = x
        self.state = str(state)
        self.key = ("ddt", self.state, x.key)

    def children(self):
        return (self.x,)


class Integ(Node):
    """HDL-A ``integ`` with its resolved initial value baked in."""

    __slots__ = ("x", "state", "initial")

    def __init__(self, x: Node, state: str, initial: float) -> None:
        self.x = x
        self.state = str(state)
        self.initial = float(initial)
        self.key = ("integ", self.state, self.initial.hex(), x.key)

    def children(self):
        return (self.x,)


class IRBuilder:
    """Hash-consing factory: structurally equal nodes are interned once."""

    def __init__(self) -> None:
        self._interned: dict[tuple, Node] = {}

    def _intern(self, node: Node) -> Node:
        return self._interned.setdefault(node.key, node)

    def const(self, value: float) -> Const:
        return self._intern(Const(value))

    def input(self, kind: str, name: str) -> Input:
        return self._intern(Input(kind, name))

    def unary(self, op: str, x: Node) -> Node:
        return self._intern(Unary(op, x))

    def binary(self, op: str, a: Node, b: Node) -> Node:
        if isinstance(a, Const) and isinstance(b, Const):
            return self.const(_fold_binary(op, a.value, b.value))
        return self._intern(Binary(op, a, b))

    def call(self, fn: str, *args: Node) -> Node:
        return self._intern(Call(fn, args))

    def compare(self, op: str, a: Node, b: Node) -> Compare:
        return self._intern(Compare(op, a, b))

    def select(self, cond: Compare, a: Node, b: Node) -> Node:
        return self._intern(Select(cond, a, b))

    def ddt(self, x: Node, state: str) -> Node:
        return self._intern(Ddt(x, state))

    def integ(self, x: Node, state: str, initial: float) -> Node:
        return self._intern(Integ(x, state, initial))


def _fold_binary(op: str, a: float, b: float) -> float:
    # Constant folding uses the same Python float ops the interpreter would,
    # so folded results are bitwise what the interpreter computes.
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        return a / b
    return a ** b


def walk(roots: Iterable[Node]):
    """Post-order walk over the unique nodes reachable from ``roots``."""
    seen: set[int] = set()
    order: list[Node] = []

    def visit(node: Node) -> None:
        if id(node) in seen:
            return
        seen.add(id(node))
        for child in node.children():
            visit(child)
        order.append(node)

    for root in roots:
        visit(root)
    return order


def fingerprint(payload: Iterable) -> str:
    """Stable SHA-256 digest of a canonical (nested tuple/str) payload."""
    digest = hashlib.sha256()
    _feed(digest, payload)
    return digest.hexdigest()


def _feed(digest, obj) -> None:
    if isinstance(obj, str):
        digest.update(b"s")
        digest.update(obj.encode())
    elif isinstance(obj, (tuple, list)):
        digest.update(b"(")
        for item in obj:
            _feed(digest, item)
        digest.update(b")")
    elif isinstance(obj, bool):
        digest.update(b"b1" if obj else b"b0")
    elif isinstance(obj, int):
        digest.update(f"i{obj}".encode())
    elif isinstance(obj, float):
        digest.update(f"f{obj.hex()}".encode())
    elif obj is None:
        digest.update(b"n")
    else:  # pragma: no cover - defensive
        digest.update(repr(obj).encode())
    digest.update(b";")
