"""Kernel code generation from the traced IR.

Four kernel flavors are generated from one :class:`~repro.hdl.compile.trace.
TracedVariant`, all as plain Python source ``exec``-compiled once and cached
process-wide by the variant's structural fingerprint (the same
content-hash idea as :func:`repro.linalg.cache.matrix_fingerprint`):

``jac``
    Scalar residual + Jacobian kernel.  Mirrors the AD-dual interpreter
    *formula by formula* -- including the interpreter's own algebra quirks
    (division computes ``a * (1/b)``, ``d(a*b) = va*db + vb*da`` in that
    order, subtrees free of seeded unknowns use plain float arithmetic
    exactly as the interpreter's float/dual coercion does) -- so compiled
    stamps are bit-identical to interpreted ones.
``value``
    Scalar residual/record kernel mirroring the interpreter's *float mode*
    (``with_jacobian=False``), used by residual-only assemblies and the
    record pass.
``vector``
    Lane-vectorized residual + Jacobian kernel over ``(B,)`` numpy lanes
    for :class:`~repro.circuit.mna.BatchStampContext`; generated only for
    guard-free variants.
``dfdp``
    Scalar value + ``dF/dp`` kernel differentiating with respect to the
    device parameters, honoring the same dual-seeding contract the
    sensitivity layer uses when it seeds parameters as AD duals.

All kernels share one calling convention::

    kernel(ctx, _keys, *inputs) -> (values, extras) | None

where ``inputs`` follow the variant's input layout, ``_keys`` are the
device-qualified state keys for ``ctx.ddt``/``ctx.integ``, and ``None``
means a guard failed (caller re-traces or falls back to the interpreter).
Derivative semantics of the state operators come from the context's
discretization coefficients, matching the dual chain rule through
``Integrator.differentiate``/``integrate`` term by term.
"""

from __future__ import annotations

import math

import numpy as np

from ...telemetry import registry
from . import ir

__all__ = ["KernelSet", "compile_variant", "cache_info", "clear_cache"]

#: Sentinel for a derivative that is exactly the seed (d(leaf)/d(leaf)).
_ONE = object()

#: ``dfn`` factor expressions mirroring :mod:`repro.ad.functions` (``{v}`` is
#: the argument value, ``{r}`` the function value).
_DFN = {
    "sqrt": "0.5 / {r}",
    "exp": "{r}",
    "log": "1.0 / {v}",
    "sin": "{m}.cos({v})",
    "cos": "-{m}.sin({v})",
    "tan": "1.0 + {r} * {r}",
    "sinh": "{m}.cosh({v})",
    "cosh": "{m}.sinh({v})",
    "tanh": "1.0 - {r} * {r}",
    "atan": "1.0 / (1.0 + {v} * {v})",
    "asin": "1.0 / {m}.sqrt(1.0 - {v} * {v})",
    "acos": "-1.0 / {m}.sqrt(1.0 - {v} * {v})",
}


class _VectorUnsupported(Exception):
    """The variant needs scalar-only constructs (guards, dual exponents)."""


def _literal(value: float) -> str:
    """Python source literal that round-trips the float exactly."""
    return repr(float(value))


class _Writer:
    """Shared machinery for one generated kernel function."""

    def __init__(self, variant, flavor: str) -> None:
        self.variant = variant
        self.flavor = flavor
        self.vector = flavor == "vector"
        self.lines: list[str] = []
        self.names: dict[int, str] = {}
        self.emitted: set[int] = set()
        self.serial = 0
        self.shared: dict[tuple, str] = {}
        self.dmemo: dict[tuple[int, int], object] = {}
        self.math = "np" if self.vector else "math"
        # Seed leaves: which Input leaves the derivative pass differentiates
        # against.  jac/vector seed the MNA unknowns, dfdp seeds parameters.
        if flavor in ("jac", "vector"):
            kinds = ("across", "unknown")
        elif flavor == "dfdp":
            kinds = ("param",)
        else:
            kinds = ()
        self.seeds = [(kind, name) for kind, name in variant.inputs
                      if kind in kinds]
        self.args = {pair: f"i{pos}" for pos, pair in enumerate(variant.inputs)}
        self.state_index = {suffix: pos for pos, suffix
                            in enumerate(variant.state_suffixes)}
        self.dual: dict[int, bool] = {}
        self.need_c0 = False
        self.need_ci = False

    # ------------------------------------------------------------ dual marking
    def is_dual(self, node: ir.Node) -> bool:
        """Whether the interpreter would carry an AD dual at this node.

        Mirrors dual/float coercion: a node is dual iff its value depends on
        a seeded leaf; ``sign`` strips duals.  Non-dual subtrees must use
        plain float arithmetic to stay bit-identical.
        """
        cached = self.dual.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, ir.Input):
            result = (node.kind, node.name) in self.seeds
        elif isinstance(node, ir.Const):
            result = False
        elif isinstance(node, ir.Call) and node.fn == "sign":
            result = False
        elif isinstance(node, ir.Select):
            result = self.is_dual(node.a) or self.is_dual(node.b)
        elif isinstance(node, ir.Compare):
            result = False
        else:
            result = any(self.is_dual(child) for child in node.children())
        self.dual[id(node)] = result
        return result

    # ---------------------------------------------------------------- plumbing
    def fresh(self, prefix: str = "t") -> str:
        self.serial += 1
        return f"{prefix}{self.serial}"

    def line(self, text: str) -> None:
        self.lines.append(text)

    def assign(self, expr: str, prefix: str = "t") -> str:
        name = self.fresh(prefix)
        self.line(f"{name} = {expr}")
        return name

    def shared_temp(self, key: tuple, expr_fn) -> str:
        name = self.shared.get(key)
        if name is None:
            name = self.shared[key] = self.assign(expr_fn(), "s")
        return name

    # ----------------------------------------------------------- forward value
    def emit(self, node: ir.Node) -> str:
        """Emit (once) the value computation of ``node``; return its name."""
        if isinstance(node, ir.Const):
            return _literal(node.value)
        if isinstance(node, ir.Input):
            return self.args[(node.kind, node.name)]
        known = self.names.get(id(node))
        if known is not None:
            return known
        name = self._emit_value(node)
        self.names[id(node)] = name
        return name

    def _emit_value(self, node: ir.Node) -> str:
        if isinstance(node, ir.Unary):
            x = self.emit(node.x)
            return self.assign(f"-{x}" if node.op == "neg" else f"+{x}")
        if isinstance(node, ir.Compare):
            a, b = self.emit(node.a), self.emit(node.b)
            return self.assign(f"{a} {node.op} {b}", "c")
        if isinstance(node, ir.Select):
            cond = self.emit(node.cond)
            a, b = self.emit(node.a), self.emit(node.b)
            if self.vector:
                return self.assign(f"np.where({cond}, {a}, {b})")
            return self.assign(f"{a} if {cond} else {b}")
        if isinstance(node, ir.Call):
            return self._emit_call(node)
        if isinstance(node, ir.Ddt):
            x = self.emit(node.x)
            return self.assign(f"ctx.ddt(_keys[{self.state_index[node.state]}], {x})")
        if isinstance(node, ir.Integ):
            x = self.emit(node.x)
            return self.assign(
                f"ctx.integ(_keys[{self.state_index[node.state]}], {x}, "
                f"{_literal(node.initial)})")
        assert isinstance(node, ir.Binary)
        return self._emit_binary(node)

    def _emit_call(self, node: ir.Call) -> str:
        args = ", ".join(self.emit(a) for a in node.args)
        if node.fn == "abs":
            if self.is_dual(node):
                # Dual.__abs__ branches on value < 0 and negates; plain
                # floats go through C fabs.
                v = self.emit(node.args[0])
                cond = self.shared_temp(("absc", id(node)),
                                        lambda: f"{v} < 0.0")
                if self.vector:
                    return self.assign(f"np.where({cond}, -{v}, {v})")
                return self.assign(f"-{v} if {cond} else {v}")
            return self.assign(f"np.abs({args})" if self.vector
                               else f"abs({args})")
        if node.fn == "sign":
            if self.vector:
                return self.assign(f"np.sign({args})")
            return self.assign(f"float(np.sign({args}))")
        return self.assign(f"{self.math}.{node.fn}({args})")

    def _emit_binary(self, node: ir.Binary) -> str:
        a, b = self.emit(node.a), self.emit(node.b)
        dual = self.flavor != "value" and self.is_dual(node)
        if node.op == "/" and dual:
            # Dual.__truediv__: inv = 1/b; value = a*inv (two roundings --
            # mirrored so compiled values match dual-interpreted ones).
            inv = self.shared_temp(("inv", id(node)), lambda: f"1.0 / {b}")
            return self.assign(f"{a} * {inv}")
        if node.op == "**" and dual:
            return self._emit_pow(node, a, b)
        return self.assign(f"{a} {node.op} {b}")

    def _emit_pow(self, node: ir.Binary, a: str, b: str) -> str:
        if isinstance(node.b, ir.Const):
            # Exponent known at compile time (the e == 0 case folded during
            # tracing); Dual.__pow__ computes value ** exponent directly.
            return self.assign(f"{a} ** {b}")
        if self.is_dual(node.b):
            # dual ** dual: the interpreter raises for non-positive bases;
            # bail to it so the error surfaces identically.
            if self.vector:
                raise _VectorUnsupported("dual exponent")
            self.line(f"if {a} <= 0.0: return None")
            return self.assign(f"{a} ** {b}")
        # Runtime exponent that carries no seeds: Dual.__pow__'s constant-
        # exponent branch with its e == 0 special case, decided per call.
        if self.vector:
            return self.assign(f"np.where({b} == 0.0, 1.0, {a} ** {b})")
        return self.assign(f"1.0 if {b} == 0.0 else {a} ** {b}")

    # ------------------------------------------------------------- derivatives
    def deriv(self, node: ir.Node, k: int):
        """Derivative of ``node`` w.r.t. seed ``k``: None, _ONE or a name."""
        if not self.is_dual(node):
            return None
        key = (id(node), k)
        if key in self.dmemo:
            return self.dmemo[key]
        result = self._deriv(node, k)
        self.dmemo[key] = result
        return result

    def _dname(self, expr: str) -> str:
        return self.assign(expr, "d")

    def _deriv(self, node: ir.Node, k: int):
        if isinstance(node, ir.Input):
            return _ONE if (node.kind, node.name) == self.seeds[k] else None
        if isinstance(node, ir.Unary):
            dx = self.deriv(node.x, k)
            if node.op == "pos" or dx is None:
                return dx
            return self._dname("-1.0" if dx is _ONE else f"-{dx}")
        if isinstance(node, ir.Select):
            cond = self.emit(node.cond)
            da, db = self.deriv(node.a, k), self.deriv(node.b, k)
            if da is None and db is None:
                return None
            da = "1.0" if da is _ONE else (da or "0.0")
            db = "1.0" if db is _ONE else (db or "0.0")
            if self.vector:
                return self._dname(f"np.where({cond}, {da}, {db})")
            return self._dname(f"{da} if {cond} else {db}")
        if isinstance(node, ir.Call):
            return self._deriv_call(node, k)
        if isinstance(node, ir.Ddt):
            dx = self.deriv(node.x, k)
            if dx is None:
                return None
            self.need_c0 = True
            return self._dname("_c0" if dx is _ONE else f"_c0 * {dx}")
        if isinstance(node, ir.Integ):
            dx = self.deriv(node.x, k)
            if dx is None:
                return None
            self.need_ci = True
            return self._dname("_ci" if dx is _ONE else f"_ci * {dx}")
        assert isinstance(node, ir.Binary)
        return self._deriv_binary(node, k)

    def _deriv_call(self, node: ir.Call, k: int):
        dx = self.deriv(node.args[0], k)
        if dx is None:
            return None
        if node.fn == "abs":
            v = self.emit(node.args[0])
            cond = self.shared_temp(("absc", id(node)), lambda: f"{v} < 0.0")
            da = "1.0" if dx is _ONE else dx
            if self.vector:
                return self._dname(f"np.where({cond}, -{da}, {da})")
            return self._dname(f"-{da} if {cond} else {da}")
        template = _DFN[node.fn]
        factor = self.shared_temp(("dfn", id(node)), lambda: template.format(
            v=self.emit(node.args[0]), r=self.emit(node), m=self.math))
        return self._dname(factor if dx is _ONE else f"{factor} * {dx}")

    def _deriv_binary(self, node: ir.Binary, k: int):
        da, db = self.deriv(node.a, k), self.deriv(node.b, k)
        if node.op in ("+", "-"):
            if da is None and db is None:
                return None
            if node.op == "+":
                if db is None:
                    return da
                if da is None:
                    return db
                return self._dname(
                    f"{'1.0' if da is _ONE else da} + "
                    f"{'1.0' if db is _ONE else db}")
            if db is None:
                return da
            db_expr = "1.0" if db is _ONE else db
            if da is None:
                return self._dname(f"-{db_expr}")
            return self._dname(f"{'1.0' if da is _ONE else da} - {db_expr}")
        va, vb = self.emit(node.a), self.emit(node.b)
        if node.op == "*":
            # d(a*b) = va*db + vb*da, in the interpreter's operand order.
            terms = []
            if db is not None:
                terms.append(va if db is _ONE else f"{va} * {db}")
            if da is not None:
                terms.append(vb if da is _ONE else f"{vb} * {da}")
            if not terms:
                return None
            return self._dname(" + ".join(terms))
        if node.op == "/":
            inv = self.shared[("inv", id(node))]
            if db is None:
                if da is None:
                    return None
                return self._dname(inv if da is _ONE
                                   else f"{da} * {inv}")
            value = self.emit(node)
            db_expr = "1.0" if db is _ONE else db
            da_expr = "1.0" if da is _ONE else (da or "0.0")
            return self._dname(f"({da_expr} - {value} * {db_expr}) * {inv}")
        assert node.op == "**"
        return self._deriv_pow(node, k, da, db, va, vb)

    def _deriv_pow(self, node: ir.Binary, k: int, da, db, va: str, vb: str):
        if isinstance(node.b, ir.Const) or not self.is_dual(node.b):
            if da is None:
                return None
            if isinstance(node.b, ir.Const):
                e = node.b.value
                em1 = _literal(e - 1.0)
                factor = self.shared_temp(
                    ("pows", id(node)),
                    lambda: f"{_literal(e)} * {va} ** {em1}")
            elif self.vector:
                factor = self.shared_temp(
                    ("pows", id(node)),
                    lambda: f"np.where({vb} == 0.0, 0.0, "
                            f"{vb} * {va} ** ({vb} - 1.0))")
            else:
                factor = self.shared_temp(
                    ("pows", id(node)),
                    lambda: f"0.0 if {vb} == 0.0 else "
                            f"{vb} * {va} ** ({vb} - 1.0)")
            return self._dname(factor if da is _ONE else f"{factor} * {da}")
        # dual ** dual: value * (db*log(va) + vb*da/va)
        value = self.emit(node)
        log = self.shared_temp(("powlog", id(node)),
                               lambda: f"{self.math}.log({va})")
        terms = []
        if db is not None:
            terms.append(log if db is _ONE else f"{db} * {log}")
        if da is not None:
            terms.append(f"{vb} / {va}" if da is _ONE
                         else f"{vb} * {da} / {va}")
        if not terms:
            return None
        return self._dname(f"{value} * ({' + '.join(terms)})")


def _tuple_expr(items: list[str]) -> str:
    if not items:
        return "()"
    if len(items) == 1:
        return f"({items[0]},)"
    return f"({', '.join(items)})"


def _generate_parts(variant, flavor: str):
    """Generate the structural pieces of one kernel flavor.

    Returns ``(preamble, body, value_names, extras, deriv_rows)`` where
    ``body`` is the guard + straight-line computation (with ``return None``
    guard bails), ``value_names`` name the contribution/equation results in
    order, ``extras`` are the per-output tuple expressions of the kernel's
    second return slot, and ``deriv_rows`` (derivative flavors only) keeps
    the individual per-seed derivative expressions so the runtime's fused
    stamp generator can splice them without unpacking tuples.
    """
    writer = _Writer(variant, flavor)
    if flavor == "vector" and variant.guards:
        raise _VectorUnsupported("guarded variant")
    # Guards first, each as soon as its operands exist: the behavior checked
    # them before computing anything that depends on the guarded condition
    # (e.g. a positivity check before dividing), so hoisting them preserves
    # the interpreter's error behavior.
    for compare, expected in variant.guards:
        cond = writer.emit(compare)
        writer.line(f"if {'not ' if expected else ''}{cond}: return None")
    outputs = ([node for _, node in variant.contributions]
               + [node for _, node in variant.equations])
    value_names = [writer.emit(node) for node in outputs]
    deriv_rows = None
    if flavor == "value":
        extras = [writer.emit(node) for _, node in variant.records]
    else:
        deriv_rows = []
        for node in outputs:
            row = []
            for k in range(len(writer.seeds)):
                d = writer.deriv(node, k)
                row.append("1.0" if d is _ONE else (d or "0.0"))
            deriv_rows.append(row)
        extras = [_tuple_expr(row) for row in deriv_rows]
    preamble = []
    if writer.need_c0:
        preamble.append("_c0 = ctx.ddt_coefficient()")
    if writer.need_ci:
        preamble.append("_ci = ctx.integ_coefficient()")
    # The coefficient temps are referenced by derivative lines only, which
    # always come after every guard/value line that could return early --
    # hoist them to the top for simplicity.
    return preamble, writer.lines, value_names, extras, deriv_rows


def _compose_source(variant, flavor: str, parts) -> str:
    """Assemble a kernel function's source from its generated parts."""
    preamble, body, value_names, extras, _ = parts
    args = ", ".join(f"i{pos}" for pos in range(len(variant.inputs)))
    header = f"def kernel(ctx, _keys{', ' + args if args else ''}):"
    ret = f"return {_tuple_expr(value_names)}, {_tuple_expr(extras)}"
    lines = [header]
    lines.extend(f"    {line}" for line in preamble)
    if flavor == "vector":
        lines.append("    with np.errstate(all='ignore'):")
        lines.extend(f"        {line}" for line in body)
        lines.append(f"        {ret}")
    else:
        lines.extend(f"    {line}" for line in body)
        lines.append(f"    {ret}")
    return "\n".join(lines) + "\n"


def _generate(variant, flavor: str) -> str:
    """Generate the Python source of one kernel flavor."""
    return _compose_source(variant, flavor, _generate_parts(variant, flavor))


def _compile_source(source: str, flavor: str):
    namespace = {"math": math, "np": np}
    exec(compile(source, f"<behavioral-kernel:{flavor}>", "exec"), namespace)
    return namespace["kernel"]


class KernelSet:
    """The compiled kernels of one traced variant (process-wide shared)."""

    __slots__ = ("fingerprint", "inputs", "param_inputs", "diff_inputs",
                 "state_suffixes", "guarded", "contrib_ports", "eq_names",
                 "record_names", "param_defaults", "source", "parts",
                 "scalar", "value", "_vector", "_dfdp")

    def __init__(self, fp: str, variant) -> None:
        self.fingerprint = fp
        self.inputs = variant.inputs
        self.diff_inputs = tuple(p for p in variant.inputs
                                 if p[0] in ("across", "unknown"))
        self.param_inputs = tuple(name for kind, name in variant.inputs
                                  if kind == "param")
        self.state_suffixes = variant.state_suffixes
        self.guarded = bool(variant.guards)
        self.contrib_ports = tuple(name for name, _ in variant.contributions)
        self.eq_names = tuple(name for name, _ in variant.equations)
        self.record_names = tuple(name for name, _ in variant.records)
        self.param_defaults = dict(variant.param_defaults)
        self.parts = {"jac": _generate_parts(variant, "jac"),
                      "value": _generate_parts(variant, "value")}
        self.source = {
            flavor: _compose_source(variant, flavor, self.parts[flavor])
            for flavor in ("jac", "value")}
        self.scalar = _compile_source(self.source["jac"], "jac")
        self.value = _compile_source(self.source["value"], "value")
        self._vector = [variant]  # lazily generated below
        self._dfdp = [variant]

    def vector(self):
        """The lane-vectorized kernel, or None when unsupported."""
        if isinstance(self._vector, list):
            variant = self._vector[0]
            try:
                self.source["vector"] = _generate(variant, "vector")
                self._vector = _compile_source(self.source["vector"], "vector")
            except _VectorUnsupported:
                self._vector = None
        return self._vector

    def dfdp(self):
        """The parameter-derivative kernel (always generatable)."""
        if isinstance(self._dfdp, list):
            variant = self._dfdp[0]
            self.source["dfdp"] = _generate(variant, "dfdp")
            self._dfdp = _compile_source(self.source["dfdp"], "dfdp")
        return self._dfdp


_CACHE: dict[str, KernelSet] = {}


def compile_variant(variant) -> KernelSet:
    """Compile (or fetch from the process-wide cache) a traced variant."""
    fp = ir.fingerprint(variant.fingerprint_payload())
    kernels = _CACHE.get(fp)
    if kernels is not None:
        registry.inc("hdl.compile.cache_hits")
        return kernels
    kernels = KernelSet(fp, variant)
    _CACHE[fp] = kernels
    registry.inc("hdl.compile.count")
    return kernels


def cache_info() -> dict[str, int]:
    """Size of the process-wide kernel cache (for tests/diagnostics)."""
    return {"kernels": len(_CACHE)}


def clear_cache() -> None:
    """Drop every cached kernel (tests only)."""
    _CACHE.clear()
