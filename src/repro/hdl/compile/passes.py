"""IR optimization passes.

Constant folding happens during construction (:meth:`IRBuilder.binary`
folds ``Const op Const`` with the exact float arithmetic the interpreter
would perform) and common-subexpression elimination falls out of the
builder's hash-consing.  This module adds an algebraic simplification pass
restricted to rewrites that are **IEEE-754 exact, including zero signs and
non-finite values** -- the compiled kernels must stay bit-identical to the
interpreter:

====================  =======================================================
``x * 1.0`` → ``x``   exact (likewise ``1.0 * x``)
``x / 1.0`` → ``x``   exact
``x ** 1.0`` → ``x``  exact (C99 F.9.4.4: ``pow(x, 1) == x``)
``x - 0.0`` → ``x``   exact (``-0.0 - 0.0 == -0.0``)
``+x`` → ``x``        exact (unary plus is the identity on floats)
``-(-x)`` → ``x``     exact (negation flips only the sign bit)
====================  =======================================================

Deliberately **not** applied: ``x + 0.0`` / ``0.0 + x`` → ``x`` (wrong for
``x == -0.0``: the sum is ``+0.0``), ``0.0 - x`` → ``-x`` (same zero-sign
hazard) and ``x * 0.0`` → ``0.0`` (wrong sign for negative ``x`` and wrong
value for non-finite ``x``).
"""

from __future__ import annotations

from . import ir

__all__ = ["simplify", "simplify_variant"]


def _is_const(node: ir.Node, value: float) -> bool:
    # hex() comparison distinguishes -0.0 from +0.0, unlike ==.
    return isinstance(node, ir.Const) and node.value.hex() == float(value).hex()


def _rebuild(builder: ir.IRBuilder, node: ir.Node,
             memo: dict[int, ir.Node]) -> ir.Node:
    done = memo.get(id(node))
    if done is not None:
        return done
    result = _rewrite(builder, node, memo)
    memo[id(node)] = result
    return result


def _rewrite(builder: ir.IRBuilder, node: ir.Node,
             memo: dict[int, ir.Node]) -> ir.Node:
    if isinstance(node, (ir.Const, ir.Input)):
        return node
    if isinstance(node, ir.Unary):
        x = _rebuild(builder, node.x, memo)
        if node.op == "pos":
            return x
        if isinstance(x, ir.Unary) and x.op == "neg":
            return x.x
        if isinstance(x, ir.Const):
            return builder.const(-x.value)
        return builder.unary("neg", x)
    if isinstance(node, ir.Binary):
        a = _rebuild(builder, node.a, memo)
        b = _rebuild(builder, node.b, memo)
        if node.op == "*" and (_is_const(b, 1.0) or _is_const(a, 1.0)):
            return a if _is_const(b, 1.0) else b
        if node.op in ("/", "**") and _is_const(b, 1.0):
            return a
        if node.op == "-" and _is_const(b, 0.0):
            return a
        return builder.binary(node.op, a, b)
    if isinstance(node, ir.Call):
        return builder.call(node.fn,
                            *(_rebuild(builder, x, memo) for x in node.args))
    if isinstance(node, ir.Compare):
        return builder.compare(node.op, _rebuild(builder, node.a, memo),
                               _rebuild(builder, node.b, memo))
    if isinstance(node, ir.Select):
        return builder.select(_rebuild(builder, node.cond, memo),
                              _rebuild(builder, node.a, memo),
                              _rebuild(builder, node.b, memo))
    if isinstance(node, ir.Ddt):
        return builder.ddt(_rebuild(builder, node.x, memo), node.state)
    assert isinstance(node, ir.Integ)
    return builder.integ(_rebuild(builder, node.x, memo), node.state,
                         node.initial)


def simplify(builder: ir.IRBuilder, node: ir.Node) -> ir.Node:
    """Simplified (possibly identical) node, interned in ``builder``."""
    return _rebuild(builder, node, {})


def simplify_variant(variant):
    """A new :class:`TracedVariant` with every root simplified."""
    from .trace import TracedVariant

    builder = variant.builder
    memo: dict[int, ir.Node] = {}
    return TracedVariant(
        variant.mode, builder,
        [(_rebuild(builder, compare, memo), outcome)
         for compare, outcome in variant.guards],
        [(name, _rebuild(builder, node, memo))
         for name, node in variant.contributions],
        [(name, _rebuild(builder, node, memo))
         for name, node in variant.equations],
        [(name, _rebuild(builder, node, memo))
         for name, node in variant.records],
        variant.param_defaults)
