"""Behavioral-model compiler: typed IR, passes, and kernel codegen.

Lowers behavioral models -- Python behaviour closures and elaborated HDL-A
architectures alike -- to a typed expression IR by concolic tracing
(:mod:`.trace`), simplifies it with bitwise-exact passes (:mod:`.passes`),
and emits cached scalar and lane-vectorized kernels for residual, Jacobian
and ``dF/dp`` evaluation (:mod:`.codegen`).  :mod:`.runtime` wires the
kernels into ``BehavioralDevice`` stamping with the interpreter retained as
the verified fallback.

Compiled kernels are cached process-wide by a SHA-256 structural
fingerprint (:func:`repro.hdl.compile.ir.fingerprint`), the same
content-keying scheme as :func:`repro.linalg.cache.matrix_fingerprint`;
``hdl.compile.count`` / ``hdl.compile.cache_hits`` telemetry counters track
compiles vs. cache reuse and ``hdl.kernel.eval_s`` histograms kernel time.

Escape hatches: ``SimulationOptions(behavioral_compile=False)`` per run, or
``REPRO_BEHAVIORAL_INTERP=1`` in the environment for everything.
"""

from . import ir, passes
from .codegen import KernelSet, cache_info, clear_cache, compile_variant
from .runtime import (MAX_VARIANTS, batch_ready, compilation_enabled,
                      parameter_gradients, state_for, try_record, try_stamp,
                      try_stamp_batch)
from .trace import TraceError, TracedVariant, trace_behavior

__all__ = [
    "ir", "passes", "KernelSet", "compile_variant", "cache_info",
    "clear_cache", "TraceError", "TracedVariant", "trace_behavior",
    "compile_device", "compilation_enabled", "state_for", "try_stamp",
    "try_record", "batch_ready", "try_stamp_batch", "parameter_gradients",
    "MAX_VARIANTS",
]


def compile_device(device, mode: str = "op", stamp_ctx=None) -> KernelSet:
    """Trace, simplify and compile one device's behaviour for ``mode``.

    Convenience entry point for tests and tooling; the stamping hot path
    goes through :mod:`.runtime`, which additionally manages guard variants
    and fallback state.
    """
    variant = passes.simplify_variant(trace_behavior(device, mode, stamp_ctx))
    return compile_variant(variant)
