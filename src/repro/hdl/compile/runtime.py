"""Runtime integration of compiled behavioral kernels into MNA stamping.

This module owns the per-device compile state (traced variants, permanent
fallbacks) and the stamp-time protocol:

1. ``try_stamp``/``try_record`` run the device's compiled kernels for the
   current analysis mode.  A guard mismatch tries the next variant; when
   every variant misses, the model is re-traced against the live context
   (bounded by :data:`MAX_VARIANTS`) and *this* call is stamped by the
   interpreter -- the trace already wrote the identical pending dynamic
   state, so the interpreter's writes are idempotent.
2. Kernels differentiate with respect to their *across/unknown leaves*
   (circuit-independent, so compiled kernels are shared process-wide); the
   wrapper maps each MNA dependency index to ``leaf * (+/-1)`` at stamp
   time.  Negation is exact in IEEE arithmetic, so compiled Jacobian stamps
   are bitwise what the AD-dual interpreter produces.  When two leaves land
   on one index (ports sharing a non-ground node), the scalar path falls
   back to the interpreter -- the interpreter's in-dual summation order is
   not reconstructable from per-leaf derivatives.
3. The batched path (``try_stamp_batch``) evaluates the lane-vectorized
   kernel once over ``(B,)`` lanes.  It is only offered for devices whose
   single operating-point variant traced without guards
   (:func:`batch_ready`), which is what lets behavioral devices skip the
   per-lane fallback in campaign batches.

Hot-path layout: each compiled :class:`~.codegen.KernelSet` is wrapped in a
per-device :class:`_BoundVariant` holding a pre-resolved input-gather plan
(port objects, parameter sources) and, lazily per MNA system, the stamp
geometry (node/aux indices and the dependency -> leaf sign map), so a stamp
is a plan walk plus one generated-kernel call.

Escape hatches: ``SimulationOptions(behavioral_compile=False)`` and the
``REPRO_BEHAVIORAL_INTERP`` environment variable (checked once per assembly
context, so tests can flip it between runs) both force the interpreter.
"""

from __future__ import annotations

import math
import numbers
import os
import re
from time import perf_counter

import numpy as np

from ... import telemetry
from ...ad import Dual
from ...circuit.mna import BatchStampContext, Integrator, StampContext
from . import codegen, passes
from .trace import trace_behavior

__all__ = ["MAX_VARIANTS", "CompileState", "compilation_enabled",
           "state_for", "try_stamp", "try_record", "batch_ready",
           "try_stamp_batch"]

#: Re-trace budget per (device, mode): after this many traced variants the
#: mode permanently falls back to the interpreter.
MAX_VARIANTS = 8


def _interp_forced() -> bool:
    return bool(os.environ.get("REPRO_BEHAVIORAL_INTERP"))


def compilation_enabled(options) -> bool:
    """Whether kernels may replace the interpreter under these options."""
    if _interp_forced():
        return False
    return bool(getattr(options, "behavioral_compile", True))


def _ctx_enabled(ctx) -> bool:
    """Per-context memo of :func:`compilation_enabled` (contexts are
    per-assembly, so the environment stays responsive between runs while the
    ``os.environ`` lookup leaves the per-stamp path)."""
    on = getattr(ctx, "_hdl_compile_on", None)
    if on is None:
        on = ctx._hdl_compile_on = compilation_enabled(ctx.options)
    return on


class CompileState:
    """Per-device compile bookkeeping (variants per mode, fallbacks)."""

    __slots__ = ("variants", "disabled", "trace_count", "probed", "hot")

    def __init__(self) -> None:
        self.variants: dict[str, list[_BoundVariant]] = {}
        self.disabled: set[str] = set()
        self.trace_count: dict[str, int] = {}
        self.probed = False
        #: ``(mode, want_jacobian) -> (system, fused)``: the fused function
        #: that last stamped successfully, tried first on the next call.
        self.hot: dict[tuple[str, bool], tuple] = {}


def state_for(device) -> CompileState:
    state = getattr(device, "_compile_state", None)
    if state is None:
        state = device._compile_state = CompileState()
    return state


class _ParamFallback(Exception):
    """A kernel parameter is not a plain number right now (e.g. AD-seeded)."""


class _BoundVariant:
    """A process-shared KernelSet bound to one device.

    ``plan`` pre-resolves every kernel input to its source -- ``("a", p, n)``
    port across, ``("u", name)`` extra unknown, ``("b", owner, attr)``
    parameter binding, ``("d", name)`` params-dict entry, ``("c", value)``
    default constant, ``("t",)`` analysis time -- so gathering is a tag
    dispatch with no per-stamp dict lookups.  ``geometry`` caches the MNA
    index map per system (lazily; systems are long-lived across a run).
    """

    __slots__ = ("kernels", "keys", "plan", "geometry")

    def __init__(self, device, kernels: codegen.KernelSet) -> None:
        self.kernels = kernels
        self.keys = tuple((device.name, suffix)
                          for suffix in kernels.state_suffixes)
        plan = []
        for kind, name in kernels.inputs:
            if kind == "across":
                port = device.port(name)
                plan.append(("a", port.p, port.n))
            elif kind == "unknown":
                plan.append(("u", name, None))
            elif kind == "param":
                binding = device.parameter_bindings.get(name)
                if binding is not None:
                    plan.append(("b", binding[0], binding[1]))
                elif name in device.params:
                    plan.append(("d", name, None))
                else:
                    plan.append(("c", kernels.param_defaults[name], None))
            else:  # time
                plan.append(("t", None, None))
        self.plan = tuple(plan)
        self.geometry: _Geometry | None = None


class _Geometry:
    """Per-(bound variant, MNA system) stamp indices.

    ``dep_map`` is the collision-free scalar fast path: one
    ``(dependency index, leaf position, negate)`` triple per dependency that
    a leaf feeds, in the interpreter's dependency order.  ``entries`` keeps
    the full index -> [(leaf, sign)] map for the batched path, which sums
    colliding leaves explicitly.  ``plan`` is the bound gather plan with
    across/unknown sources resolved to solution-vector indices (-1 =
    ground), so scalar input gathering indexes ``ctx.x`` directly.
    """

    __slots__ = ("system", "deps", "entries", "collide", "dep_map",
                 "contribs", "eqs", "plan", "tran", "fused_jac",
                 "fused_value", "fused_record")

    def __init__(self, device, bound: _BoundVariant, ctx) -> None:
        kernels = bound.kernels
        self.system = ctx.system
        self.tran = bool(ctx.is_transient)
        plan = []
        for tag, a, b in bound.plan:
            if tag == "a":
                plan.append(("a", ctx.node_index(a), ctx.node_index(b)))
            elif tag == "u":
                plan.append(("u", ctx.aux_index(device, a), None))
            else:
                plan.append((tag, a, b))
        self.plan = tuple(plan)
        self.deps = device._dependency_indices(ctx.node_index, ctx.aux_index)
        entries: dict[int, list[tuple[int, float]]] = {}
        for pos, (kind, name) in enumerate(kernels.diff_inputs):
            if kind == "across":
                port = device.port(name)
                for node, sign in ((port.p, 1.0), (port.n, -1.0)):
                    idx = ctx.node_index(node)
                    if idx >= 0:
                        entries.setdefault(idx, []).append((pos, sign))
            else:
                idx = ctx.aux_index(device, name)
                entries.setdefault(idx, []).append((pos, 1.0))
        self.entries = entries
        self.collide = any(len(pairs) > 1 for pairs in entries.values())
        self.dep_map = tuple(
            (idx, entries[idx][0][0], entries[idx][0][1] < 0.0)
            for idx in self.deps if idx in entries)
        self.contribs = tuple(
            (ctx.node_index(device.port(name).p),
             ctx.node_index(device.port(name).n))
            for name in kernels.contrib_ports)
        self.eqs = tuple(ctx.aux_index(device, name)
                         for name in kernels.eq_names)
        self.fused_jac = _build_fused(device, bound, self, "jac")
        self.fused_value = _build_fused(device, bound, self, "value")
        self.fused_record = _build_fused(device, bound, self, "record")


def _emit_gather(bound: _BoundVariant, geo: _Geometry, namespace, emit) -> bool:
    """Emit the index-resolved input gather; False if not fusable."""
    if any(tag in ("a", "u") for tag, _, _ in geo.plan):
        emit("    x = ctx.x")
    for pos, (tag, a, b) in enumerate(geo.plan):
        if tag == "a":
            ea = "0.0" if a < 0 else f"float(x[{a}])"
            eb = "0.0" if b < 0 else f"float(x[{b}])"
            emit(f"    i{pos} = {ea} - {eb}")
        elif tag == "u":
            emit(f"    i{pos} = float(x[{a}])")
        elif tag == "b":
            if not isinstance(b, str) or not b.isidentifier():
                return False
            owner = f"_o{pos}"
            namespace[owner] = a
            emit(f"    i{pos} = {owner}.{b}")
            emit(f"    if type(i{pos}) is not float: return False")
        elif tag == "d":
            emit(f"    i{pos} = device.params[{a!r}]")
            emit(f"    if type(i{pos}) is not float: return False")
        elif tag == "c":
            emit(f"    i{pos} = {float(a)!r}")
        else:  # time
            emit(f"    i{pos} = ctx.time")
    return True


_DDT_RE = re.compile(r"^(\w+) = ctx\.ddt\(_keys\[(\d+)\], ([^,()\s]+)\)$")
_INTEG_RE = re.compile(
    r"^(\w+) = ctx\.integ\(_keys\[(\d+)\], ([^,()\s]+), ([^,()\s]+)\)$")


def _splice_kernel(bound: _BoundVariant, geo: _Geometry, namespace, emit,
                   preamble, body) -> bool:
    """Splice the kernel preamble+body, inlining the integrator machinery.

    ``ctx.ddt``/``ctx.integ`` calls are replaced with the exact arithmetic
    and pending-state writes of ``Integrator.differentiate``/``integrate``
    (both methods, non-priming), with state keys pre-bound as constants.
    Priming, a missing integrator or an unset step defer to the generic
    path (``return False``), whose context calls behave -- and raise --
    exactly like the interpreter's.  Returns False when a state call has an
    unexpected shape, making the variant unfusable.
    """
    ddt_lines = [line for line in body if "ctx.ddt(" in line]
    integ_lines = [line for line in body if "ctx.integ(" in line]
    if not ddt_lines and not integ_lines:
        for line in preamble:
            emit("    " + line)
        for line in body:
            emit("    " + line)
        return True
    if any(_DDT_RE.match(line) is None for line in ddt_lines):
        return False
    if any(_INTEG_RE.match(line) is None for line in integ_lines):
        return False
    tran = geo.tran
    if tran:
        namespace["_BE"] = Integrator.BACKWARD_EULER
        emit("    itg = ctx.integrator")
        emit("    if itg is None or itg.priming or itg.h <= 0.0:"
             " return False")
        emit("    _h = itg.h")
        emit("    _be = itg.method == _BE")
        emit("    _vals = itg._values")
        emit("    _pv = itg._pending_values")
        if ddt_lines:
            emit("    _c0v = 1.0 / _h if _be else 2.0 / _h")
            emit("    _drvs = itg._derivs")
            emit("    _pd = itg._pending_derivs")
        if integ_lines:
            emit("    _ints = itg._integrals")
            emit("    _pi = itg._pending_integrals")
    else:
        # The op-mode variants also serve AC assemblies, where the state
        # calls are not the DC no-ops inlined below.
        emit("    if not ctx.is_dc: return False")
    keys = bound.keys
    for line in preamble:
        if line == "_c0 = ctx.ddt_coefficient()":
            emit("    _c0 = _c0v" if tran else "    _c0 = 0.0")
        elif line == "_ci = ctx.integ_coefficient()":
            emit("    _ci = _h if _be else 0.5 * _h" if tran
                 else "    _ci = 0.0")
        else:
            emit("    " + line)
    for line in body:
        m = _DDT_RE.match(line)
        if m is not None:
            t, k, x = m.group(1), int(m.group(2)), m.group(3)
            if not tran:
                emit(f"    {t} = 0.0 * {x}")
                continue
            sk = f"_sk{k}"
            namespace[sk] = keys[k]
            emit(f"    {t} = ({x} - _vals.get({sk}, {x})) * _c0v")
            emit(f"    if not _be: {t} -= _drvs.get({sk}, 0.0)")
            emit(f"    _pv[{sk}] = {x}")
            emit(f"    _pd[{sk}] = {t}")
            continue
        m = _INTEG_RE.match(line)
        if m is not None:
            t, k, x, init = (m.group(1), int(m.group(2)), m.group(3),
                             m.group(4))
            if not tran:
                emit(f"    {t} = 0.0 * {x} + {init}")
                continue
            sk, isk = f"_sk{k}", f"_isk{k}"
            namespace[sk] = keys[k]
            namespace[isk] = ("integ", keys[k])
            emit("    if _be:")
            emit(f"        {t} = _ints.get({sk}, {init}) + _h * {x}")
            emit("    else:")
            emit(f"        {t} = _ints.get({sk}, {init})"
                 f" + 0.5 * _h * ({x} + _vals.get({isk}, {x}))")
            emit(f"    _pv[{isk}] = {x}")
            emit(f"    _pi[{sk}] = {t}")
            continue
        emit("    " + line)
    return True


def _build_fused(device, bound: _BoundVariant, geo: _Geometry, task: str):
    """Generate one fused function of a (variant, system) pair.

    ``task`` is ``"jac"`` (full stamp), ``"value"`` (residual-only stamp) or
    ``"record"`` (output collection).  The generated source splices the
    kernel body between an index-resolved input gather and direct dense
    residual/Jacobian accumulation -- all constants (solution indices,
    stamp rows, leaf signs) baked in -- so the steady-state stamp is a
    single generated function call.  Accumulation order, the ``!= 0.0``
    derivative filter and the exact ``+= value`` / ``-= value`` forms
    replicate ``StampContext.add_*`` element by element, keeping results
    bitwise identical.  Returns None when the variant cannot be fused
    (colliding leaves, exotic parameter bindings).

    Contract of the generated function: truthy result (``True`` / the
    record dict) = done, ``None`` = a guard failed, ``False`` = the generic
    path must take over (non-float parameter, sparse Jacobian assembly).
    """
    if task == "jac" and geo.collide:
        return None
    kernels = bound.kernels
    preamble, body, value_names, extras, rows = (
        kernels.parts["jac" if task == "jac" else "value"])
    namespace = {"math": math, "np": np, "_keys": bound.keys}
    lines = [f"def fused(ctx, device):"]
    emit = lines.append
    if task == "jac":
        # Sparse assemblies accumulate COO triplets; the generic path
        # handles them through ctx.add_jac.
        emit("    if ctx.use_sparse: return False")
    if not _emit_gather(bound, geo, namespace, emit):
        return None
    if not _splice_kernel(bound, geo, namespace, emit, preamble, body):
        return None
    if task == "record":
        items = []
        for port_name, v in zip(kernels.contrib_ports, value_names):
            items.append(f"{f'i({device.name}.{port_name})'!r}: float({v})")
        for rec_name, r in zip(kernels.record_names, extras):
            items.append(
                f"{f'{rec_name}({device.name})'!r}: float(np.real({r}))")
        emit(f"    return {{{', '.join(items)}}}")
        source = "\n".join(lines) + "\n"
        exec(compile(source, "<behavioral-fused-record>", "exec"), namespace)
        return namespace["fused"]
    emit("    res = ctx.res")
    if task == "jac":
        emit("    jac = ctx.jac")

    def emit_res(idx: int, v: str, negate: bool) -> None:
        if idx >= 0:
            emit(f"    res[{idx}] {'-=' if negate else '+='} {v}")

    def emit_jac(target: str, pos: int, neg: bool, row) -> None:
        # dval = (+/-) row[pos]; the generic path filters `dval != 0.0`,
        # which is sign-independent, and `a += -d` == `a -= d` in IEEE.
        d = row[pos]
        if d == "0.0":
            return
        stmt = f"jac[{target}] {'-=' if neg else '+='} {d}"
        if d == "1.0":
            emit(f"    {stmt}")
        else:
            emit(f"    if {d} != 0.0: {stmt}")

    out_pos = 0
    for ip, in_ in geo.contribs:
        v = value_names[out_pos]
        emit_res(ip, v, False)
        emit_res(in_, v, True)
        if task == "jac":
            for idx, pos, neg in geo.dep_map:
                if ip >= 0:
                    emit_jac(f"{ip}, {idx}", pos, neg, rows[out_pos])
                if in_ >= 0:
                    emit_jac(f"{in_}, {idx}", pos, not neg, rows[out_pos])
        out_pos += 1
    for row_index in geo.eqs:
        emit_res(row_index, value_names[out_pos], False)
        if task == "jac":
            for idx, pos, neg in geo.dep_map:
                emit_jac(f"{row_index}, {idx}", pos, neg, rows[out_pos])
        out_pos += 1
    emit("    return True")
    source = "\n".join(lines) + "\n"
    exec(compile(source, "<behavioral-fused-stamp>", "exec"), namespace)
    return namespace["fused"]


def _geometry(device, bound: _BoundVariant, ctx) -> _Geometry:
    geo = bound.geometry
    if geo is None or geo.system is not ctx.system:
        geo = bound.geometry = _Geometry(device, bound, ctx)
    return geo


def _check_param(value) -> float:
    if isinstance(value, (bool, Dual)) or not isinstance(value, numbers.Real):
        raise _ParamFallback()
    return float(value)


def _gather(device, geo: _Geometry, ctx) -> list:
    """Kernel inputs in layout order (scalar contexts; index-resolved plan)."""
    x = ctx.x
    values = []
    for tag, a, b in geo.plan:
        if tag == "a":
            va = 0.0 if a < 0 else float(x[a])
            vb = 0.0 if b < 0 else float(x[b])
            values.append(va - vb)
        elif tag == "b":
            v = getattr(a, b)
            values.append(v if type(v) is float else _check_param(v))
        elif tag == "u":
            values.append(float(x[a]))
        elif tag == "d":
            v = device.params[a]
            values.append(v if type(v) is float else _check_param(v))
        elif tag == "c":
            values.append(a)
        else:  # time
            values.append(ctx.time)
    return values


def _gather_nodes(device, bound: _BoundVariant, ctx) -> list:
    """Node-based gather for batch contexts (``across`` returns lane arrays)."""
    values = []
    for tag, a, b in bound.plan:
        if tag == "a":
            values.append(ctx.across(a) - ctx.across(b))
        elif tag == "b":
            v = getattr(a, b)
            values.append(v if type(v) is float else _check_param(v))
        elif tag == "u":
            values.append(ctx.aux_value(device, a))
        elif tag == "d":
            v = device.params[a]
            values.append(v if type(v) is float else _check_param(v))
        elif tag == "c":
            values.append(a)
        else:  # time
            values.append(ctx.time)
    return values


def _dep_value(entries, idx: int, dlist):
    """Derivative w.r.t. unknown ``idx`` from the per-leaf derivatives."""
    pairs = entries.get(idx)
    if not pairs:
        return 0.0
    total = None
    for pos, sign in pairs:
        term = dlist[pos] if sign > 0 else -dlist[pos]
        total = term if total is None else total + term
    return total


def _retrace(device, state: CompileState, mode: str, stamp_ctx) -> None:
    """Trace a fresh variant (or permanently disable the mode)."""
    count = state.trace_count.get(mode, 0)
    if count >= MAX_VARIANTS:
        state.disabled.add(mode)
        return
    state.trace_count[mode] = count + 1
    try:
        variant = passes.simplify_variant(
            trace_behavior(device, mode, stamp_ctx))
        kernels = codegen.compile_variant(variant)
    except Exception:
        # Untraceable (float() concretization, foreign duals, exceptions on
        # traced values): the interpreter owns this mode from now on.
        state.disabled.add(mode)
        return
    if set(device.extra_unknowns) - set(kernels.eq_names):
        # Declared unknowns without equations: leave the mode to the
        # interpreter, which raises the properly-worded DeviceError.
        state.disabled.add(mode)
        return
    state.variants.setdefault(mode, []).append(_BoundVariant(device, kernels))


def _run_kernel(kernel, ctx, keys, inputs):
    t0 = perf_counter()
    try:
        return kernel(ctx, keys, *inputs)
    finally:
        telemetry.registry.observe("hdl.kernel.eval_s", perf_counter() - t0)


def _scalar_eligible(device, ctx) -> bool:
    if type(ctx) is not StampContext:
        # Batch and sensitivity-seeded subclasses have their own contracts.
        return False
    if ctx.keep_residual_duals or not _ctx_enabled(ctx):
        return False
    integrator = ctx.integrator
    if integrator is not None and integrator.capture_raw:
        # Raw-state capture must store the AD duals themselves.
        return False
    return True


def _select_output(state: CompileState, device, mode: str, ctx,
                   want_jacobian: bool):
    """Run the first variant whose guards hold; None means interpreter."""
    bounds = state.variants.get(mode)
    if bounds is None:
        _retrace(device, state, mode, ctx)
        return None
    timed = telemetry.enabled()
    for bound in bounds:
        geo = bound.geometry
        if geo is None or geo.system is not ctx.system:
            geo = bound.geometry = _Geometry(device, bound, ctx)
        try:
            inputs = _gather(device, geo, ctx)
        except _ParamFallback:
            return None
        kernels = bound.kernels
        kernel = kernels.scalar if want_jacobian else kernels.value
        try:
            if timed:
                out = _run_kernel(kernel, ctx, bound.keys, inputs)
            else:
                out = kernel(ctx, bound.keys, *inputs)
        except (ZeroDivisionError, OverflowError, ValueError):
            # The interpreter performs the same arithmetic; let it raise the
            # properly-worded error (or survive, for dual-order edge cases).
            return None
        if out is not None:
            return bound, geo, out
    _retrace(device, state, mode, ctx)
    return None


def try_stamp(device, ctx) -> bool:
    """Compiled replacement for ``BehavioralDevice.stamp``; False = fallback."""
    if type(ctx) is not StampContext:
        if isinstance(ctx, BatchStampContext):
            return try_stamp_batch(device, ctx)
        return False
    if ctx.keep_residual_duals or not _ctx_enabled(ctx):
        return False
    integrator = ctx.integrator
    if integrator is not None and integrator.capture_raw:
        return False
    state = state_for(device)
    mode = "tran" if ctx.is_transient else "op"
    if mode in state.disabled:
        return False
    want_jacobian = ctx.want_jacobian
    bounds = state.variants.get(mode)
    if bounds is None:
        _retrace(device, state, mode, ctx)
        return False
    if not telemetry.enabled():
        # Steady-state fast path: one fused generated function per variant,
        # with the last successful one memoized and tried first.
        hot_key = (mode, want_jacobian)
        hot = state.hot.get(hot_key)
        if hot is not None and hot[0] is ctx.system:
            try:
                out = hot[1](ctx, device)
            except (ZeroDivisionError, OverflowError, ValueError):
                return False
            if out is True:
                return True
        use_generic = False
        for bound in bounds:
            geo = bound.geometry
            if geo is None or geo.system is not ctx.system:
                geo = bound.geometry = _Geometry(device, bound, ctx)
            fused = geo.fused_jac if want_jacobian else geo.fused_value
            if fused is None:
                use_generic = True
                break
            try:
                out = fused(ctx, device)
            except (ZeroDivisionError, OverflowError, ValueError):
                # The interpreter performs the same arithmetic; let it raise
                # the properly-worded error (or survive the edge case).
                return False
            if out is True:
                state.hot[hot_key] = (ctx.system, fused)
                return True
            if out is False:
                # Parameter is not a plain float: the generic path decides
                # between widening (ints) and interpreter fallback (duals).
                use_generic = True
                break
        if not use_generic:
            # Every fused variant's guards missed.
            _retrace(device, state, mode, ctx)
            return False
    picked = _select_output(state, device, mode, ctx, want_jacobian)
    if picked is None:
        return False
    bound, geo, (values, extras) = picked
    if want_jacobian and geo.collide:
        # Leaves collide on one unknown: only the interpreter's in-dual
        # summation reproduces those derivatives bitwise.
        return False
    out_pos = 0
    for ip, in_ in geo.contribs:
        ctx.add_through(ip, in_, values[out_pos])
        if want_jacobian:
            dlist = extras[out_pos]
            for idx, pos, neg in geo.dep_map:
                dval = -dlist[pos] if neg else dlist[pos]
                if dval != 0.0:
                    ctx.add_through_jac(ip, in_, idx, dval)
        out_pos += 1
    for row in geo.eqs:
        ctx.add_res(row, values[out_pos])
        if want_jacobian:
            dlist = extras[out_pos]
            for idx, pos, neg in geo.dep_map:
                dval = -dlist[pos] if neg else dlist[pos]
                if dval != 0.0:
                    ctx.add_jac(row, idx, dval)
        out_pos += 1
    return True


def try_record(device, ctx):
    """Compiled ``BehavioralDevice.record``; None means use the interpreter."""
    if not _scalar_eligible(device, ctx):
        return None
    state = state_for(device)
    mode = "tran" if ctx.is_transient else "op"
    if mode in state.disabled:
        return None
    bounds = state.variants.get(mode)
    if bounds and not telemetry.enabled():
        # Steady-state fast path: fused value kernel + baked output names.
        for bound in bounds:
            geo = bound.geometry
            if geo is None or geo.system is not ctx.system:
                geo = bound.geometry = _Geometry(device, bound, ctx)
            fused = geo.fused_record
            if fused is None:
                break
            try:
                out = fused(ctx, device)
            except (ZeroDivisionError, OverflowError, ValueError):
                return None
            if out is None:
                continue
            if out is False:
                break
            return out
        else:
            _retrace(device, state, mode, ctx)
            return None
    picked = _select_output(state, device, mode, ctx, want_jacobian=False)
    if picked is None:
        return None
    bound, _geo, (values, records) = picked
    kernels = bound.kernels
    outputs: dict[str, float] = {}
    for port_name, value in zip(kernels.contrib_ports, values):
        outputs[f"i({device.name}.{port_name})"] = float(value)
    for rec_name, value in zip(kernels.record_names, records):
        outputs[f"{rec_name}({device.name})"] = float(np.real(value))
    return outputs


# --------------------------------------------------------------------------- #
# batched (lane-vectorized) path                                              #
# --------------------------------------------------------------------------- #

def _batch_bound(device, state: CompileState):
    """The single guard-free op variant, or None if the device is not
    batch-vectorizable."""
    if "op" in state.disabled:
        return None
    variants = state.variants.get("op")
    if variants is None and not state.probed:
        # Origin probe: trace the op-mode behaviour at the all-zero point so
        # batch eligibility is known before any solve runs.
        state.probed = True
        _retrace(device, state, "op", None)
        variants = state.variants.get("op")
    if not variants or len(variants) != 1:
        return None
    bound = variants[0]
    if bound.kernels.guarded or bound.kernels.vector() is None:
        return None
    return bound


def batch_ready(device, options=None) -> bool:
    """Whether the device can stamp a whole ``BatchStampContext`` at once."""
    if _interp_forced():
        return False
    if options is not None and not compilation_enabled(options):
        return False
    return _batch_bound(device, state_for(device)) is not None


def try_stamp_batch(device, ctx: BatchStampContext) -> bool:
    """Stamp every lane of a batch context with one vector-kernel call."""
    if not _ctx_enabled(ctx):
        return False
    bound = _batch_bound(device, state_for(device))
    if bound is None:
        return False
    kernels = bound.kernels
    try:
        inputs = _gather_nodes(device, bound, ctx)
    except _ParamFallback:
        # Swept (B,) parameter columns: re-fetch allowing arrays.
        inputs = []
        for tag, a, b in bound.plan:
            if tag in ("b", "d"):
                value = getattr(a, b) if tag == "b" else device.params[a]
                if isinstance(value, np.ndarray):
                    inputs.append(np.asarray(value, dtype=float))
                elif isinstance(value, (bool, Dual)) \
                        or not isinstance(value, numbers.Real):
                    return False
                else:
                    inputs.append(float(value))
            elif tag == "a":
                inputs.append(ctx.across(a) - ctx.across(b))
            elif tag == "u":
                inputs.append(ctx.aux_value(device, a))
            elif tag == "c":
                inputs.append(a)
            else:
                inputs.append(ctx.time)
    values, derivs = _run_kernel(kernels.vector(), ctx, bound.keys, inputs)
    geo = _geometry(device, bound, ctx)
    # Stamp in the serial (output, dependency) order so same-cell Jacobian
    # accumulations sum in the same sequence as the scalar path.  Per-lane
    # zero derivatives are added as zeros rather than skipped -- dense batch
    # accumulation tolerates that (the scalar path's ``!= 0.0`` skip only
    # avoids no-op adds).
    out_pos = 0
    for ip, in_ in geo.contribs:
        ctx.add_through(ip, in_, values[out_pos])
        if ctx.want_jacobian:
            dlist = derivs[out_pos]
            for idx in geo.deps:
                dval = _dep_value(geo.entries, idx, dlist)
                if dval is not None and np.ndim(dval) == 0 and dval == 0.0:
                    continue
                ctx.add_through_jac(ip, in_, idx, dval)
        out_pos += 1
    for row in geo.eqs:
        ctx.add_res(row, values[out_pos])
        if ctx.want_jacobian:
            dlist = derivs[out_pos]
            for idx in geo.deps:
                dval = _dep_value(geo.entries, idx, dlist)
                if dval is not None and np.ndim(dval) == 0 and dval == 0.0:
                    continue
                ctx.add_jac(row, idx, dval)
        out_pos += 1
    return True


# --------------------------------------------------------------------------- #
# dF/dp                                                                       #
# --------------------------------------------------------------------------- #

def parameter_gradients(device, ctx, parameter_names=None):
    """Compiled ``dF/dp``: instantaneous partials of the device's residual
    outputs with respect to its parameters, at the context's state.

    Returns ``{output_name: {param: value}}`` with contribution outputs named
    by port and equation outputs by unknown, or ``None`` when the device has
    no applicable compiled variant (guards missed, mode disabled, compile
    off).  Matches the dual-seeding contract of the sensitivity layer: state
    operators contribute ``coefficient * dp`` through the active
    discretization and baked initial values are parameter-independent.
    """
    if not _scalar_eligible(device, ctx):
        return None
    state = state_for(device)
    mode = "tran" if ctx.is_transient else "op"
    if mode in state.disabled:
        return None
    bounds = state.variants.get(mode)
    if bounds is None:
        _retrace(device, state, mode, ctx)
        bounds = state.variants.get(mode)
        if bounds is None:
            return None
    for bound in bounds:
        try:
            inputs = _gather_nodes(device, bound, ctx)
        except _ParamFallback:
            return None
        kernels = bound.kernels
        names = parameter_names
        if names is None:
            names = kernels.param_inputs
        try:
            out = _run_kernel(kernels.dfdp(), ctx, bound.keys, inputs)
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
        if out is None:
            continue
        values, derivs = out
        output_names = kernels.contrib_ports + kernels.eq_names
        result: dict[str, dict[str, float]] = {}
        for out_pos, output in enumerate(output_names):
            row = {}
            for k, param in enumerate(kernels.param_inputs):
                if param in names:
                    row[param] = derivs[out_pos][k]
            result[output] = row
        return result
    return None
