"""Abstract syntax tree node classes for the HDL-A subset.

Expression nodes carry a ``node_id`` assigned by the parser; the elaborator
uses it as the state key of ``ddt``/``integ`` call sites so that dynamic
states have stable identities across analysis modes and Newton iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "Expression", "NumberLiteral", "Identifier", "UnaryOp", "BinaryOp",
    "FunctionCall", "PinAccess",
    "Statement", "Assignment", "Contribution", "IfStatement",
    "GenericDecl", "PinDecl", "VariableDecl", "ProceduralBlock",
    "EntityDecl", "ArchitectureDecl", "Module",
]


# --------------------------------------------------------------------------- expressions
@dataclass
class Expression:
    """Base class for expression nodes."""

    node_id: int = field(default=0, kw_only=True)


@dataclass
class NumberLiteral(Expression):
    """A numeric literal."""

    value: float = 0.0


@dataclass
class Identifier(Expression):
    """A reference to a generic, variable, state or named constant."""

    name: str = ""


@dataclass
class UnaryOp(Expression):
    """Unary operator: ``-x``, ``+x`` or ``not x``."""

    operator: str = "-"
    operand: Expression | None = None


@dataclass
class BinaryOp(Expression):
    """Binary operator node (arithmetic, comparison or logical)."""

    operator: str = "+"
    left: Expression | None = None
    right: Expression | None = None


@dataclass
class FunctionCall(Expression):
    """Call of a built-in analog or math function (``ddt``, ``sqrt``, ...)."""

    name: str = ""
    arguments: tuple[Expression, ...] = ()


@dataclass
class PinAccess(Expression):
    """Access to a branch quantity: ``[a, b].v`` or ``[c, d].tv``."""

    pin_p: str = ""
    pin_n: str = ""
    quantity: str = "v"


# --------------------------------------------------------------------------- statements
@dataclass
class Statement:
    """Base class for statements."""

    node_id: int = field(default=0, kw_only=True)


@dataclass
class Assignment(Statement):
    """Variable/state assignment ``name := expr;``."""

    target: str = ""
    value: Expression | None = None


@dataclass
class Contribution(Statement):
    """Branch contribution ``[p, n].quantity %= expr;``."""

    pin_p: str = ""
    pin_n: str = ""
    quantity: str = "i"
    value: Expression | None = None


@dataclass
class IfStatement(Statement):
    """``IF / ELSIF / ELSE`` conditional statement."""

    #: (condition, statements) pairs for the IF and each ELSIF branch.
    branches: tuple[tuple[Expression, tuple[Statement, ...]], ...] = ()
    #: Statements of the ELSE branch (may be empty).
    else_branch: tuple[Statement, ...] = ()


# --------------------------------------------------------------------------- declarations
@dataclass(frozen=True)
class GenericDecl:
    """One generic (model parameter) of an entity."""

    name: str
    type_name: str = "analog"
    default: float | None = None


@dataclass(frozen=True)
class PinDecl:
    """One pin (analog terminal) of an entity, typed by nature name."""

    name: str
    nature: str


@dataclass(frozen=True)
class VariableDecl:
    """A VARIABLE / STATE / CONSTANT declaration in an architecture."""

    name: str
    kind: str  # "variable" | "state" | "constant"
    type_name: str = "analog"
    default: float | None = None


@dataclass
class ProceduralBlock:
    """``PROCEDURAL FOR <domains> =>`` statement group."""

    domains: tuple[str, ...] = ()
    statements: tuple[Statement, ...] = ()

    def applies_to(self, domain: str) -> bool:
        """True when this block is active in the given analysis domain."""
        return domain.lower() in self.domains


@dataclass
class EntityDecl:
    """An ENTITY declaration: interface of a model."""

    name: str = ""
    generics: tuple[GenericDecl, ...] = ()
    pins: tuple[PinDecl, ...] = ()

    def generic_names(self) -> tuple[str, ...]:
        return tuple(g.name for g in self.generics)

    def pin_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.pins)

    def pin(self, name: str) -> PinDecl | None:
        for pin in self.pins:
            if pin.name.lower() == name.lower():
                return pin
        return None


@dataclass
class ArchitectureDecl:
    """An ARCHITECTURE body bound to an entity."""

    name: str = ""
    entity_name: str = ""
    declarations: tuple[VariableDecl, ...] = ()
    blocks: tuple[ProceduralBlock, ...] = ()

    def states(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.declarations if d.kind == "state")

    def variables(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.declarations if d.kind != "state")


@dataclass
class Module:
    """A parsed HDL-A source file: entities and architectures by name."""

    entities: dict[str, EntityDecl] = field(default_factory=dict)
    architectures: dict[str, list[ArchitectureDecl]] = field(default_factory=dict)

    def entity(self, name: str) -> EntityDecl | None:
        return self.entities.get(name.lower())

    def architecture_of(self, entity_name: str, architecture: str | None = None
                        ) -> ArchitectureDecl | None:
        candidates = self.architectures.get(entity_name.lower(), [])
        if not candidates:
            return None
        if architecture is None:
            return candidates[0]
        for arch in candidates:
            if arch.name.lower() == architecture.lower():
                return arch
        return None

    def merge(self, other: "Module") -> "Module":
        """Merge another module's declarations into this one (returns self)."""
        self.entities.update(other.entities)
        for key, archs in other.architectures.items():
            self.architectures.setdefault(key, []).extend(archs)
        return self
