"""HDL-A source-code generation.

PXT's last step is to emit an HDL-A behavioral model of the characterized
device ("A HDL-A model is then generated ...").  This module provides the
text emitters used for that purpose, plus the reference listing of the
paper's transverse electrostatic transducer (Listing 1) used by the tests
and documentation.

Everything generated here parses back through :func:`repro.hdl.parse` and
elaborates into a working device -- the round trip is covered by the
integration tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import HDLError

__all__ = [
    "generate_entity",
    "generate_architecture",
    "generate_model",
    "table1d_expression",
    "format_number",
    "LISTING1_SOURCE",
]


def format_number(value: float) -> str:
    """Format a float as an HDL-A literal (always with a decimal or exponent)."""
    text = repr(float(value))
    if "e" in text or "." in text or "inf" in text or "nan" in text:
        return text
    return text + ".0"


#: Backwards-compatible alias for the pre-public name.
_format_number = format_number


def generate_entity(name: str, generics: Mapping[str, float | None],
                    pins: Mapping[str, str]) -> str:
    """Emit an ENTITY declaration.

    ``generics`` maps generic names to default values (``None`` for no
    default); ``pins`` maps pin names to nature names.  Pins of the same
    nature are grouped on one line, as in Listing 1.
    """
    if not pins:
        raise HDLError(f"entity {name!r} needs at least one pin")
    lines = [f"ENTITY {name} IS"]
    if generics:
        parts = []
        for generic, default in generics.items():
            if default is None:
                parts.append(f"{generic} : analog")
            else:
                parts.append(f"{generic} : analog := {format_number(default)}")
        lines.append(f"  GENERIC ({'; '.join(parts)});")
    groups: dict[str, list[str]] = {}
    for pin, nature in pins.items():
        groups.setdefault(nature, []).append(pin)
    pin_parts = [f"{', '.join(names)} : {nature}" for nature, names in groups.items()]
    lines.append(f"  PIN ({'; '.join(pin_parts)});")
    lines.append(f"END ENTITY {name};")
    return "\n".join(lines)


def generate_architecture(entity_name: str, *, architecture_name: str = "a",
                          variables: Sequence[str] = (),
                          states: Sequence[str] = (),
                          init_statements: Sequence[str] = (),
                          body_statements: Sequence[str] = (),
                          body_domains: str = "dc, ac, transient") -> str:
    """Emit an ARCHITECTURE with an init block and one main procedural block.

    The statement sequences are pre-formatted HDL-A statements *without*
    trailing semicolons (added here) so callers can build them with ordinary
    string formatting.
    """
    if not body_statements:
        raise HDLError("an architecture needs at least one body statement")
    lines = [f"ARCHITECTURE {architecture_name} OF {entity_name} IS"]
    if variables:
        lines.append(f"  VARIABLE {', '.join(variables)} : analog;")
    if states:
        lines.append(f"  STATE {', '.join(states)} : analog;")
    lines.append("BEGIN")
    lines.append("  RELATION")
    if init_statements:
        lines.append("    PROCEDURAL FOR init =>")
        lines.extend(f"      {statement.rstrip(';')};" for statement in init_statements)
    lines.append(f"    PROCEDURAL FOR {body_domains} =>")
    lines.extend(f"      {statement.rstrip(';')};" for statement in body_statements)
    lines.append("  END RELATION;")
    lines.append(f"END ARCHITECTURE {architecture_name};")
    return "\n".join(lines)


def generate_model(name: str, generics: Mapping[str, float | None],
                   pins: Mapping[str, str], *,
                   variables: Sequence[str] = (),
                   states: Sequence[str] = (),
                   init_statements: Sequence[str] = (),
                   body_statements: Sequence[str] = (),
                   header_comment: str | None = None) -> str:
    """Emit a complete entity + architecture source file."""
    parts = []
    if header_comment:
        parts.extend(f"-- {line}" for line in header_comment.splitlines())
    parts.append(generate_entity(name, generics, pins))
    parts.append("")
    parts.append(generate_architecture(
        name, variables=variables, states=states,
        init_statements=init_statements, body_statements=body_statements))
    return "\n".join(parts) + "\n"


def table1d_expression(argument: str, xs: Iterable[float], ys: Iterable[float]) -> str:
    """Emit a ``table1d`` call for a piecewise-linear macromodel.

    ``argument`` is the HDL expression of the abscissa (e.g. ``"x"`` or
    ``"V"``); ``xs`` must be strictly increasing.
    """
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise HDLError("table1d needs matching abscissa/ordinate lists")
    if len(xs) < 2:
        raise HDLError("table1d needs at least two breakpoints")
    if any(b <= a for a, b in zip(xs, xs[1:])):
        raise HDLError("table1d breakpoints must be strictly increasing")
    pairs = ", ".join(
        f"{format_number(x)}, {format_number(y)}" for x, y in zip(xs, ys))
    return f"table1d({argument}, {pairs})"


#: The paper's Listing 1 (transverse electrostatic transducer), reproduced in
#: the HDL-A subset accepted by this package.  The only edits relative to the
#: printed listing are purely syntactic: the duplicate use of ``d`` as both a
#: generic and a pin name is resolved by renaming the pins to ``c, e`` (the
#: original would shadow the gap parameter), and the procedural domains
#: include ``dc`` so the model defines its operating point.
LISTING1_SOURCE = """
ENTITY eletran IS
  GENERIC (A, d, er : analog);
  PIN (a, b : electrical; c, e : mechanical1);
END ENTITY eletran;

ARCHITECTURE a OF eletran IS
  VARIABLE e0, x : analog;
  STATE V, S : analog;
BEGIN
  RELATION
    PROCEDURAL FOR init =>
      e0 := 8.8542e-12;
    PROCEDURAL FOR dc, ac, transient =>
      V := [a, b].v;
      S := [c, e].tv;
      x := integ(S);
      [a, b].i %= e0*er*A/(d + x)*ddt(V);
      [c, e].f %= -e0*er*A*V*V/(2.0*(d+x)*(d+x));
  END RELATION;
END ARCHITECTURE a;
"""
