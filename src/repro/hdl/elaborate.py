"""Elaboration: turn an analyzed HDL-A model into a simulatable device.

``instantiate`` binds an entity/architecture pair to

* concrete generic values (the model parameters),
* concrete circuit nodes for every pin,

and produces a :class:`~repro.circuit.devices.behavioral.BehavioralDevice`
whose behaviour callable *interprets* the architecture's procedural blocks:

* the ``init`` block runs first (constants like ``e0 := 8.8542e-12``),
* then the block whose domain list matches the active analysis
  (``dc`` -> a ``dc`` block if present, otherwise the ``ac, transient``
  block; ``transient``/``ac`` likewise),
* assignments build up a local environment, pin accesses read the port
  across variables, ``ddt``/``integ`` map onto the behaviour context's
  operators with state keys derived from the AST node ids, and ``%=``
  contributions accumulate into the ports.

The interpreter works on dual numbers transparently, so a parsed HDL model
gets exact Newton Jacobians and AC linearization for free -- the property the
paper attributes to HDL-A models being "valid for the dc, ac and transient
SPICE analysis domains".
"""

from __future__ import annotations

import math
from typing import Mapping

from ..circuit.devices.behavioral import BehavioralDevice, BehaviorContext, Port
from ..circuit.netlist import Node
from ..errors import HDLElaborationError
from ..natures import get_nature
from .ast_nodes import (
    Assignment,
    BinaryOp,
    Contribution,
    Expression,
    FunctionCall,
    Identifier,
    IfStatement,
    Module,
    NumberLiteral,
    PinAccess,
    Statement,
    UnaryOp,
)
from .semantic import AnalyzedModel, analyze
from .stdlib import ANALOG_OPERATORS, BUILTIN_FUNCTIONS

__all__ = ["HDLEntityInstance", "instantiate"]


class HDLEntityInstance:
    """A bound entity/architecture ready to produce behavioral devices.

    Splitting instantiation into this object and :meth:`build_device` lets
    callers (e.g. the PXT round-trip tests) reuse one analyzed model for many
    devices with different generic values.
    """

    def __init__(self, model: AnalyzedModel) -> None:
        self.model = model

    # ------------------------------------------------------------------ binding
    def build_device(self, name: str, generics: Mapping[str, float],
                     pins: Mapping[str, Node],
                     initial_states: Mapping[str, float] | None = None) -> BehavioralDevice:
        """Bind generics and pins, returning the behavioral device."""
        entity = self.model.entity
        resolved_generics: dict[str, float] = {}
        provided = {key.lower(): float(value) for key, value in generics.items()}
        for generic in entity.generics:
            key = generic.name.lower()
            if key in provided:
                resolved_generics[key] = provided.pop(key)
            elif generic.default is not None:
                resolved_generics[key] = float(generic.default)
            else:
                raise HDLElaborationError(
                    f"generic {generic.name!r} of entity {entity.name!r} has no value")
        if provided:
            raise HDLElaborationError(
                f"unknown generics for entity {entity.name!r}: {sorted(provided)}")

        resolved_pins: dict[str, Node] = {}
        given_pins = {key.lower(): node for key, node in pins.items()}
        for pin in entity.pins:
            key = pin.name.lower()
            if key not in given_pins:
                raise HDLElaborationError(
                    f"pin {pin.name!r} of entity {entity.name!r} is not connected")
            resolved_pins[key] = given_pins.pop(key)
        if given_pins:
            raise HDLElaborationError(
                f"unknown pins for entity {entity.name!r}: {sorted(given_pins)}")

        ports = []
        for pin_p, pin_n in self.model.port_pairs:
            nature = get_nature(self.model.pin_natures[pin_p])
            ports.append(Port(name=self.model.port_name(pin_p, pin_n),
                              p=resolved_pins[pin_p], n=resolved_pins[pin_n],
                              nature=nature))

        interpreter = _Interpreter(self.model, resolved_generics)
        return BehavioralDevice(
            name,
            ports,
            interpreter,
            params=dict(resolved_generics),
            state_initials=dict(initial_states or {}),
        )


def instantiate(module: Module, entity_name: str, *, name: str,
                generics: Mapping[str, float], pins: Mapping[str, Node],
                architecture: str | None = None,
                initial_states: Mapping[str, float] | None = None) -> BehavioralDevice:
    """Analyze, bind and elaborate an entity in one call (the common path)."""
    model = analyze(module, entity_name, architecture)
    return HDLEntityInstance(model).build_device(name, generics, pins, initial_states)


# --------------------------------------------------------------------------- interpreter
class _Interpreter:
    """Behaviour callable interpreting the architecture's procedural blocks."""

    def __init__(self, model: AnalyzedModel, generics: Mapping[str, float]) -> None:
        self.model = model
        self.generics = dict(generics)

    # The behaviour protocol of BehavioralDevice: __call__(ctx).
    def __call__(self, ctx: BehaviorContext) -> None:
        env: dict[str, object] = dict(self.generics)
        env["pi"] = math.pi
        env["temperature"] = 300.15
        env["time"] = ctx.time
        domain = self._domain_for(ctx.analysis)
        blocks = list(self.model.architecture.blocks)
        init_blocks = [block for block in blocks if block.applies_to("init")]
        main_blocks = [block for block in blocks
                       if block.applies_to(domain) and not block.applies_to("init")]
        if not main_blocks:
            # Fall back to any non-init block (a model written only for
            # "ac, transient" must still provide its DC behaviour).
            main_blocks = [block for block in blocks if not block.applies_to("init")]
        for block in init_blocks:
            for statement in block.statements:
                self._execute(statement, ctx, env)
        for block in main_blocks:
            for statement in block.statements:
                self._execute(statement, ctx, env)
        # Expose declared states and variables (e.g. the displacement ``x`` of
        # Listing 1, which is a VARIABLE assigned from integ()) in the results.
        for name in (*self.model.states, *self.model.variables):
            if name.lower() in env:
                try:
                    ctx.record(name, env[name.lower()])
                except (TypeError, ValueError):
                    continue

    @staticmethod
    def _domain_for(analysis: str) -> str:
        if analysis in ("op", "dc"):
            return "dc"
        if analysis == "tran":
            return "transient"
        return analysis

    # ------------------------------------------------------------------ statements
    def _execute(self, statement: Statement, ctx: BehaviorContext,
                 env: dict[str, object]) -> None:
        if isinstance(statement, Assignment):
            value = statement.value
            # ``x := integ(S);`` uses the assigned name as the state key so
            # that callers can pass initial_states={"x": x0} by name.
            if isinstance(value, FunctionCall) and value.name.lower() in ANALOG_OPERATORS:
                argument = self._evaluate(value.arguments[0], ctx, env)
                key = statement.target.lower()
                if value.name.lower() == "ddt":
                    env[key] = ctx.ddt(argument, key=key)
                else:
                    env[key] = ctx.integ(argument, key=key)
                return
            env[statement.target.lower()] = self._evaluate(value, ctx, env)
            return
        if isinstance(statement, Contribution):
            port = self.model.port_name(statement.pin_p, statement.pin_n)
            ctx.contribute(port, self._evaluate(statement.value, ctx, env))
            return
        if isinstance(statement, IfStatement):
            for condition, body in statement.branches:
                if _truthy(self._evaluate(condition, ctx, env)):
                    for inner in body:
                        self._execute(inner, ctx, env)
                    return
            for inner in statement.else_branch:
                self._execute(inner, ctx, env)
            return
        raise HDLElaborationError(f"cannot execute statement {type(statement).__name__}")

    # ------------------------------------------------------------------ expressions
    def _evaluate(self, expression: Expression | None, ctx: BehaviorContext,
                  env: dict[str, object]):
        if expression is None:
            raise HDLElaborationError("empty expression during elaboration")
        if isinstance(expression, NumberLiteral):
            return expression.value
        if isinstance(expression, Identifier):
            key = expression.name.lower()
            if key in env:
                return env[key]
            raise HDLElaborationError(
                f"identifier {expression.name!r} used before assignment")
        if isinstance(expression, UnaryOp):
            operand = self._evaluate(expression.operand, ctx, env)
            if expression.operator == "-":
                return -operand
            if expression.operator == "+":
                return operand
            if expression.operator == "not":
                return 0.0 if _truthy(operand) else 1.0
            raise HDLElaborationError(f"unknown unary operator {expression.operator!r}")
        if isinstance(expression, BinaryOp):
            return self._binary(expression, ctx, env)
        if isinstance(expression, PinAccess):
            port = self.model.port_name(expression.pin_p, expression.pin_n)
            return ctx.across(port)
        if isinstance(expression, FunctionCall):
            return self._call(expression, ctx, env)
        raise HDLElaborationError(f"cannot evaluate {type(expression).__name__}")

    def _binary(self, expression: BinaryOp, ctx: BehaviorContext, env: dict[str, object]):
        operator = expression.operator
        left = self._evaluate(expression.left, ctx, env)
        right = self._evaluate(expression.right, ctx, env)
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            return left / right
        if operator == "**":
            return left ** right
        if operator == "=":
            return 1.0 if _value(left) == _value(right) else 0.0
        if operator == "/=":
            return 1.0 if _value(left) != _value(right) else 0.0
        if operator == "<":
            return 1.0 if _value(left) < _value(right) else 0.0
        if operator == "<=":
            return 1.0 if _value(left) <= _value(right) else 0.0
        if operator == ">":
            return 1.0 if _value(left) > _value(right) else 0.0
        if operator == ">=":
            return 1.0 if _value(left) >= _value(right) else 0.0
        if operator == "and":
            return 1.0 if (_truthy(left) and _truthy(right)) else 0.0
        if operator == "or":
            return 1.0 if (_truthy(left) or _truthy(right)) else 0.0
        if operator == "xor":
            return 1.0 if (_truthy(left) != _truthy(right)) else 0.0
        raise HDLElaborationError(f"unknown binary operator {operator!r}")

    def _call(self, expression: FunctionCall, ctx: BehaviorContext, env: dict[str, object]):
        name = expression.name.lower()
        if name in ANALOG_OPERATORS:
            argument = self._evaluate(expression.arguments[0], ctx, env)
            key = f"node{expression.node_id}"
            if name == "ddt":
                return ctx.ddt(argument, key=key)
            return ctx.integ(argument, key=key)
        function = BUILTIN_FUNCTIONS.get(name)
        if function is None:
            raise HDLElaborationError(f"unknown function {expression.name!r}")
        arguments = [self._evaluate(arg, ctx, env) for arg in expression.arguments]
        return function(*arguments)


def _value(x) -> float:
    return float(getattr(x, "value", x))


def _truthy(x) -> bool:
    return _value(x) != 0.0
