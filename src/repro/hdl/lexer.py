"""Hand-written lexer for the HDL-A subset.

The lexer is deliberately simple: HDL-A (like VHDL) is case-insensitive for
keywords and identifiers, uses ``--`` line comments, and has only a handful
of multi-character operators (``:=``, ``%=``, ``=>``, ``**``, ``/=``, ``<=``,
``>=``).  Numbers accept the usual floating-point forms including exponents
(``8.8542e-12``).
"""

from __future__ import annotations

from ..errors import HDLLexError
from .tokens import KEYWORDS, Token, TokenType

__all__ = ["tokenize"]

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ".": TokenType.DOT,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "=": TokenType.EQ,
}


def tokenize(source: str) -> list[Token]:
    """Convert HDL-A source text into a token list terminated by EOF."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def add(token_type: TokenType, value: str, start_col: int) -> None:
        tokens.append(Token(token_type, value, line, start_col))

    while i < n:
        ch = source[i]
        # -- whitespace -----------------------------------------------------
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        # -- comments ---------------------------------------------------------
        if ch == "-" and i + 1 < n and source[i + 1] == "-":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = column
        # -- numbers ----------------------------------------------------------
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # A dot followed by a non-digit belongs to a pin access
                    # like ``[a,b].v`` -- never the case right after digits in
                    # this grammar, so accept it as a decimal point.
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                        source[j + 1].isdigit() or source[j + 1] in "+-"):
                    seen_exp = True
                    j += 2 if source[j + 1] in "+-" else 1
                else:
                    break
            text = source[i:j]
            try:
                float(text)
            except ValueError:
                raise HDLLexError(f"malformed number {text!r}", line, start_col)
            add(TokenType.NUMBER, text, start_col)
            column += j - i
            i = j
            continue
        # -- identifiers / keywords --------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            token_type = TokenType.KEYWORD if text.lower() in KEYWORDS else TokenType.IDENT
            add(token_type, text, start_col)
            column += j - i
            i = j
            continue
        # -- strings ------------------------------------------------------------
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise HDLLexError("unterminated string literal", line, start_col)
                j += 1
            if j >= n:
                raise HDLLexError("unterminated string literal", line, start_col)
            add(TokenType.STRING, source[i + 1:j], start_col)
            column += j - i + 1
            i = j + 1
            continue
        # -- multi-character operators -------------------------------------------
        two = source[i:i + 2]
        if two == ":=":
            add(TokenType.ASSIGN, two, start_col)
            i += 2
            column += 2
            continue
        if two == "%=":
            add(TokenType.CONTRIB, two, start_col)
            i += 2
            column += 2
            continue
        if two == "=>":
            add(TokenType.ARROW, two, start_col)
            i += 2
            column += 2
            continue
        if two == "**":
            add(TokenType.POWER, two, start_col)
            i += 2
            column += 2
            continue
        if two == "/=":
            add(TokenType.NEQ, two, start_col)
            i += 2
            column += 2
            continue
        if two == "<=":
            add(TokenType.LE, two, start_col)
            i += 2
            column += 2
            continue
        if two == ">=":
            add(TokenType.GE, two, start_col)
            i += 2
            column += 2
            continue
        # -- single-character operators -------------------------------------------
        if ch == ":":
            add(TokenType.COLON, ch, start_col)
        elif ch == "*":
            add(TokenType.STAR, ch, start_col)
        elif ch == "/":
            add(TokenType.SLASH, ch, start_col)
        elif ch == "<":
            add(TokenType.LT, ch, start_col)
        elif ch == ">":
            add(TokenType.GT, ch, start_col)
        elif ch in _SINGLE_CHAR:
            add(_SINGLE_CHAR[ch], ch, start_col)
        else:
            raise HDLLexError(f"unexpected character {ch!r}", line, start_col)
        i += 1
        column += 1

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
