"""Semantic analysis of parsed HDL-A modules.

The analyzer validates an entity/architecture pair before elaboration and
produces an :class:`AnalyzedModel` that the elaborator consumes:

* every architecture must name a known entity,
* pin natures must be registered (``electrical``, ``mechanical1``, ...),
* identifiers used in expressions must be generics, declared variables/
  states, built-in constants or built-in function names,
* pin accesses and contributions must reference declared pins, both of the
  same nature, and use a quantity consistent with that nature (``v`` / ``tv``
  for across access, ``i`` / ``f`` for contributions),
* ``ddt``/``integ`` must be called with exactly one argument.

Errors raise :class:`~repro.errors.HDLSemanticError` with an explanatory
message; the checks are deliberately strict because silent elaboration
mistakes in analog models are painful to debug downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import HDLSemanticError, NatureError
from ..natures import get_nature
from .ast_nodes import (
    ArchitectureDecl,
    Assignment,
    BinaryOp,
    Contribution,
    EntityDecl,
    Expression,
    FunctionCall,
    Identifier,
    IfStatement,
    Module,
    NumberLiteral,
    PinAccess,
    Statement,
    UnaryOp,
)
from .stdlib import ANALOG_OPERATORS, BUILTIN_FUNCTIONS

__all__ = ["AnalyzedModel", "analyze"]

#: Across-quantity suffixes accepted per nature family.
_ACROSS_QUANTITIES = {"v", "tv", "u", "across", "voltage", "velocity"}
#: Through-quantity suffixes accepted in contributions.
_THROUGH_QUANTITIES = {"i", "f", "through", "current", "force"}
#: Identifiers implicitly available in every architecture.
_IMPLICIT_IDENTIFIERS = {"time", "temperature", "pi"}


@dataclass
class AnalyzedModel:
    """Validated entity/architecture pair with derived symbol tables."""

    entity: EntityDecl
    architecture: ArchitectureDecl
    pin_natures: dict[str, str] = field(default_factory=dict)
    #: Distinct (pin_p, pin_n) pairs referenced anywhere in the architecture.
    port_pairs: list[tuple[str, str]] = field(default_factory=list)
    #: Names declared as STATE.
    states: tuple[str, ...] = ()
    #: Names declared as VARIABLE / CONSTANT.
    variables: tuple[str, ...] = ()

    def port_name(self, pin_p: str, pin_n: str) -> str:
        """Canonical port name of a pin pair."""
        return f"{pin_p.lower()}_{pin_n.lower()}"


def analyze(module: Module, entity_name: str,
            architecture_name: str | None = None) -> AnalyzedModel:
    """Validate an entity/architecture pair and build the analysis record."""
    entity = module.entity(entity_name)
    if entity is None:
        known = ", ".join(sorted(module.entities)) or "(none)"
        raise HDLSemanticError(f"unknown entity {entity_name!r}; parsed entities: {known}")
    architecture = module.architecture_of(entity_name, architecture_name)
    if architecture is None:
        raise HDLSemanticError(f"entity {entity_name!r} has no architecture"
                               + (f" named {architecture_name!r}" if architecture_name else ""))

    pin_natures: dict[str, str] = {}
    for pin in entity.pins:
        try:
            nature = get_nature(pin.nature)
        except NatureError as exc:
            raise HDLSemanticError(
                f"pin {pin.name!r} of entity {entity.name!r} has unknown nature "
                f"{pin.nature!r}: {exc}") from exc
        pin_natures[pin.name.lower()] = nature.name

    model = AnalyzedModel(
        entity=entity,
        architecture=architecture,
        pin_natures=pin_natures,
        states=architecture.states(),
        variables=architecture.variables(),
    )

    known_names = {name.lower() for name in entity.generic_names()}
    known_names.update(name.lower() for name in model.states)
    known_names.update(name.lower() for name in model.variables)
    known_names.update(_IMPLICIT_IDENTIFIERS)

    assigned: set[str] = set()
    for block in architecture.blocks:
        for statement in block.statements:
            _check_statement(statement, model, known_names, assigned)
    if not model.port_pairs:
        raise HDLSemanticError(
            f"architecture {architecture.name!r} of {entity.name!r} never references "
            "any pin pair; the model would contribute nothing")
    return model


# --------------------------------------------------------------------------- statements
def _check_statement(statement: Statement, model: AnalyzedModel,
                     known: set[str], assigned: set[str]) -> None:
    if isinstance(statement, Assignment):
        _check_expression(statement.value, model, known)
        assigned.add(statement.target.lower())
        known.add(statement.target.lower())
        return
    if isinstance(statement, Contribution):
        _register_pin_pair(statement.pin_p, statement.pin_n, model)
        if statement.quantity not in _THROUGH_QUANTITIES:
            raise HDLSemanticError(
                f"contribution to [{statement.pin_p},{statement.pin_n}].{statement.quantity} "
                f"is not a through quantity (expected one of {sorted(_THROUGH_QUANTITIES)})")
        _check_expression(statement.value, model, known)
        return
    if isinstance(statement, IfStatement):
        for condition, body in statement.branches:
            _check_expression(condition, model, known)
            for inner in body:
                _check_statement(inner, model, known, assigned)
        for inner in statement.else_branch:
            _check_statement(inner, model, known, assigned)
        return
    raise HDLSemanticError(f"unsupported statement type {type(statement).__name__}")


# --------------------------------------------------------------------------- expressions
def _check_expression(expression: Expression | None, model: AnalyzedModel,
                      known: set[str]) -> None:
    if expression is None:
        raise HDLSemanticError("empty expression")
    if isinstance(expression, NumberLiteral):
        return
    if isinstance(expression, Identifier):
        if expression.name.lower() not in known:
            raise HDLSemanticError(
                f"identifier {expression.name!r} is not a generic, variable, state "
                "or built-in name")
        return
    if isinstance(expression, UnaryOp):
        _check_expression(expression.operand, model, known)
        return
    if isinstance(expression, BinaryOp):
        _check_expression(expression.left, model, known)
        _check_expression(expression.right, model, known)
        return
    if isinstance(expression, PinAccess):
        _register_pin_pair(expression.pin_p, expression.pin_n, model)
        if expression.quantity not in _ACROSS_QUANTITIES:
            raise HDLSemanticError(
                f"pin access [{expression.pin_p},{expression.pin_n}].{expression.quantity} "
                f"must read an across quantity (one of {sorted(_ACROSS_QUANTITIES)}); "
                "through quantities can only be contributed with %=")
        return
    if isinstance(expression, FunctionCall):
        name = expression.name.lower()
        if name in ANALOG_OPERATORS:
            if len(expression.arguments) != 1:
                raise HDLSemanticError(f"{name}() takes exactly one argument")
        elif name not in BUILTIN_FUNCTIONS:
            raise HDLSemanticError(f"unknown function {expression.name!r}")
        for argument in expression.arguments:
            _check_expression(argument, model, known)
        return
    raise HDLSemanticError(f"unsupported expression type {type(expression).__name__}")


def _register_pin_pair(pin_p: str, pin_n: str, model: AnalyzedModel) -> None:
    p, n = pin_p.lower(), pin_n.lower()
    for pin in (p, n):
        if pin not in model.pin_natures:
            raise HDLSemanticError(
                f"pin {pin!r} is not declared in entity {model.entity.name!r}")
    if model.pin_natures[p] != model.pin_natures[n]:
        raise HDLSemanticError(
            f"pins {pin_p!r} and {pin_n!r} have different natures "
            f"({model.pin_natures[p]} vs {model.pin_natures[n]})")
    pair = (p, n)
    if pair not in model.port_pairs:
        model.port_pairs.append(pair)
