"""Circuit netlist: typed nodes, device container and builder helpers.

A :class:`Circuit` is the multi-domain netlist of the paper's system-level
simulation: electrical nodes carry voltages, mechanical nodes carry
velocities (force-current analogy) and behavioral transducer devices bridge
the domains.  The circuit owns

* the node table (each node typed by a :class:`~repro.natures.Nature`),
* the device list (unique names, SPICE-style prefix conventions are not
  enforced but the builder methods follow them),
* convenience factory methods (``circuit.resistor(...)``,
  ``circuit.mass(...)``, ``circuit.voltage_source(...)``) used throughout the
  examples and benchmarks.

Analyses operate on a circuit via :class:`repro.circuit.mna.MNASystem`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import NetlistError
from ..natures import ELECTRICAL, MECHANICAL_TRANSLATION, Nature, get_nature
from ..units import parse_quantity
from .waveforms import Waveform, ensure_waveform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from .devices.base import Device

__all__ = ["Node", "Circuit", "GROUND_NAMES"]

#: Node names treated as the global reference (electrical ground and the
#: mechanical inertial frame alike).
GROUND_NAMES = ("0", "gnd", "ground")


class Node:
    """A circuit node: a named across-variable of a given nature.

    Nodes are created through :meth:`Circuit.node`; the ground node is shared
    by all natures and represents both the electrical reference and the
    mechanical inertial frame.
    """

    __slots__ = ("name", "nature", "is_ground")

    def __init__(self, name: str, nature: Nature | None, is_ground: bool = False) -> None:
        self.name = name
        self.nature = nature
        self.is_ground = is_ground

    def __repr__(self) -> str:
        nature = self.nature.name if self.nature is not None else "any"
        return f"Node({self.name!r}, {nature})"

    def __str__(self) -> str:
        return self.name


class Circuit:
    """A named collection of nodes and devices forming one netlist."""

    def __init__(self, title: str = "circuit") -> None:
        self.title = title
        self._nodes: dict[str, Node] = {}
        self._devices: dict[str, "Device"] = {}
        self.ground = Node("0", None, is_ground=True)
        for alias in GROUND_NAMES:
            self._nodes[alias] = self.ground

    # ------------------------------------------------------------------ nodes
    def node(self, name: str | Node, nature: Nature | str = ELECTRICAL) -> Node:
        """Return the node called ``name``, creating it if necessary.

        The nature of an existing node must match the requested one;
        requesting the ground node ignores the nature (the reference is
        shared across domains).
        """
        if isinstance(name, Node):
            return name
        if not isinstance(name, str) or not name:
            raise NetlistError(f"node name must be a non-empty string, got {name!r}")
        key = name.lower()
        wanted = get_nature(nature)
        existing = self._nodes.get(key)
        if existing is not None:
            if existing.is_ground:
                return existing
            if existing.nature is not wanted:
                raise NetlistError(
                    f"node {name!r} already exists with nature "
                    f"{existing.nature.name}, requested {wanted.name}"
                )
            return existing
        node = Node(name, wanted)
        self._nodes[key] = node
        return node

    def electrical_node(self, name: str | Node) -> Node:
        """Shorthand for an electrical node."""
        return self.node(name, ELECTRICAL)

    def mechanical_node(self, name: str | Node) -> Node:
        """Shorthand for a translational mechanical node (velocity across)."""
        return self.node(name, MECHANICAL_TRANSLATION)

    @property
    def nodes(self) -> list[Node]:
        """All distinct non-ground nodes in creation order."""
        seen: list[Node] = []
        for node in self._nodes.values():
            if not node.is_ground and node not in seen:
                seen.append(node)
        return seen

    def has_node(self, name: str) -> bool:
        """True when a node of that name exists (ground always exists)."""
        return name.lower() in self._nodes

    # ---------------------------------------------------------------- devices
    def add(self, device: "Device") -> "Device":
        """Add a constructed device to the netlist (unique name required)."""
        if device.name in self._devices:
            raise NetlistError(f"duplicate device name {device.name!r}")
        for node in device.nodes():
            if node is None:
                raise NetlistError(f"device {device.name!r} has an unconnected pin")
        self._devices[device.name] = device
        return device

    def remove(self, name: str) -> None:
        """Remove the device called ``name`` from the netlist."""
        if name not in self._devices:
            raise NetlistError(f"no device named {name!r}")
        del self._devices[name]

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __getitem__(self, name: str) -> "Device":
        try:
            return self._devices[name]
        except KeyError:
            raise NetlistError(f"no device named {name!r}") from None

    def __iter__(self) -> Iterator["Device"]:
        return iter(self._devices.values())

    def __len__(self) -> int:
        return len(self._devices)

    @property
    def devices(self) -> list["Device"]:
        """Devices in insertion order."""
        return list(self._devices.values())

    # ------------------------------------------------------------ validation
    def validate(self) -> None:
        """Check the netlist for structural errors before analysis.

        Raises :class:`~repro.errors.NetlistError` when a non-ground node has
        fewer than two connections or a device pin nature disagrees with its
        node nature.
        """
        connection_count: dict[str, int] = {}
        for device in self:
            for node in device.nodes():
                if not node.is_ground:
                    connection_count[node.name] = connection_count.get(node.name, 0) + 1
        for node in self.nodes:
            if connection_count.get(node.name, 0) == 0:
                raise NetlistError(f"node {node.name!r} is not connected to any device")

    # ------------------------------------------------------- builder helpers
    # The factory methods below construct, add and return the common device
    # types.  They accept node names (created on demand with the right
    # nature), engineering-notation strings for values, and waveform objects
    # for sources.  Imports are local to avoid a circular import with the
    # devices package.

    def resistor(self, name: str, p: str | Node, n: str | Node, resistance) -> "Device":
        """Add a linear resistor between electrical nodes ``p`` and ``n``."""
        from .devices.passive import Resistor

        return self.add(Resistor(name, self.electrical_node(p), self.electrical_node(n),
                                 parse_quantity(resistance)))

    def capacitor(self, name: str, p: str | Node, n: str | Node, capacitance,
                  ic: float | None = None) -> "Device":
        """Add a linear capacitor (optional initial voltage ``ic``)."""
        from .devices.passive import Capacitor

        return self.add(Capacitor(name, self.electrical_node(p), self.electrical_node(n),
                                  parse_quantity(capacitance), ic=ic))

    def inductor(self, name: str, p: str | Node, n: str | Node, inductance,
                 ic: float | None = None) -> "Device":
        """Add a linear inductor (optional initial current ``ic``)."""
        from .devices.passive import Inductor

        return self.add(Inductor(name, self.electrical_node(p), self.electrical_node(n),
                                 parse_quantity(inductance), ic=ic))

    def voltage_source(self, name: str, p: str | Node, n: str | Node, value=0.0,
                       ac: float = 0.0, ac_phase_deg: float = 0.0) -> "Device":
        """Add an independent voltage source (number, string or waveform)."""
        from .devices.sources import VoltageSource

        return self.add(VoltageSource(name, self.electrical_node(p), self.electrical_node(n),
                                      ensure_waveform(value), ac=ac, ac_phase_deg=ac_phase_deg))

    def current_source(self, name: str, p: str | Node, n: str | Node, value=0.0,
                       ac: float = 0.0, ac_phase_deg: float = 0.0) -> "Device":
        """Add an independent current source (current flows from p to n)."""
        from .devices.sources import CurrentSource

        return self.add(CurrentSource(name, self.electrical_node(p), self.electrical_node(n),
                                      ensure_waveform(value), ac=ac, ac_phase_deg=ac_phase_deg))

    def vccs(self, name: str, p, n, cp, cn, transconductance) -> "Device":
        """Add a voltage-controlled current source (SPICE ``G`` element)."""
        from .devices.controlled import VCCS

        return self.add(VCCS(name, self.electrical_node(p), self.electrical_node(n),
                             self.electrical_node(cp), self.electrical_node(cn),
                             parse_quantity(transconductance)))

    def vcvs(self, name: str, p, n, cp, cn, gain) -> "Device":
        """Add a voltage-controlled voltage source (SPICE ``E`` element)."""
        from .devices.controlled import VCVS

        return self.add(VCVS(name, self.electrical_node(p), self.electrical_node(n),
                             self.electrical_node(cp), self.electrical_node(cn),
                             parse_quantity(gain)))

    def cccs(self, name: str, p, n, source_name: str, gain) -> "Device":
        """Add a current-controlled current source (SPICE ``F`` element)."""
        from .devices.controlled import CCCS

        return self.add(CCCS(name, self.electrical_node(p), self.electrical_node(n),
                             source_name, parse_quantity(gain)))

    def ccvs(self, name: str, p, n, source_name: str, transresistance) -> "Device":
        """Add a current-controlled voltage source (SPICE ``H`` element)."""
        from .devices.controlled import CCVS

        return self.add(CCVS(name, self.electrical_node(p), self.electrical_node(n),
                             source_name, parse_quantity(transresistance)))

    def diode(self, name: str, p, n, saturation_current=1e-14, emission=1.0) -> "Device":
        """Add an exponential junction diode."""
        from .devices.nonlinear import Diode

        return self.add(Diode(name, self.electrical_node(p), self.electrical_node(n),
                              parse_quantity(saturation_current), float(emission)))

    def switch(self, name: str, p, n, cp, cn, threshold=0.0, r_on=1.0, r_off=1e9) -> "Device":
        """Add a smooth voltage-controlled switch."""
        from .devices.switches import VoltageControlledSwitch

        return self.add(VoltageControlledSwitch(
            name, self.electrical_node(p), self.electrical_node(n),
            self.electrical_node(cp), self.electrical_node(cn),
            threshold=parse_quantity(threshold),
            r_on=parse_quantity(r_on), r_off=parse_quantity(r_off)))

    # -- mechanical elements (force-current analogy) -------------------------
    def mass(self, name: str, node: str | Node, mass) -> "Device":
        """Add a point mass between a mechanical node and the inertial frame."""
        from .devices.mechanical import Mass

        return self.add(Mass(name, self.mechanical_node(node), self.ground,
                             parse_quantity(mass)))

    def spring(self, name: str, p: str | Node, n: str | Node, stiffness) -> "Device":
        """Add a linear spring (stiffness ``k`` in N/m) between two nodes."""
        from .devices.mechanical import Spring

        return self.add(Spring(name, self.mechanical_node(p), self.mechanical_node(n),
                               parse_quantity(stiffness)))

    def damper(self, name: str, p: str | Node, n: str | Node, damping) -> "Device":
        """Add a viscous damper (coefficient in N*s/m) between two nodes."""
        from .devices.mechanical import Damper

        return self.add(Damper(name, self.mechanical_node(p), self.mechanical_node(n),
                               parse_quantity(damping)))

    def force_source(self, name: str, p: str | Node, n: str | Node, value=0.0,
                     ac: float = 0.0, ac_phase_deg: float = 0.0) -> "Device":
        """Add an ideal force source acting from node ``p`` to node ``n``."""
        from .devices.mechanical import ForceSource

        return self.add(ForceSource(name, self.mechanical_node(p), self.mechanical_node(n),
                                    ensure_waveform(value), ac=ac,
                                    ac_phase_deg=ac_phase_deg))

    def velocity_source(self, name: str, p: str | Node, n: str | Node, value=0.0) -> "Device":
        """Add an ideal velocity source between two mechanical nodes."""
        from .devices.mechanical import VelocitySource

        return self.add(VelocitySource(name, self.mechanical_node(p), self.mechanical_node(n),
                                       ensure_waveform(value)))

    def behavioral(self, device: "Device") -> "Device":
        """Add an already-constructed behavioral device (transducer, HDL model)."""
        return self.add(device)

    def rom_block(self, name: str, rom, *port_pairs) -> "Device":
        """Add a reduced-order macromodel as a multi-terminal device.

        ``rom`` is a :class:`~repro.rom.statespace.ReducedModel`; each
        ``(p, n)`` pair in ``port_pairs`` binds one ROM input column to a
        mechanical port (velocity across, force through).
        """
        from .devices.rom import ROMDevice

        pairs = [(self.mechanical_node(p), self.mechanical_node(n))
                 for p, n in port_pairs]
        return self.add(ROMDevice(name, rom, pairs))

    # ------------------------------------------------------------------ misc
    def summary(self) -> str:
        """Human-readable netlist summary used by examples and reports."""
        lines = [f"* {self.title}", f"* nodes: {len(self.nodes)}, devices: {len(self)}"]
        for device in self:
            pins = " ".join(str(n) for n in device.nodes())
            lines.append(f"{device.name} {pins} {device.describe()}")
        return "\n".join(lines)
