"""SPICE-class multi-domain circuit simulator (the ELDO substitute).

Public surface::

    from repro.circuit import Circuit, OperatingPointAnalysis, TransientAnalysis

    ckt = Circuit("rc")
    ckt.voltage_source("V1", "in", "0", Pulse(0, 5, rise=1e-6))
    ckt.resistor("R1", "in", "out", "1k")
    ckt.capacitor("C1", "out", "0", "1u")
    result = TransientAnalysis(ckt, t_stop=10e-3).run()
    vout = result.voltage("out")

Mechanical elements (mass/spring/damper, force and velocity sources) live on
the same netlist thanks to the force-current analogy, and behavioral devices
(:class:`~repro.circuit.devices.behavioral.BehavioralDevice`) implement the
HDL-A-style nonlinear transducer models.
"""

from .netlist import Circuit, Node
from .waveforms import DC, Pulse, Sine, PieceWiseLinear, Exponential, Step, Waveform
from .mna import MNASystem, Integrator
from .devices import (
    Device,
    Resistor,
    Capacitor,
    Inductor,
    VoltageSource,
    CurrentSource,
    VCCS,
    VCVS,
    CCCS,
    CCVS,
    Diode,
    Mass,
    Spring,
    Damper,
    ForceSource,
    VelocitySource,
    VoltageControlledSwitch,
    BehavioralDevice,
    BehaviorContext,
    Port,
    ROMDevice,
)
from .analysis import (
    SimulationOptions,
    OperatingPoint,
    DCSweepResult,
    ACResult,
    TransientResult,
    OperatingPointAnalysis,
    DCSweepAnalysis,
    ACAnalysis,
    CircuitSensitivityEvaluator,
    TransientAnalysis,
)
from .analysis.ac import frequency_grid
from .linearize import (
    small_signal_matrices,
    input_admittance,
    input_impedance,
    equivalent_capacitance,
)

__all__ = [
    "Circuit",
    "Node",
    "DC",
    "Pulse",
    "Sine",
    "PieceWiseLinear",
    "Exponential",
    "Step",
    "Waveform",
    "MNASystem",
    "Integrator",
    "Device",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCCS",
    "VCVS",
    "CCCS",
    "CCVS",
    "Diode",
    "Mass",
    "Spring",
    "Damper",
    "ForceSource",
    "VelocitySource",
    "VoltageControlledSwitch",
    "BehavioralDevice",
    "BehaviorContext",
    "Port",
    "ROMDevice",
    "SimulationOptions",
    "OperatingPoint",
    "DCSweepResult",
    "ACResult",
    "TransientResult",
    "OperatingPointAnalysis",
    "DCSweepAnalysis",
    "ACAnalysis",
    "CircuitSensitivityEvaluator",
    "TransientAnalysis",
    "frequency_grid",
    "small_signal_matrices",
    "input_admittance",
    "input_impedance",
    "equivalent_capacitance",
]
