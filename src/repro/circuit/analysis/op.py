"""Operating-point (DC bias) analysis and the shared Newton solver.

``newton_solve`` is the single Newton-Raphson implementation used by the
operating-point, DC-sweep and transient analyses.  Convergence requires every
unknown's update to fall below ``tol_i = (vntol | abstol) + reltol * |x_i|``
-- the SPICE criterion -- with across-type unknowns (node voltages and
velocities) using ``vntol`` and auxiliary through-type unknowns using
``abstol``.

When plain Newton from a zero initial guess fails (strongly nonlinear bias
points such as an electrostatic transducer biased close to pull-in), the
operating-point analysis falls back to **source stepping**: all independent
sources are ramped from zero to their nominal values over a geometric
sequence of levels, each level starting from the previous solution.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConvergenceError, FEMError, SingularMatrixError
from ...fem.solver import solve_sparse
from ..mna import Integrator, MNASystem, StampContext
from ..netlist import Circuit
from .options import SimulationOptions
from .results import OperatingPoint

__all__ = ["newton_solve", "collect_outputs", "OperatingPointAnalysis"]


def newton_solve(system: MNASystem, x0: np.ndarray, analysis: str, time: float,
                 integrator: Integrator | None, options: SimulationOptions,
                 source_scale: float = 1.0) -> tuple[np.ndarray, int]:
    """Solve ``F(x) = 0`` by damped Newton-Raphson starting from ``x0``.

    Returns the converged solution and the number of iterations used.
    Raises :class:`~repro.errors.ConvergenceError` when the iteration cap is
    reached and :class:`~repro.errors.SingularMatrixError` when the Jacobian
    cannot be factorised.
    """
    x = np.array(x0, dtype=float, copy=True)
    n_nodes = system.num_nodes
    for iteration in range(1, options.max_newton_iterations + 1):
        ctx = system.assemble(x, analysis, time, integrator, options, source_scale)
        if not np.all(np.isfinite(ctx.res)) or not ctx.jacobian_is_finite():
            raise ConvergenceError(
                f"non-finite residual/Jacobian at iteration {iteration} (t={time:g})",
                iterations=iteration)
        if ctx.use_sparse:
            # Large systems assemble COO triplets and route through the FE
            # sparse solver (SuperLU direct or preconditioned CG).
            try:
                dx = solve_sparse(ctx.jacobian(), -ctx.res,
                                  method=options.sparse_method(),
                                  rtol=options.linear_solver_rtol)
            except FEMError as exc:
                raise SingularMatrixError(
                    f"sparse MNA solve failed for {analysis} at t={time:g}: {exc}"
                ) from exc
        else:
            try:
                dx = np.linalg.solve(ctx.jac, -ctx.res)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular MNA matrix while solving {analysis} at t={time:g}: {exc}"
                ) from exc
        if not np.all(np.isfinite(dx)):
            raise ConvergenceError(
                f"non-finite Newton update at iteration {iteration} (t={time:g})",
                iterations=iteration)
        x_new = x + options.newton_damping * dx
        tol = np.where(
            np.arange(system.size) < n_nodes,
            options.vntol + options.reltol * np.maximum(np.abs(x), np.abs(x_new)),
            options.abstol + options.reltol * np.maximum(np.abs(x), np.abs(x_new)),
        )
        converged = bool(np.all(np.abs(options.newton_damping * dx) <= tol))
        x = x_new
        if converged and iteration >= 1:
            return x, iteration
    raise ConvergenceError(
        f"Newton failed to converge in {options.max_newton_iterations} iterations "
        f"({analysis}, t={time:g})",
        iterations=options.max_newton_iterations,
        residual=float(np.max(np.abs(ctx.res))))


def collect_outputs(system: MNASystem, ctx: StampContext) -> dict[str, float]:
    """Gather node across values and device-recorded outputs at a solution."""
    data: dict[str, float] = {}
    for node in system.nodes:
        data[f"v({node.name})"] = float(ctx.x[system.index_of(node)])
    for device in system.circuit:
        for key, value in device.record(ctx).items():
            data[key] = float(value)
    return data


class OperatingPointAnalysis:
    """Compute the DC operating point of a circuit.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    options:
        Numerical options; a default set is used when omitted.
    """

    def __init__(self, circuit: Circuit, options: SimulationOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or SimulationOptions()
        self.system = MNASystem(circuit)

    def run(self, initial_guess: np.ndarray | None = None) -> OperatingPoint:
        """Solve the operating point, falling back to source stepping if needed."""
        options = self.options
        x0 = np.zeros(self.system.size) if initial_guess is None else \
            np.array(initial_guess, dtype=float, copy=True)
        try:
            solution, iterations = newton_solve(
                self.system, x0, "op", 0.0, None, options, source_scale=1.0)
        except (ConvergenceError, SingularMatrixError):
            solution, iterations = self._source_stepping(x0)
        ctx = self.system.assemble(solution, "op", 0.0, None, options, 1.0)
        data = collect_outputs(self.system, ctx)
        return OperatingPoint(data, solution, self.system.unknown_labels(), iterations)

    def _source_stepping(self, x0: np.ndarray) -> tuple[np.ndarray, int]:
        """Homotopy on the independent-source amplitudes (0 -> 1)."""
        options = self.options
        levels = np.linspace(0.0, 1.0, min(options.max_source_steps, 32) + 1)[1:]
        x = np.array(x0, dtype=float, copy=True)
        total_iterations = 0
        last_error: Exception | None = None
        for scale in levels:
            try:
                x, iterations = newton_solve(
                    self.system, x, "op", 0.0, None, options, source_scale=float(scale))
                total_iterations += iterations
            except (ConvergenceError, SingularMatrixError) as exc:
                last_error = exc
                raise ConvergenceError(
                    f"operating point failed even with source stepping at scale "
                    f"{scale:.3f}: {exc}") from exc
        return x, max(total_iterations, 1)
