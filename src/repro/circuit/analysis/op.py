"""Operating-point (DC bias) analysis and the shared Newton solver.

``newton_solve`` is the single Newton-Raphson implementation used by the
operating-point, DC-sweep and transient analyses.  Convergence requires every
unknown's update to fall below ``tol_i = (vntol | abstol) + reltol * |x_i|``
-- the SPICE criterion -- with across-type unknowns (node voltages and
velocities) using ``vntol`` and auxiliary through-type unknowns using
``abstol``.

Linear stage
------------
Every Newton update routes through :mod:`repro.linalg`.  A
:class:`NewtonWorkspace` carries the factorization state across iterations
*and* across calls (time steps of a transient, points of a DC sweep), which
is where the ``jacobian_reuse`` policies of
:class:`~repro.circuit.analysis.options.SimulationOptions` live:

* ``"off"`` factors every freshly assembled Jacobian,
* ``"auto"`` matches the assembled Jacobian against recently factored
  matrices (exact array equality) and skips the refactor when the values
  are unchanged -- bit-identical to ``"off"``, and a linear circuit at a
  fixed step factors exactly once for a whole run,
* ``"chord"`` keeps solving with the held factorization while assembling
  the residual only (no derivative propagation at all); a stalling residual
  or a step-size change triggers an automatic full-Newton refactor.

When plain Newton from a zero initial guess fails (strongly nonlinear bias
points such as an electrostatic transducer biased close to pull-in), the
operating-point analysis falls back to **source stepping**: all independent
sources are ramped from zero to their nominal values over a geometric
sequence of levels, each level starting from the previous solution.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

import scipy.sparse as sp

from ... import telemetry
from ...errors import ConvergenceError, LinAlgError, SingularMatrixError
from ...linalg import FactorizedSolver
from ...telemetry import NewtonTrace
from ..mna import Integrator, MNASystem, StampContext
from ..netlist import Circuit
from .options import SimulationOptions
from .results import OperatingPoint

__all__ = ["newton_solve", "collect_outputs", "NewtonWorkspace",
           "OperatingPointAnalysis"]


class NewtonWorkspace:
    """Linear-stage state shared across the Newton solves of one analysis.

    Holds the backend solver, a short equality-matched list of recently
    factored Jacobians and the chord-Newton bookkeeping (which factorization
    is held, and for which integrator step / source level it was produced).
    Analyses create one workspace per run and thread it through every
    :func:`newton_solve` call so factorizations survive across time steps
    and sweep points.
    """

    #: Recent (matrix, factorization) pairs kept for equality matching.
    _RECENT_LIMIT = 4

    def __init__(self, options: SimulationOptions) -> None:
        self.options = options
        self.solver = FactorizedSolver(options.solver_backend(),
                                       rtol=options.linear_solver_rtol,
                                       cg_fallback=True)
        #: list of (structure generation, matrix, factorization), most
        #: recent first.  Matching is exact array equality -- a memcmp-speed
        #: check, cheap enough to run every Newton iteration (unlike a
        #: content hash, which costs a sizable fraction of the LU it is
        #: trying to skip).
        self._recent: list[tuple[int, object, object]] = []
        self.factorization = None
        #: (analysis, step, source_scale, structure generation) the held
        #: factorization belongs to; chord reuse is only valid within it.
        self.chord_tag: tuple | None = None
        self.factor_reuses = 0
        self.chord_iterations = 0
        self.stall_refactors = 0
        self.step_chord_reuses = 0
        #: Optional :class:`~repro.telemetry.ConvergenceDiagnostics` sink;
        #: analyses install one when ``options.telemetry`` asks for it and
        #: :func:`newton_solve` then records a residual trace per solve.
        self.convergence = None
        #: :class:`~repro.telemetry.ConditionRecord` per fresh factorization
        #: when ``options.health_check`` is on (capped like diagnostics).
        self.health: list = []

    @staticmethod
    def _same_matrix(stored, matrix) -> bool:
        if sp.issparse(matrix):
            return sp.issparse(stored) and stored.shape == matrix.shape \
                and stored.data.size == matrix.data.size \
                and np.array_equal(stored.data, matrix.data)
        return not sp.issparse(stored) and np.array_equal(stored, matrix)

    def factor(self, system: MNASystem, ctx: StampContext):
        """Factor (or fetch) the Jacobian of a fully assembled context."""
        matrix = ctx.jacobian()
        generation = system.structure_cache.generation if ctx.use_sparse else 0
        fresh = False
        if self.options.jacobian_reuse == "off":
            factorization = self.solver.factorize(matrix)
            fresh = True
        else:
            factorization = None
            for index, (stored_gen, stored, handle) in enumerate(self._recent):
                # The generation tag pins the sparsity pattern the stored
                # data array belongs to.
                if stored_gen == generation and self._same_matrix(stored, matrix):
                    factorization = handle
                    if index:
                        self._recent.insert(0, self._recent.pop(index))
                    self.factor_reuses += 1
                    break
            if factorization is None:
                factorization = self.solver.factorize(matrix)
                self._recent.insert(0, (generation, matrix, factorization))
                del self._recent[self._RECENT_LIMIT:]
                fresh = True
        if fresh and self.options.health_check:
            record = telemetry.health.check_factorization(
                factorization, limit=self.options.condition_limit)
            if len(self.health) < self.options.telemetry_max_records:
                self.health.append(record)
        self.factorization = factorization
        return factorization

    def statistics(self) -> dict[str, int]:
        """Counters for result statistics and the reuse benchmarks."""
        return {
            "factorizations": self.solver.factorizations,
            "factor_cache_hits": self.factor_reuses,
            "chord_iterations": self.chord_iterations,
            "stall_refactors": self.stall_refactors,
            "step_chord_reuses": self.step_chord_reuses,
        }


def _chord_tag(system: MNASystem, analysis: str,
               integrator: Integrator | None, source_scale: float) -> tuple:
    step = integrator.h if (integrator is not None
                            and analysis == "tran"
                            and not integrator.priming) else None
    return (analysis, step, source_scale, system.structure_cache.generation)


#: Step ratios outside this window make the chord iteration matrix
#: ``I - A(h_old)^-1 A(h_new)`` expansive in the companion-dominated worst
#: case (the mismatch scales like ``h_old/h_new - 1``), so reuse is pointless
#: -- the stall detector would refactor immediately anyway.
_STEP_REUSE_RATIO = (0.5, 2.0)

#: Tightening factor applied to the convergence tolerance while a solve is
#: riding a step-mismatched factorization: with a contraction of at most 0.5
#: per chord pass the accepted solution then sits within ~1/20 of the normal
#: Newton tolerance of the exact answer, preserving the historical chord
#: accuracy pins at the cost of a few extra residual-only assemblies.
_CONFIRM_TIGHTEN = 0.02


def _step_only_change(old: tuple | None, new: tuple) -> bool:
    """True when two chord tags differ only in a *moderate* step change.

    The LTE controller softly rejects a step (``h * 0.8 .. 0.9``) and grows
    it after smooth stretches (up to ``max_step_growth``, default 2x); the
    Jacobian then changes only through the companion conductances, so the
    held factorization is still a contractive chord operator -- the residual
    is assembled exactly at the new step, a confirming iteration guards the
    convergence test, and the stall detector refactors if the step change
    was too aggressive after all.  Hard rejections (``h * 0.2 .. 0.25``)
    fall outside the ratio window and refactor as before.
    """
    if not (old is not None and old[0] == new[0] == "tran"
            and old[1] is not None and new[1] is not None
            and old[1] != new[1] and old[2:] == new[2:]):
        return False
    ratio = new[1] / old[1]
    return _STEP_REUSE_RATIO[0] <= ratio <= _STEP_REUSE_RATIO[1]


def newton_solve(system: MNASystem, x0: np.ndarray, analysis: str, time: float,
                 integrator: Integrator | None, options: SimulationOptions,
                 source_scale: float = 1.0,
                 workspace: NewtonWorkspace | None = None) -> tuple[np.ndarray, int]:
    """Solve ``F(x) = 0`` by damped Newton-Raphson starting from ``x0``.

    Returns the converged solution and the number of iterations used.
    Raises :class:`~repro.errors.ConvergenceError` when the iteration cap is
    reached and :class:`~repro.errors.SingularMatrixError` when the Jacobian
    cannot be factorised.  ``workspace`` carries factorization reuse across
    calls; a throwaway one is created when omitted.
    """
    ws = NewtonWorkspace(options) if workspace is None else workspace
    x = np.array(x0, dtype=float, copy=True)
    timing = telemetry.enabled()
    trace = NewtonTrace(context=analysis, time=time) \
        if timing and ws.convergence is not None else None
    # Forensics track the residual-norm trajectory (one float/iteration) so
    # a failure report can show how the solve died, not just that it died.
    norms: list[float] | None = [] if options.forensics else None
    n_nodes = system.num_nodes
    base_tol = np.where(np.arange(system.size) < n_nodes,
                        options.vntol, options.abstol)
    tag = _chord_tag(system, analysis, integrator, source_scale)
    chord_allowed = options.jacobian_reuse == "chord"
    chord = (chord_allowed
             and ws.factorization is not None and ws.chord_tag == tag)
    #: While riding a factorization from a *different* step size, a small
    #: Newton update does not prove convergence (the chord operator is only
    #: contractive, not exact): drive the cheap residual-only iteration to a
    #: much tighter update tolerance and require one confirming pass, so the
    #: accepted solution matches a freshly factored solve to well below the
    #: Newton tolerance.  Extra residual assemblies cost a small fraction of
    #: the factorization they replace.
    require_confirm = False
    if (chord_allowed and options.step_chord_reuse and not chord
            and ws.factorization is not None
            and _step_only_change(ws.chord_tag, tag)):
        # A rejected (or re-grown) time step changed only ``h``: ride the
        # accepted-step factorization instead of re-assembling from scratch.
        chord = True
        require_confirm = True
        ws.chord_tag = tag
        ws.step_chord_reuses += 1
    # Past this point a chord solve that is still grinding is assumed to be
    # riding a stale Jacobian; refactor instead of burning the iteration cap.
    chord_limit = max(3, options.max_newton_iterations // 2)
    previous_residual = None
    confirmed_once = False
    for iteration in range(1, options.max_newton_iterations + 1):
        ctx = system.assemble(x, analysis, time, integrator, options,
                              source_scale, want_jacobian=not chord)
        if not np.all(np.isfinite(ctx.res)) or not ctx.jacobian_is_finite():
            message = (f"non-finite residual/Jacobian at iteration "
                       f"{iteration} (t={time:g})")
            raise ConvergenceError(
                message, iterations=iteration,
                report=_newton_report(ws, system, options, analysis, time,
                                      norms, message=message,
                                      error_type="ConvergenceError",
                                      iterations=iteration, vector=ctx.res))
        if trace is not None or norms is not None:
            res_norm = float(np.max(np.abs(ctx.res))) if ctx.res.size else 0.0
            if trace is not None:
                trace.residuals.append(res_norm)
            if norms is not None:
                norms.append(res_norm)
        if chord:
            residual_norm = float(np.max(np.abs(ctx.res))) if ctx.res.size else 0.0
            stalled = (previous_residual is not None
                       and residual_norm >
                       options.refactor_threshold * previous_residual)
            if stalled or iteration >= chord_limit:
                ctx = system.assemble(x, analysis, time, integrator, options,
                                      source_scale, want_jacobian=True)
                if not ctx.jacobian_is_finite():
                    message = (f"non-finite Jacobian at iteration {iteration} "
                               f"(t={time:g})")
                    raise ConvergenceError(
                        message, iterations=iteration,
                        report=_newton_report(ws, system, options, analysis,
                                              time, norms, message=message,
                                              error_type="ConvergenceError",
                                              iterations=iteration,
                                              vector=ctx.res))
                _factorize(ws, system, ctx, analysis, time)
                ws.chord_tag = tag
                ws.stall_refactors += 1
                previous_residual = None
                require_confirm = False  # fresh factorization for this step
                if iteration >= chord_limit:
                    # This solve is grinding: give the rest of it plain full
                    # Newton instead of re-assembling twice per iteration.
                    chord_allowed = False
                    chord = False
            else:
                ws.chord_iterations += 1
                previous_residual = residual_norm
            factorization = ws.factorization
        else:
            factorization = _factorize(ws, system, ctx, analysis, time)
            ws.chord_tag = tag
            if chord_allowed:
                # Ride this factorization from the next iteration on.
                chord = True
        try:
            t0 = perf_counter() if timing else None
            dx = factorization.solve(-ctx.res)
            if t0 is not None:
                telemetry.registry.observe(f"newton.{analysis}.solve_s",
                                           perf_counter() - t0)
        except LinAlgError as exc:
            message = f"MNA solve failed for {analysis} at t={time:g}: {exc}"
            raise SingularMatrixError(
                message,
                report=_newton_report(ws, system, options, analysis, time,
                                      norms, kind="singular", message=message,
                                      error_type="SingularMatrixError",
                                      iterations=iteration,
                                      vector=ctx.res)) from exc
        if not np.all(np.isfinite(dx)):
            message = (f"non-finite Newton update at iteration {iteration} "
                       f"(t={time:g})")
            raise ConvergenceError(
                message, iterations=iteration,
                report=_newton_report(ws, system, options, analysis, time,
                                      norms, message=message,
                                      error_type="ConvergenceError",
                                      iterations=iteration, vector=dx))
        x_new = x + options.newton_damping * dx
        tol = base_tol + options.reltol * np.maximum(np.abs(x), np.abs(x_new))
        if require_confirm:
            tol = _CONFIRM_TIGHTEN * tol
        converged = bool(np.all(np.abs(options.newton_damping * dx) <= tol))
        x = x_new
        if converged and iteration >= 1:
            if require_confirm and not confirmed_once:
                confirmed_once = True  # one more below-tolerance pass, please
                continue
            if trace is not None:
                trace.converged = True
                ws.convergence.add_newton(trace)
            return x, iteration
        confirmed_once = False
    if trace is not None:
        ws.convergence.add_newton(trace)
    message = (f"Newton failed to converge in {options.max_newton_iterations} "
               f"iterations ({analysis}, t={time:g})")
    raise ConvergenceError(
        message,
        iterations=options.max_newton_iterations,
        residual=float(np.max(np.abs(ctx.res))),
        report=_newton_report(ws, system, options, analysis, time, norms,
                              message=message, error_type="ConvergenceError",
                              iterations=options.max_newton_iterations,
                              vector=ctx.res))


def _newton_report(ws: NewtonWorkspace, system: MNASystem,
                   options: SimulationOptions, analysis: str, time: float,
                   norms, *, message: str, error_type: str,
                   kind: str = "newton", iterations: int | None = None,
                   vector=None, matrix=None):
    """Build/record a FailureReport for a dying Newton solve (or None)."""
    if not options.forensics:
        return None
    return telemetry.forensics.newton_failure(
        kind=kind, analysis=analysis, message=message, error_type=error_type,
        time=time, iterations=iterations, labels=system.unknown_labels(),
        residual=vector, trajectory=norms or (),
        factorization=ws.factorization, matrix=matrix, options=options,
        context={"size": system.size})


def _factorize(ws: NewtonWorkspace, system: MNASystem, ctx: StampContext,
               analysis: str, time: float):
    try:
        return ws.factor(system, ctx)
    except LinAlgError as exc:
        message = (f"singular MNA matrix while solving {analysis} "
                   f"at t={time:g}: {exc}")
        report = None
        if ws.options.forensics:
            # The structural diagnosis of the unfactorable matrix is the
            # "which stamp broke the matrix" signal: empty columns name
            # unconstrained unknowns (floating nodes), empty rows name
            # equations that constrain nothing.
            report = telemetry.forensics.newton_failure(
                kind="singular", analysis=analysis, message=message,
                error_type="SingularMatrixError", time=time,
                labels=system.unknown_labels(), matrix=ctx.jacobian(),
                options=ws.options, context={"size": system.size})
        raise SingularMatrixError(message, report=report) from exc


def collect_outputs(system: MNASystem, ctx: StampContext) -> dict[str, float]:
    """Gather node across values and device-recorded outputs at a solution.

    Auxiliary unknowns (branch currents, behavioral extra unknowns) are
    included under their canonical names unless a device already recorded
    the same signal.
    """
    data: dict[str, float] = {}
    for node in system.nodes:
        data[f"v({node.name})"] = float(ctx.x[system.index_of(node)])
    for device in system.circuit:
        for key, value in device.record(ctx).items():
            data[key] = float(value)
    for offset, name in enumerate(system.aux_signal_names()):
        data.setdefault(name, float(ctx.x[system.num_nodes + offset]))
    return data


class OperatingPointAnalysis:
    """Compute the DC operating point of a circuit.

    Parameters
    ----------
    circuit:
        The netlist to solve.
    options:
        Numerical options; a default set is used when omitted.
    """

    def __init__(self, circuit: Circuit, options: SimulationOptions | None = None) -> None:
        self.circuit = circuit
        self.options = options or SimulationOptions()
        self.system = MNASystem(circuit)

    def run(self, initial_guess: np.ndarray | None = None,
            workspace: NewtonWorkspace | None = None) -> OperatingPoint:
        """Solve the operating point, falling back to source stepping if needed.

        ``workspace`` optionally shares the Newton linear-stage state with
        the caller -- the sensitivity path passes its own workspace so the
        converged factorization is reused instead of re-factored.

        With ``options.telemetry`` enabled the returned operating point
        carries a :class:`~repro.telemetry.TelemetryReport` (spans, metric
        deltas, Newton residual traces) as ``result.telemetry``.
        """
        options = self.options
        workspace = workspace or NewtonWorkspace(options)
        if options.telemetry == "off":
            return self._solve(initial_guess, workspace)
        if workspace.convergence is None:
            workspace.convergence = telemetry.ConvergenceDiagnostics(
                max_records=options.telemetry_max_records)
        with telemetry.session(mode=options.telemetry) as sess:
            result = self._solve(initial_guess, workspace)
        sess.report.convergence = workspace.convergence
        result.telemetry = sess.report
        return result

    def _solve(self, initial_guess: np.ndarray | None,
               workspace: NewtonWorkspace) -> OperatingPoint:
        options = self.options
        x0 = np.zeros(self.system.size) if initial_guess is None else \
            np.array(initial_guess, dtype=float, copy=True)
        with telemetry.span("op.run") as op_span:
            try:
                with telemetry.span("op.newton"):
                    solution, iterations = newton_solve(
                        self.system, x0, "op", 0.0, None, options,
                        source_scale=1.0, workspace=workspace)
            except (ConvergenceError, SingularMatrixError):
                with telemetry.span("op.source_stepping"):
                    solution, iterations = self._source_stepping(x0, workspace)
            with telemetry.span("op.collect"):
                ctx = self.system.assemble(solution, "op", 0.0, None, options,
                                           1.0, want_jacobian=False)
                data = collect_outputs(self.system, ctx)
            op_span.set("newton_iters", iterations)
        return OperatingPoint(data, solution, self.system.unknown_labels(), iterations)

    def sensitivities(self, params, outputs, method: str = "auto",
                      operating_point: OperatingPoint | None = None):
        """Exact output/parameter sensitivities at the operating point.

        One forward Newton solve (skipped when ``operating_point`` is
        given), then one transposed back-substitution per output (adjoint)
        or one forward back-substitution per parameter (direct) on the
        already-factored Jacobian -- see
        :func:`repro.circuit.analysis.sensitivity
        .operating_point_sensitivities`.
        """
        from .sensitivity import operating_point_sensitivities

        return operating_point_sensitivities(
            self, params, outputs, method=method,
            operating_point=operating_point)

    def _source_stepping(self, x0: np.ndarray,
                         workspace: NewtonWorkspace | None = None
                         ) -> tuple[np.ndarray, int]:
        """Homotopy on the independent-source amplitudes (0 -> 1)."""
        options = self.options
        levels = np.linspace(0.0, 1.0, min(options.max_source_steps, 32) + 1)[1:]
        x = np.array(x0, dtype=float, copy=True)
        total_iterations = 0
        track = telemetry.progress.tracker("op.source_stepping",
                                           total=len(levels), unit="levels")
        for index, scale in enumerate(levels):
            try:
                x, iterations = newton_solve(
                    self.system, x, "op", 0.0, None, options,
                    source_scale=float(scale), workspace=workspace)
                total_iterations += iterations
            except (ConvergenceError, SingularMatrixError) as exc:
                # The inner failure's forensic report (when captured) rides
                # along on the wrapping error.
                raise ConvergenceError(
                    f"operating point failed even with source stepping at scale "
                    f"{scale:.3f}: {exc}",
                    report=getattr(exc, "report", None)) from exc
            track.update(index + 1, message=f"scale={scale:.3f}")
        track.finish(len(levels))
        return x, max(total_iterations, 1)
