"""Result containers returned by the analyses.

All containers behave like read-only mappings keyed by signal name:

* node across variables are keyed ``v(<node>)`` (the across value, which is a
  velocity for mechanical nodes),
* device outputs use the names produced by each device's ``record`` method
  (``i(V1)``, ``f(spring)``, ``x(mass)``, ``x(transducer)`` ...).

Transient results additionally provide interpolation, final-value and
peak-finding helpers used by the comparison harness of figure 5 and by the
test-suite assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import numpy as np

from ...errors import AnalysisError

from ..mna import canonical_signal_name

__all__ = ["OperatingPoint", "DCSweepResult", "ACResult", "TransientResult",
           "canonical_signal_name"]


class _SignalMapping(Mapping[str, object]):
    """Shared mapping behaviour (case-sensitive exact keys, helpful errors)."""

    #: :class:`~repro.telemetry.TelemetryReport` of the producing run, set by
    #: the analysis when ``SimulationOptions.telemetry`` is enabled.
    telemetry = None

    def __init__(self, data: dict[str, object]) -> None:
        self._data = dict(data)

    def __getitem__(self, key: str):
        try:
            return self._data[key]
        except KeyError:
            known = ", ".join(sorted(self._data))
            raise KeyError(f"unknown signal {key!r}; available: {known}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def signals(self) -> list[str]:
        """All available signal names."""
        return sorted(self._data)


class OperatingPoint(_SignalMapping):
    """DC operating-point solution.

    Holds the across value of every node, every device-recorded output and
    the raw unknown vector (``raw``) in system ordering for reuse as the
    linearization point of an AC analysis.
    """

    def __init__(self, data: dict[str, float], raw: np.ndarray,
                 labels: list[str], iterations: int,
                 integrator_states: dict | None = None) -> None:
        super().__init__(data)
        self.raw = np.asarray(raw, dtype=float)
        self.labels = list(labels)
        self.iterations = int(iterations)
        self.integrator_states = dict(integrator_states or {})

    def voltage(self, node: str) -> float:
        """Across value of a node (voltage or velocity)."""
        return float(self[f"v({node})"])

    def current(self, device: str) -> float:
        """Recorded branch current / force of a device."""
        return float(self[f"i({device})"])

    def __repr__(self) -> str:
        return f"OperatingPoint({len(self._data)} signals, {self.iterations} iterations)"


class DCSweepResult(_SignalMapping):
    """Result of a DC sweep: one array per signal over the sweep values."""

    def __init__(self, sweep_name: str, sweep_values: np.ndarray,
                 data: dict[str, np.ndarray]) -> None:
        arrays = {key: np.asarray(val, dtype=float) for key, val in data.items()}
        super().__init__(arrays)
        self.sweep_name = sweep_name
        self.sweep_values = np.asarray(sweep_values, dtype=float)

    def column(self, signal: str) -> np.ndarray:
        """The swept values of one signal as a numpy array."""
        return np.asarray(self[signal], dtype=float)

    def __repr__(self) -> str:
        return (f"DCSweepResult({self.sweep_name}: {self.sweep_values.size} points, "
                f"{len(self._data)} signals)")


class ACResult(_SignalMapping):
    """Result of an AC small-signal sweep: complex arrays over frequency."""

    def __init__(self, frequencies: np.ndarray, data: dict[str, np.ndarray]) -> None:
        arrays = {key: np.asarray(val, dtype=complex) for key, val in data.items()}
        super().__init__(arrays)
        self.frequencies = np.asarray(frequencies, dtype=float)

    @property
    def omegas(self) -> np.ndarray:
        """Angular frequencies ``2*pi*f``."""
        return 2.0 * np.pi * self.frequencies

    def magnitude(self, signal: str) -> np.ndarray:
        """Magnitude of a complex signal over frequency."""
        return np.abs(np.asarray(self[signal], dtype=complex))

    def magnitude_db(self, signal: str) -> np.ndarray:
        """Magnitude in decibels (20*log10)."""
        mag = self.magnitude(signal)
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, signal: str) -> np.ndarray:
        """Phase in degrees."""
        return np.degrees(np.angle(np.asarray(self[signal], dtype=complex)))

    def at(self, signal: str, frequency: float) -> complex:
        """Complex value of ``signal`` at the grid point closest to ``frequency``."""
        idx = int(np.argmin(np.abs(self.frequencies - frequency)))
        return complex(np.asarray(self[signal], dtype=complex)[idx])

    def resonance_frequency(self, signal: str) -> float:
        """Frequency of the magnitude peak of ``signal``.

        Refined to sub-grid resolution by parabolic interpolation through
        the peak sample (shared with the FE harmonic analysis).
        """
        from ...fem.harmonic import interpolate_peak_frequency

        return interpolate_peak_frequency(self.frequencies,
                                          self.magnitude(signal))

    def __repr__(self) -> str:
        return f"ACResult({self.frequencies.size} frequencies, {len(self._data)} signals)"


class TransientResult(_SignalMapping):
    """Result of a transient analysis: sampled waveforms over time."""

    def __init__(self, time: np.ndarray, data: dict[str, np.ndarray],
                 statistics: dict[str, float] | None = None,
                 trajectory: np.ndarray | None = None) -> None:
        arrays = {key: np.asarray(val, dtype=float) for key, val in data.items()}
        super().__init__(arrays)
        self.time = np.asarray(time, dtype=float)
        for key, val in arrays.items():
            if val.shape != self.time.shape:
                raise AnalysisError(
                    f"signal {key!r} has {val.size} samples for {self.time.size} time points")
        #: Solver statistics: accepted/rejected steps, Newton iterations, wall time.
        self.statistics = dict(statistics or {})
        #: Raw unknown-vector trajectory ``(num_points, system_size)`` at the
        #: accepted time points; populated when the analysis was run with
        #: ``record_trajectory=True`` (the discrete-adjoint sensitivity sweep
        #: replays it).  ``None`` otherwise.
        self.trajectory = None if trajectory is None \
            else np.asarray(trajectory, dtype=float)

    # ----------------------------------------------------------------- access
    def signal(self, name: str) -> np.ndarray:
        """Waveform of one signal."""
        return np.asarray(self[name], dtype=float)

    def voltage(self, node: str) -> np.ndarray:
        """Across waveform of a node."""
        return self.signal(f"v({node})")

    def final(self, name: str) -> float:
        """Final value of a signal."""
        return float(self.signal(name)[-1])

    def at(self, name: str, t: float) -> float:
        """Linearly interpolated value of ``name`` at time ``t``."""
        return float(np.interp(t, self.time, self.signal(name)))

    def sample(self, name: str, times: Iterable[float]) -> np.ndarray:
        """Interpolate a signal onto the given time points."""
        return np.interp(np.asarray(list(times), dtype=float), self.time, self.signal(name))

    # ------------------------------------------------------------- descriptors
    def peak(self, name: str, after: float = 0.0) -> tuple[float, float]:
        """(time, value) of the maximum of ``name`` for ``t >= after``."""
        mask = self.time >= after
        values = self.signal(name)[mask]
        times = self.time[mask]
        if values.size == 0:
            raise AnalysisError(f"no samples of {name!r} after t={after}")
        idx = int(np.argmax(values))
        return float(times[idx]), float(values[idx])

    def trough(self, name: str, after: float = 0.0) -> tuple[float, float]:
        """(time, value) of the minimum of ``name`` for ``t >= after``."""
        mask = self.time >= after
        values = self.signal(name)[mask]
        times = self.time[mask]
        if values.size == 0:
            raise AnalysisError(f"no samples of {name!r} after t={after}")
        idx = int(np.argmin(values))
        return float(times[idx]), float(values[idx])

    def settled_value(self, name: str, fraction: float = 0.1) -> float:
        """Mean of the last ``fraction`` of the waveform (quasi-static value)."""
        if not (0.0 < fraction <= 1.0):
            raise AnalysisError("fraction must be in (0, 1]")
        n = max(1, int(self.time.size * fraction))
        return float(np.mean(self.signal(name)[-n:]))

    def overshoot(self, name: str, reference: float, after: float = 0.0) -> float:
        """Relative overshoot of ``name`` beyond ``reference`` (0 when none)."""
        if reference == 0.0:
            raise AnalysisError("overshoot needs a non-zero reference value")
        _, peak_value = self.peak(name, after) if reference > 0 else self.trough(name, after)
        return max(0.0, (peak_value - reference) / abs(reference)) if reference > 0 else \
            max(0.0, (reference - peak_value) / abs(reference))

    def __repr__(self) -> str:
        return f"TransientResult({self.time.size} points, {len(self._data)} signals)"
