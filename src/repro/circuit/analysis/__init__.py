"""Circuit analyses: operating point, DC sweep, AC small-signal and transient.

The analyses mirror the SPICE/ELDO analysis types the paper relies on
("FE and SPICE simulators present analogies concerning the analysis types
they can perform: static-dc, harmonic-ac, transient-transient"):

* :class:`~repro.circuit.analysis.op.OperatingPointAnalysis` -- Newton with
  gmin/source stepping fallbacks,
* :class:`~repro.circuit.analysis.dcsweep.DCSweepAnalysis` -- source/parameter
  sweeps with solution continuation,
* :class:`~repro.circuit.analysis.ac.ACAnalysis` -- complex small-signal
  solves around the operating point,
* :class:`~repro.circuit.analysis.transient.TransientAnalysis` -- adaptive
  backward-Euler / trapezoidal time stepping with per-step Newton.

Every analysis also exposes exact parameter sensitivities through its
``sensitivities(params, outputs)`` method -- adjoint (one transposed solve
per output) or direct (one solve per parameter) on the already-factored
system, never finite differences of full solves; see
:mod:`repro.circuit.analysis.sensitivity` and
:mod:`repro.circuit.analysis.adjoint`.
"""

from .options import SimulationOptions
from .results import OperatingPoint, DCSweepResult, ACResult, TransientResult
from .op import OperatingPointAnalysis, newton_solve
from .dcsweep import DCSweepAnalysis
from .ac import ACAnalysis
from .sensitivity import CircuitSensitivityEvaluator
from .transient import TransientAnalysis

__all__ = [
    "SimulationOptions",
    "OperatingPoint",
    "DCSweepResult",
    "ACResult",
    "TransientResult",
    "OperatingPointAnalysis",
    "newton_solve",
    "DCSweepAnalysis",
    "ACAnalysis",
    "CircuitSensitivityEvaluator",
    "TransientAnalysis",
]
