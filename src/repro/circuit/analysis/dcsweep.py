"""DC sweep analysis: repeated operating points over a swept source value.

Used by the examples and the pull-in study: the electrostatic transducer's
displacement-versus-voltage curve is a DC sweep of the drive source.  The
sweep reuses each converged solution as the initial guess of the next point
(continuation), which lets it follow strongly nonlinear characteristics up to
the pull-in fold without source stepping at every point.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ... import telemetry
from ...errors import AnalysisError, ConvergenceError, SingularMatrixError
from ..devices.sources import CurrentSource, VoltageSource
from ..mna import MNASystem
from ..netlist import Circuit
from ..waveforms import DC
from .op import NewtonWorkspace, collect_outputs, newton_solve
from .options import SimulationOptions
from .results import DCSweepResult

__all__ = ["DCSweepAnalysis"]


class DCSweepAnalysis:
    """Sweep the DC value of an independent source and record all outputs.

    Parameters
    ----------
    circuit:
        The netlist to analyse.
    source_name:
        Name of the independent voltage or current source to sweep.
    values:
        Iterable of source values (need not be uniform or monotonic).
    options:
        Numerical options shared with the other analyses.
    continue_on_failure:
        When True, points that fail to converge are skipped (recorded as NaN)
        instead of aborting the sweep -- useful to map out pull-in folds where
        no stable solution exists beyond the fold point.
    """

    def __init__(self, circuit: Circuit, source_name: str, values: Iterable[float],
                 options: SimulationOptions | None = None,
                 continue_on_failure: bool = False) -> None:
        self.circuit = circuit
        self.source_name = source_name
        self.values = np.asarray(list(values), dtype=float)
        if self.values.size == 0:
            raise AnalysisError("DC sweep needs at least one value")
        self.options = options or SimulationOptions()
        self.continue_on_failure = continue_on_failure
        device = circuit[source_name]
        if not isinstance(device, (VoltageSource, CurrentSource)):
            raise AnalysisError(
                f"{source_name!r} is not an independent source; cannot sweep it")
        self._source = device

    def _sweep_solutions(self, system: MNASystem, workspace: NewtonWorkspace):
        """Yield ``(index, x_or_None)`` per sweep value: the single source of
        truth for the continuation policy (warm starts, failure handling,
        waveform restore) shared by :meth:`run` and the sensitivity sweep."""
        original_waveform = self._source.waveform
        x = np.zeros(system.size)
        try:
            for index, value in enumerate(self.values):
                self._source.waveform = DC(float(value))
                try:
                    with telemetry.detail_span("dcsweep.point",
                                               value=float(value)):
                        x, _ = newton_solve(system, x, "dc", 0.0, None,
                                            self.options, 1.0,
                                            workspace=workspace)
                    yield index, x
                except (ConvergenceError, SingularMatrixError) as exc:
                    if exc.report is not None:
                        exc.report.analysis = "dc"
                        exc.report.context["sweep_value"] = float(value)
                    if not self.continue_on_failure:
                        raise
                    x = np.zeros(system.size)
                    yield index, None
        finally:
            self._source.waveform = original_waveform

    def run(self) -> DCSweepResult:
        """Execute the sweep and return per-signal arrays over the sweep values.

        With ``options.telemetry`` enabled the result carries a
        :class:`~repro.telemetry.TelemetryReport` (including per-point Newton
        residual traces) as ``result.telemetry``.
        """
        if self.options.telemetry == "off":
            return self._run(None)
        diagnostics = telemetry.ConvergenceDiagnostics(
            max_records=self.options.telemetry_max_records)
        with telemetry.session(mode=self.options.telemetry) as sess:
            with telemetry.span("dcsweep.run"):
                result = self._run(diagnostics)
        sess.report.convergence = diagnostics
        result.telemetry = sess.report
        return result

    def _run(self, diagnostics) -> DCSweepResult:
        system = MNASystem(self.circuit)
        options = self.options
        rows: list[dict[str, float]] = []
        # One workspace for the whole sweep: a linear circuit's Jacobian is
        # independent of the swept source value, so every point after the
        # first reuses the same factorization.
        workspace = NewtonWorkspace(options)
        workspace.convergence = diagnostics
        track = telemetry.progress.tracker("dcsweep", total=self.values.size,
                                           unit="points")
        with telemetry.span("dcsweep.sweep"):
            for index, x in self._sweep_solutions(system, workspace):
                if x is None:
                    rows.append({})
                    track.update(index + 1, message="point failed")
                    continue
                ctx = system.assemble(x, "dc", 0.0, None, options, 1.0,
                                      want_jacobian=False)
                rows.append(collect_outputs(system, ctx))
                track.update(index + 1)
        track.finish(self.values.size)
        with telemetry.span("dcsweep.collect"):
            keys: set[str] = set()
            for row in rows:
                keys.update(row)
            data = {
                key: np.array([row.get(key, np.nan) for row in rows], dtype=float)
                for key in sorted(keys)
            }
        return DCSweepResult(self.source_name, self.values, data)

    def sensitivities(self, params, outputs, method: str = "auto"):
        """Per-point exact output sensitivities over the sweep values.

        See :func:`repro.circuit.analysis.sensitivity.dcsweep_sensitivities`.
        """
        from .sensitivity import dcsweep_sensitivities

        return dcsweep_sensitivities(self, params, outputs, method=method)
