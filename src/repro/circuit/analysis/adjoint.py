"""Discrete-adjoint (and tangent-linear) sensitivities of transient analyses.

A transient run is a chain of implicit steps: at every accepted time point
``t_k`` the Newton solve enforces ``F_k(x_k, m_{k-1}, p) = 0`` where
``m_{k-1}`` is the committed integrator history (per dynamic state: the
previous value, the previous discrete derivative, the running integral and
the previous integrand -- exactly what :meth:`Integrator.differentiate` /
:meth:`Integrator.integrate` read) and the history itself advances as
``m_k = phi_k(x_k, m_{k-1}, p)``.

Differentiating the chain at the *fixed* accepted step sequence gives the
discrete sensitivity equations.  The implementation replays the stored
solution trajectory once; at each step it

1. re-assembles the step Jacobian ``J_k = dF_k/dx_k`` through the normal
   device stamps and factors it through a fingerprint-keyed store, so a
   linear (or chord-reused) transient resolves to a handful of distinct
   factorizations -- the replay is then mostly cache hits, and
2. performs ONE jointly dual-seeded residual assembly (unknowns, committed
   states and parameters seeded in a single derivative space), which yields
   ``dF_k/dm_{k-1}``, ``dF_k/dp`` *and* -- through the integrator's
   raw-pending capture -- the exact state-update blocks
   ``d m_k / d (x_k, m_{k-1}, p)`` in one pass.

The backward (adjoint) sweep then costs one transposed back-substitution
per step and output; the forward (tangent-linear, ``method="direct"``)
sweep costs one block back-substitution per step.  Both reuse the stored
factorizations -- no additional Newton solve is ever performed, against
``2 P`` full transient re-integrations for a central-difference gradient.

The dependence of the initial condition on the parameters (the DC operating
point solved before time stepping) is chained in exactly through the DC
adjoint of :mod:`repro.circuit.analysis.sensitivity`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ...ad import Dual
from ...errors import LinAlgError, SensitivityError, SingularMatrixError
from ...linalg import (FactorizedSolver, SensitivityResult,
                       matrix_fingerprint)
from ..mna import Integrator, MNASystem
from .sensitivity import (SeededStampContext, _run_seeded, output_selectors,
                          parameter_residual_derivatives, resolve_parameters,
                          seeded_parameters)

if TYPE_CHECKING:  # pragma: no cover
    from .results import TransientResult
    from .transient import TransientAnalysis

__all__ = ["transient_sensitivities"]


def _deriv_of(value, nvars: int) -> np.ndarray:
    """Derivative part of a captured pending expression (zeros for floats)."""
    if isinstance(value, Dual):
        deriv = np.real(value.deriv)
        if deriv.shape != (nvars,):
            raise SensitivityError(
                f"captured state derivative has {deriv.shape[0]} slots, "
                f"expected {nvars} (a device mixed AD seed spaces)")
        return deriv
    return np.zeros(nvars)


@dataclass
class _StepData:
    """Everything the backward sweep needs about one accepted step."""

    factorization: object
    #: ``dF_k/dm_{k-1}`` -- residual dependence on the committed history.
    state_coupling: np.ndarray
    #: ``dF_k/dp`` -- residual parameter derivative.
    param_coupling: np.ndarray
    #: ``d m_k/d x_k`` -- state-update dependence on the step solution.
    update_x: np.ndarray
    #: ``d m_k/d m_{k-1}`` -- state-update recursion matrix.
    update_m: np.ndarray
    #: ``d m_k/d p`` -- direct parameter dependence of the state update.
    update_p: np.ndarray


class _Replay:
    """Forward replay of a stored trajectory, producing per-step blocks."""

    def __init__(self, analysis: "TransientAnalysis", trajectory: np.ndarray,
                 times: np.ndarray, refs, stats: dict) -> None:
        self.analysis = analysis
        self.system = MNASystem(analysis.circuit)
        if trajectory.shape != (times.size, self.system.size):
            raise SensitivityError(
                f"stored trajectory has shape {trajectory.shape}, expected "
                f"({times.size}, {self.system.size})")
        self.trajectory = trajectory
        self.times = times
        self.refs = refs
        self.stats = stats
        self.options = analysis.options
        self.integrator = Integrator(
            Integrator.TRAPEZOIDAL
            if self.options.integration_method == "trapezoidal"
            else Integrator.BACKWARD_EULER)
        self.integrator.capture_raw = True
        self.solver = FactorizedSolver(self.options.solver_backend(),
                                       rtol=self.options.linear_solver_rtol,
                                       cg_fallback=True)
        self._factor_store: dict[str, object] = {}
        self.slots: list[tuple[str, object]] = []
        self.num_params = len(refs)
        #: ``d m_0 / d x_0`` and ``d m_0 / d p`` from the priming assembly.
        self.prime_update_x: np.ndarray | None = None
        self.prime_update_p: np.ndarray | None = None
        self._dc_start: tuple | None = None

    def dc_start(self):
        """``(J_dc factorization, dF_dc/dp)`` at the parameter-dependent
        operating point the transient started from (computed once)."""
        if self._dc_start is None:
            x0 = self.trajectory[0]
            ctx = self.system.assemble(x0, "op", 0.0, None, self.options,
                                       1.0, want_jacobian=True)
            try:
                factorization = self.solver.factorize(ctx.jacobian())
            except LinAlgError as exc:
                raise SingularMatrixError(
                    "singular DC Jacobian in the transient sensitivity "
                    f"chain: {exc}") from exc
            self.stats["factorizations"] += 1
            dres_dc = parameter_residual_derivatives(
                self.system, x0, self.refs, "op", 0.0, None, self.options)
            self._dc_start = (factorization, dres_dc)
        return self._dc_start

    # ------------------------------------------------------------------ helpers
    @property
    def num_states(self) -> int:
        return len(self.slots)

    def _seeded_assembly(self, x: np.ndarray, time: float) -> SeededStampContext:
        """One joint (x, states, params) dual-seeded residual assembly."""
        n = self.system.size
        nvars = n + self.num_states + self.num_params
        self.integrator.clear_raw()
        with seeded_parameters(self.refs, nvars=nvars,
                               offset=n + self.num_states):
            ctx = SeededStampContext(self.system, x, "tran", time,
                                     self.integrator, self.options,
                                     nvars=nvars, x_offset=0)
            _run_seeded(self.system, ctx)
        return ctx

    def _capture_updates(self, nvars: int) -> np.ndarray:
        """``(S, nvars)`` derivatives of every pending state update."""
        update = np.zeros((self.num_states, nvars))
        for j, (kind, key) in enumerate(self.slots):
            update[j] = _deriv_of(self.integrator.raw_pending(kind, key), nvars)
        return update

    def _seed_committed(self, committed: list[float]) -> None:
        n = self.system.size
        nvars = n + self.num_states + self.num_params
        for j, (kind, key) in enumerate(self.slots):
            self.integrator.override_state(
                kind, key, Dual.variable(committed[j], index=n + j,
                                         nvars=nvars))

    def _restore_committed(self, committed: list[float]) -> None:
        for j, (kind, key) in enumerate(self.slots):
            self.integrator.override_state(kind, key, committed[j])

    def _read_committed(self) -> list[float]:
        values: list[float] = []
        for kind, key in self.slots:
            value = self.integrator.committed_state(kind, key)
            values.append(float(getattr(value, "value", value)))
        return values

    def _factor(self, x: np.ndarray, time: float):
        """Factor the step Jacobian, deduplicated on exact fingerprints."""
        ctx = self.system.assemble(x, "tran", time, self.integrator,
                                   self.options, 1.0, want_jacobian=True)
        matrix = ctx.jacobian()
        self.integrator.discard()
        key = matrix_fingerprint(matrix)
        handle = self._factor_store.get(key)
        if handle is None:
            try:
                handle = self.solver.factorize(matrix)
            except LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular transient Jacobian at t={time:g} in the "
                    f"sensitivity replay: {exc}") from exc
            self._factor_store[key] = handle
            self.stats["factorizations"] += 1
        else:
            self.stats["factor_cache_hits"] += 1
        return handle

    # ------------------------------------------------------------------ replay
    def prime(self) -> None:
        """Replay the integrator priming at ``t0`` and capture ``d m_0``."""
        x0 = self.trajectory[0]
        self.integrator.priming = True
        self.integrator.set_step(self.analysis.t_step)
        # Probe assembly: enumerate the dynamic-state slots first (their
        # count defines the joint seed space of every later assembly).
        self.integrator.clear_raw()
        probe = SeededStampContext(self.system, x0, "tran", self.times[0],
                                   self.integrator, self.options, nvars=0)
        _run_seeded(self.system, probe)
        self.slots = self.integrator.state_slots()
        self.integrator.discard()
        # Seeded priming assembly: m_0 = phi_0(x_0, p).
        ctx = self._seeded_assembly(x0, self.times[0])
        del ctx
        n = self.system.size
        nvars = n + self.num_states + self.num_params
        update = self._capture_updates(nvars)
        self.prime_update_x = update[:, :n]
        self.prime_update_p = update[:, n + self.num_states:]
        self.integrator.commit()
        self.integrator.priming = False

    def steps(self):
        """Yield ``(index, _StepData)`` for every accepted step, in order."""
        n = self.system.size
        num_states = self.num_states
        nvars = n + num_states + self.num_params
        for k in range(1, self.times.size):
            h = float(self.times[k] - self.times[k - 1])
            if h <= 0.0:
                raise SensitivityError(
                    f"non-increasing trajectory times at index {k}")
            self.integrator.set_step(h)
            x = self.trajectory[k]
            committed = self._read_committed()
            factorization = self._factor(x, self.times[k])
            self._seed_committed(committed)
            ctx = self._seeded_assembly(x, self.times[k])
            update = self._capture_updates(nvars)
            self._restore_committed(committed)
            self.integrator.commit()
            yield k, _StepData(
                factorization=factorization,
                state_coupling=ctx.dres[:, n:n + num_states],
                param_coupling=ctx.dres[:, n + num_states:],
                update_x=update[:, :n],
                update_m=update[:, n:n + num_states],
                update_p=update[:, n + num_states:],
            )


def _initial_condition_chain(replay: _Replay, weights: np.ndarray,
                             stats: dict) -> np.ndarray:
    """``(M, P)`` contribution of the parameter-dependent DC start point.

    ``weights`` is ``d y / d x_0`` as an ``(n, M)`` block (the adjoint of
    the priming state update); the chain resolves ``dx_0/dp`` through one
    transposed solve on the DC Jacobian.
    """
    analysis = replay.analysis
    num_outputs = weights.shape[1]
    if analysis.use_ic or not np.any(weights):
        return np.zeros((num_outputs, replay.num_params))
    dc_factorization, dres_dc = replay.dc_start()
    adjoint = dc_factorization.solve_transposed(weights)
    stats["adjoint_solves"] += num_outputs
    return -(adjoint.T @ dres_dc)


def transient_sensitivities(analysis: "TransientAnalysis", params: Iterable,
                            outputs: Iterable[str], method: str = "adjoint",
                            result: "TransientResult | None" = None
                            ) -> SensitivityResult:
    """Exact final-time sensitivities of a transient analysis.

    Computes ``d y/dp`` for every requested output ``y`` = unknown signal at
    the final accepted time point, with respect to the device parameters --
    at the fixed step sequence the (re-)run produced.  ``method`` is
    ``"adjoint"`` (backward sweep, one transposed back-substitution per step
    and output), ``"direct"`` (tangent-linear forward sweep, one block
    back-substitution per step) or ``"auto"``.

    ``result`` may pass a :class:`TransientResult` carrying a stored
    trajectory (``record_trajectory=True``); otherwise the transient is
    (re)integrated once -- the *only* full nonlinear solve this function
    performs.

    Memory note: the backward sweep stores every step's coupling blocks
    (plus one factorization per *distinct* step Jacobian), so its footprint
    grows with the accepted-step count; for very long transients with few
    parameters prefer ``method="direct"``, which streams the steps with
    O(1) storage.
    """
    if method not in ("auto", "adjoint", "direct"):
        raise SensitivityError(
            f"unknown transient sensitivity method {method!r} "
            "(use 'auto', 'adjoint' or 'direct')")
    stats = {"transient_solves": 0, "newton_solves": 0, "factorizations": 0,
             "factor_cache_hits": 0, "adjoint_solves": 0, "direct_solves": 0}
    if result is None or getattr(result, "trajectory", None) is None:
        previous = analysis.record_trajectory
        analysis.record_trajectory = True
        try:
            result = analysis.run()
        finally:
            analysis.record_trajectory = previous
        stats["transient_solves"] = 1
    trajectory = np.asarray(result.trajectory, dtype=float)
    times = np.asarray(result.time, dtype=float)
    if times.size < 2:
        raise SensitivityError(
            "transient sensitivities need at least one accepted step")

    refs = resolve_parameters(analysis.circuit, params)
    replay = _Replay(analysis, trajectory, times, refs, stats)
    names, selectors = output_selectors(replay.system, outputs)
    num_outputs, num_params = len(names), len(refs)
    if method == "auto":
        method = "adjoint" if num_outputs <= num_params else "direct"
    replay.prime()

    if method == "direct":
        matrix = _forward_sweep(replay, selectors, stats)
    else:
        matrix = _backward_sweep(replay, selectors, stats)
    values = selectors @ trajectory[-1]
    return SensitivityResult(
        outputs=names, params=tuple(ref.label for ref in refs),
        values=values, matrix=matrix, method=method, stats=stats)


def _forward_sweep(replay: _Replay, selectors: np.ndarray,
                   stats: dict) -> np.ndarray:
    """Tangent-linear propagation of ``dx_k/dp`` through the replay."""
    analysis = replay.analysis
    system = replay.system
    num_params = replay.num_params
    if analysis.use_ic:
        dx0 = np.zeros((system.size, num_params))
    else:
        dc_factorization, dres_dc = replay.dc_start()
        dx0 = dc_factorization.solve(-dres_dc)
        stats["direct_solves"] += num_params
    sensitivity = dx0
    state = replay.prime_update_x @ dx0 + replay.prime_update_p
    for _, step in replay.steps():
        rhs = -(step.param_coupling + step.state_coupling @ state)
        try:
            sensitivity = step.factorization.solve(rhs)
        except LinAlgError as exc:
            raise SingularMatrixError(
                f"transient tangent-linear solve failed: {exc}") from exc
        stats["direct_solves"] += num_params
        state = step.update_x @ sensitivity + step.update_m @ state \
            + step.update_p
    return selectors @ sensitivity


def _backward_sweep(replay: _Replay, selectors: np.ndarray,
                    stats: dict) -> np.ndarray:
    """Discrete-adjoint backward recursion over the stored step blocks."""
    steps = [step for _, step in replay.steps()]
    num_outputs = selectors.shape[0]
    num_params = replay.num_params
    gradient = np.zeros((num_outputs, num_params))
    mu = np.zeros((replay.num_states, num_outputs))
    last = len(steps) - 1
    for k in range(last, -1, -1):
        step = steps[k]
        rhs = step.update_x.T @ mu
        if k == last:
            rhs = rhs + selectors.T
        try:
            lam = step.factorization.solve_transposed(rhs)
        except LinAlgError as exc:
            raise SingularMatrixError(
                f"transient adjoint solve failed: {exc}") from exc
        stats["adjoint_solves"] += num_outputs
        gradient += -(lam.T @ step.param_coupling) + mu.T @ step.update_p
        mu = step.update_m.T @ mu - step.state_coupling.T @ lam
    # Initial condition: m_0 = phi_0(x_0(p), p).
    gradient += mu.T @ replay.prime_update_p
    weights = replay.prime_update_x.T @ mu
    gradient += _initial_condition_chain(replay, weights, stats)
    return gradient
