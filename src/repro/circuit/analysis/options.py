"""Simulation options shared by all analyses.

The knobs deliberately mirror the classic SPICE option names (RELTOL, ABSTOL,
VNTOL, GMIN, ITL1/ITL4, TRTOL) so that option decks from the literature map
one-to-one.  The defaults are tuned for the microsystem netlists of the
paper: across variables span volts down to nanometre-per-second velocities,
hence the fairly tight ``vntol``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ... import constants
from ...errors import AnalysisError

__all__ = ["SimulationOptions"]


@dataclass
class SimulationOptions:
    """Numerical settings for the MNA analyses.

    Attributes
    ----------
    reltol:
        Relative convergence tolerance on unknown updates.
    abstol:
        Absolute tolerance on through-type unknowns (currents, forces).
    vntol:
        Absolute tolerance on across-type unknowns (voltages, velocities).
    gmin:
        Conductance tied from every node to ground for conditioning.
    max_newton_iterations:
        Iteration cap of a single Newton solve (SPICE ITL1/ITL4).
    max_source_steps:
        Number of homotopy levels used when plain Newton fails on the OP.
    integration_method:
        ``"trapezoidal"`` (default) or ``"backward_euler"``.
    trtol:
        Truncation-error over-estimation factor in the step controller.
    min_step_ratio:
        Smallest allowed step as a fraction of the requested print step.
    max_step_growth:
        Largest factor by which two consecutive steps may differ.
    newton_damping:
        Damping factor applied to Newton updates (1.0 = full steps).
    linear_solver:
        Linear-solve routing for the Newton updates: ``"auto"`` picks the
        sparse direct solver once the unknown count exceeds
        ``sparse_threshold``; ``"dense"`` forces LAPACK; ``"sparse"`` forces
        the SuperLU direct solve; ``"cg"`` forces Jacobi-preconditioned
        conjugate gradients (SPD systems only).
    linear_solver_rtol:
        Relative tolerance of the iterative (``"cg"``) linear solver.
    sparse_threshold:
        Unknown count above which ``"auto"`` switches from the dense LAPACK
        solve to sparse assembly + SuperLU.
    jacobian_reuse:
        Factorization-reuse policy of the Newton linear stage:

        * ``"off"`` -- factor the freshly assembled Jacobian on every
          iteration (the historical behaviour),
        * ``"auto"`` (default) -- compare the assembled Jacobian against
          the recently factored matrices (exact array equality) and reuse
          the held factorization whenever the values are unchanged.
          Bit-identical to ``"off"``; linear circuits factor once per
          structure/step-size and sweeps/transients amortize it,
        * ``"chord"`` -- additionally hold the factorization across
          iterations and accepted time steps, assembling residual-only
          (no derivatives) while it converges, with an automatic
          full-Newton refactor when the residual stalls.  Fastest for
          smooth nonlinear transients; iterates may differ from full
          Newton within the convergence tolerance.
    refactor_threshold:
        Chord-Newton stall criterion: a chord iteration must shrink the
        residual norm below ``refactor_threshold`` times the previous
        iteration's norm, otherwise the Jacobian is refactored.
    step_chord_reuse:
        Chord-mode only: when a transient step is rejected (or re-grown) and
        only the step size ``h`` changed, keep riding the accepted-step
        factorization instead of refactoring (moderate step ratios only;
        the solve then runs to a tightened update tolerance with a
        confirming pass, and the stall detector still refactors when the
        step change was too aggressive).  Disable to recover the historical
        refactor-on-every-step-change chord behaviour exactly.
    behavioral_compile:
        Compile behavioral models to generated kernels
        (:mod:`repro.hdl.compile`) instead of re-interpreting their
        expressions through the AD layer on every stamp.  Results are
        bit-identical; the interpreter remains the verified fallback for
        anything the tracer cannot follow.  Set False (or export
        ``REPRO_BEHAVIORAL_INTERP=1``) to force the interpreter everywhere.
    telemetry:
        Instrumentation level of the run (see :mod:`repro.telemetry`):
        ``"off"`` (default) collects nothing beyond the always-on counters;
        ``"summary"`` records phase spans, timing histograms and convergence
        digests; ``"full"`` additionally keeps per-step/per-point detail
        spans and residual trajectories.  When enabled the analysis attaches
        a :class:`~repro.telemetry.TelemetryReport` to its result object as
        ``result.telemetry``.
    telemetry_max_records:
        Storage cap per convergence-diagnostics category (Newton traces,
        step records, optimizer iterates).  Storage stops at the cap, the
        ``*_total`` counters keep counting -- see
        :mod:`repro.telemetry.convergence` for the contract.
    health_check:
        Run a cheap 1-norm condition estimate (LAPACK ``gecon`` / a
        deterministic Hager iteration, see
        :mod:`repro.telemetry.health`) on every freshly factored Jacobian
        and warn (``NumericalHealthWarning`` + ``health.near_singular``
        counter) when it exceeds ``condition_limit``.  Off by default:
        costs a few back-substitutions per factorization.
    condition_limit:
        Condition-estimate threshold of ``health_check``.
    forensics:
        Capture a structured :class:`~repro.telemetry.FailureReport`
        (residual trajectory, offending unknown names, condition estimate,
        last-good state) when a solve fails, attached to the raised
        exception as ``exc.report`` and retained in
        ``repro.telemetry.forensics.recent_failures()``.  Off by default;
        the capture only runs on failure paths, but tracking the residual
        trajectory costs one float per Newton iteration.
    """

    reltol: float = constants.RELTOL
    abstol: float = constants.ABSTOL
    vntol: float = constants.VNTOL
    gmin: float = constants.GMIN
    max_newton_iterations: int = constants.MAX_NEWTON_ITERATIONS
    max_source_steps: int = constants.MAX_SOURCE_STEPS
    integration_method: str = "trapezoidal"
    trtol: float = 7.0
    min_step_ratio: float = 1e-9
    max_step_growth: float = 2.0
    newton_damping: float = 1.0
    linear_solver: str = "auto"
    linear_solver_rtol: float = 1e-10
    sparse_threshold: int = 256
    jacobian_reuse: str = "auto"
    refactor_threshold: float = 0.5
    step_chord_reuse: bool = True
    behavioral_compile: bool = True
    telemetry: str = "off"
    telemetry_max_records: int = 10000
    health_check: bool = False
    condition_limit: float = 1e12
    forensics: bool = False

    def __post_init__(self) -> None:
        if self.reltol <= 0.0 or self.reltol >= 1.0:
            raise AnalysisError("reltol must be in (0, 1)")
        if self.abstol <= 0.0 or self.vntol <= 0.0:
            raise AnalysisError("abstol and vntol must be positive")
        if self.gmin < 0.0:
            raise AnalysisError("gmin must be non-negative")
        if self.max_newton_iterations < 2:
            raise AnalysisError("max_newton_iterations must be at least 2")
        if self.integration_method not in ("trapezoidal", "backward_euler"):
            raise AnalysisError(
                f"unknown integration method {self.integration_method!r}")
        if not (0.0 < self.newton_damping <= 1.0):
            raise AnalysisError("newton_damping must be in (0, 1]")
        if self.max_step_growth < 1.1:
            raise AnalysisError("max_step_growth must be at least 1.1")
        if self.linear_solver not in ("auto", "dense", "sparse", "cg"):
            raise AnalysisError(
                f"unknown linear solver {self.linear_solver!r} "
                "(use 'auto', 'dense', 'sparse' or 'cg')")
        if self.linear_solver_rtol <= 0.0:
            raise AnalysisError("linear_solver_rtol must be positive")
        if self.sparse_threshold < 1:
            raise AnalysisError("sparse_threshold must be at least 1")
        if self.jacobian_reuse not in ("off", "auto", "chord"):
            raise AnalysisError(
                f"unknown jacobian_reuse policy {self.jacobian_reuse!r} "
                "(use 'off', 'auto' or 'chord')")
        if not (0.0 < self.refactor_threshold < 1.0):
            raise AnalysisError("refactor_threshold must be in (0, 1)")
        if self.telemetry not in ("off", "summary", "full"):
            raise AnalysisError(
                f"unknown telemetry level {self.telemetry!r} "
                "(use 'off', 'summary' or 'full')")
        if self.telemetry_max_records < 1:
            raise AnalysisError("telemetry_max_records must be at least 1")
        if self.condition_limit <= 1.0:
            raise AnalysisError("condition_limit must exceed 1")

    def use_sparse(self, size: int) -> bool:
        """Whether a system of ``size`` unknowns should assemble sparse."""
        if self.linear_solver == "dense":
            return False
        if self.linear_solver in ("sparse", "cg"):
            return True
        return size > self.sparse_threshold

    def solver_backend(self) -> str:
        """The :class:`repro.linalg.FactorizedSolver` backend to use.

        ``"cg"`` when forced; otherwise ``"auto"``, which resolves to the
        SuperLU backend for sparse assemblies and dense LAPACK otherwise --
        matching :meth:`use_sparse` because the assembly type follows it.
        """
        return "cg" if self.linear_solver == "cg" else "auto"

    def with_(self, **changes) -> "SimulationOptions":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)
