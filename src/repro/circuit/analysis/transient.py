"""Transient analysis: adaptive time stepping with per-step Newton solves.

The integration follows standard SPICE practice:

1. the DC operating point provides the initial condition (unless
   ``use_ic=True`` requests a cold start from zero),
2. the integrator (:class:`~repro.circuit.mna.Integrator`) is *primed* with
   that solution so every dynamic state has a consistent history at ``t0``,
3. time steps are taken with the trapezoidal rule (or backward Euler), each
   step solved by the shared Newton routine,
4. steps are rejected and halved when Newton fails or when the local
   truncation error -- estimated from the deviation of the converged solution
   from the polynomial predictor -- exceeds ``trtol`` times the tolerance,
5. waveform breakpoints (pulse edges, PWL corners) are never stepped over.

The recorded signals are the across value of every node plus everything the
devices' ``record`` methods expose (branch currents, forces, displacements,
transducer internal states), which is how the displacement traces of the
paper's figure 5 come out of the solver directly.
"""

from __future__ import annotations

import dataclasses
import time as _time
from collections import deque
from typing import Iterable

import numpy as np

from ... import telemetry
from ...errors import AnalysisError, ConvergenceError, SingularMatrixError
from ...telemetry import ConvergenceDiagnostics, StepRecord
from ..mna import Integrator, MNASystem
from ..netlist import Circuit
from .op import (NewtonWorkspace, OperatingPointAnalysis, collect_outputs,
                 newton_solve)
from .options import SimulationOptions
from .results import OperatingPoint, TransientResult

__all__ = ["TransientAnalysis"]

#: Hard cap on accepted time points, to bound runaway analyses.
_MAX_POINTS = 2_000_000


class TransientAnalysis:
    """Time-domain simulation of a circuit.

    Parameters
    ----------
    circuit:
        The netlist to simulate.
    t_stop:
        Final time [s].
    t_step:
        Suggested (and maximum, unless ``max_step`` is given) time step; also
        the initial step.  Defaults to ``t_stop / 200``.
    t_start:
        Start time (default 0); the result contains a point at ``t_start``.
    max_step:
        Optional hard cap on the step size (defaults to ``t_step``).
    use_ic:
        When True the operating-point solve is skipped and integration starts
        from a zero solution vector (SPICE ``UIC``).
    options:
        Shared numerical options.
    """

    def __init__(self, circuit: Circuit, t_stop: float, t_step: float | None = None,
                 t_start: float = 0.0, max_step: float | None = None,
                 use_ic: bool = False, options: SimulationOptions | None = None,
                 record_trajectory: bool = False) -> None:
        if t_stop <= t_start:
            raise AnalysisError("t_stop must be greater than t_start")
        self.circuit = circuit
        self.t_start = float(t_start)
        self.t_stop = float(t_stop)
        self.t_step = float(t_step) if t_step is not None else (t_stop - t_start) / 200.0
        if self.t_step <= 0.0:
            raise AnalysisError("t_step must be positive")
        self.max_step = float(max_step) if max_step is not None else self.t_step
        if self.max_step <= 0.0:
            raise AnalysisError("max_step must be positive")
        self.use_ic = bool(use_ic)
        self.options = options or SimulationOptions()
        #: Keep the raw unknown vectors of every accepted point on the result
        #: (``TransientResult.trajectory``) so the sensitivity sweep can
        #: replay the exact step sequence.
        self.record_trajectory = bool(record_trajectory)

    # ------------------------------------------------------------------ helpers
    def _breakpoints(self) -> list[float]:
        points: set[float] = set()
        for device in self.circuit:
            waveform = getattr(device, "waveform", None)
            if waveform is None:
                continue
            for t in waveform.breakpoints():
                if self.t_start < t < self.t_stop:
                    points.add(float(t))
        return sorted(points)

    def _tolerances(self, system: MNASystem, x: np.ndarray) -> np.ndarray:
        options = self.options
        base = np.where(np.arange(system.size) < system.num_nodes,
                        options.vntol, options.abstol)
        return base + options.reltol * np.abs(x)

    # ------------------------------------------------------------------ main run
    def run(self, operating_point: OperatingPoint | None = None) -> TransientResult:
        """Integrate the circuit from ``t_start`` to ``t_stop``.

        With ``options.telemetry`` enabled the result carries a
        :class:`~repro.telemetry.TelemetryReport` as ``result.telemetry``:
        phase spans (per-step spans in ``"full"`` mode), timing histograms,
        Newton residual traces and the step-size/LTE/rejection history.
        """
        if self.options.telemetry == "off":
            return self._run(operating_point, None)
        diagnostics = ConvergenceDiagnostics(
            max_records=self.options.telemetry_max_records)
        with telemetry.session(mode=self.options.telemetry) as sess:
            with telemetry.span("transient.run"):
                result = self._run(operating_point, diagnostics)
        sess.report.convergence = diagnostics
        result.telemetry = sess.report
        return result

    def _run(self, operating_point: OperatingPoint | None,
             diagnostics: ConvergenceDiagnostics | None) -> TransientResult:
        wall_start = _time.perf_counter()
        system = MNASystem(self.circuit)
        options = self.options
        integrator = Integrator(
            Integrator.TRAPEZOIDAL if options.integration_method == "trapezoidal"
            else Integrator.BACKWARD_EULER)

        if self.use_ic:
            x = np.zeros(system.size)
        else:
            with telemetry.span("transient.op"):
                if operating_point is None:
                    operating_point = OperatingPointAnalysis(
                        self.circuit, options.with_(telemetry="off")).run()
                if operating_point.raw.shape != (system.size,):
                    raise AnalysisError(
                        "operating point does not match this circuit")
                x = np.array(operating_point.raw, dtype=float, copy=True)

        # Prime the integrator: register the t0 value of every dynamic state.
        with telemetry.span("transient.prime"):
            integrator.priming = True
            integrator.set_step(self.t_step)
            ctx0 = system.assemble(x, "tran", self.t_start, integrator, options,
                                   1.0, want_jacobian=False)
            first_row = collect_outputs(system, ctx0)
            integrator.commit()
            integrator.priming = False

        times: list[float] = [self.t_start]
        rows: list[dict[str, float]] = [first_row]
        history_x: list[np.ndarray] = [x.copy()]
        history_t: list[float] = [self.t_start]
        trajectory: list[np.ndarray] | None = \
            [x.copy()] if self.record_trajectory else None

        breakpoints = self._breakpoints()
        bp_index = 0
        #: One workspace for the whole run: factorizations survive across
        #: time steps, so a linear circuit at a fixed step factors once.
        workspace = NewtonWorkspace(options)
        workspace.convergence = diagnostics
        stats = {"accepted": 0, "rejected": 0, "newton_iterations": 0,
                 "newton_time_s": 0.0}
        t = self.t_start
        h = min(self.t_step, self.max_step)
        min_step = max(self.t_step * options.min_step_ratio, 1e-18)
        track = telemetry.progress.tracker(
            "transient", total=self.t_stop - self.t_start, unit="s")
        # Forensics keep a short tail of step attempts plus the last Newton
        # failure's report so a step-underflow post-mortem can show how the
        # controller ground to a halt and where the last healthy state was.
        recent_steps: deque | None = deque(maxlen=32) if options.forensics \
            else None
        last_newton_report = None

        while t < self.t_stop - 1e-15:
            if self.t_stop - t <= max(min_step, 1e-12 * self.t_stop):
                break
            # Every step attempt (accepted or rejected) lives in one span so
            # a trace accounts for the full integration loop.
            with telemetry.span("transient.step") as step_span:
                while bp_index < len(breakpoints) and breakpoints[bp_index] <= t + 1e-15:
                    bp_index += 1
                h = min(h, self.max_step, self.t_stop - t)
                if bp_index < len(breakpoints):
                    distance = breakpoints[bp_index] - t
                    if distance > 1e-15:
                        h = min(h, distance)
                if h < min_step:
                    message = (f"transient step underflow at t={t:g} "
                               f"(step {h:g} < {min_step:g})")
                    report = None
                    if options.forensics:
                        inner = last_newton_report
                        report = telemetry.forensics.record(
                            telemetry.forensics.FailureReport(
                                kind="step_underflow", analysis="tran",
                                message=message,
                                error_type="ConvergenceError", time=t,
                                residual_trajectory=list(
                                    inner.residual_trajectory) if inner else [],
                                offending=list(inner.offending)
                                if inner else [],
                                condition_estimate=inner.condition_estimate
                                if inner else None,
                                last_good=telemetry.forensics.state_snapshot(
                                    system.unknown_labels(), history_x[-1],
                                    history_t[-1]),
                                step_history=list(recent_steps or ()),
                                options=dataclasses.asdict(options),
                                context={"size": system.size,
                                         "min_step": min_step}))
                    raise ConvergenceError(message, report=report)

                t_new = t + h
                integrator.set_step(h)
                # Predictor: linear extrapolation of the last two accepted points.
                if len(history_x) >= 2 and history_t[-1] > history_t[-2]:
                    slope = (history_x[-1] - history_x[-2]) / (history_t[-1] - history_t[-2])
                    x_guess = history_x[-1] + slope * h
                else:
                    slope = None
                    x_guess = history_x[-1].copy()

                step_span.annotate(t=t_new, h=h)
                newton_start = _time.perf_counter()
                try:
                    x_new, iterations = newton_solve(
                        system, x_guess, "tran", t_new, integrator, options, 1.0,
                        workspace=workspace)
                except (ConvergenceError, SingularMatrixError) as exc:
                    stats["newton_time_s"] += _time.perf_counter() - newton_start
                    integrator.discard()
                    stats["rejected"] += 1
                    step_span.set("accepted", False)
                    if diagnostics is not None:
                        diagnostics.add_step(StepRecord(t_new, h, accepted=False))
                    if recent_steps is not None:
                        recent_steps.append({"time": t_new, "dt": h,
                                             "accepted": False,
                                             "reason": type(exc).__name__})
                        if getattr(exc, "report", None) is not None:
                            last_newton_report = exc.report
                    h *= 0.25
                    continue
                stats["newton_time_s"] += _time.perf_counter() - newton_start

                stats["newton_iterations"] += iterations
                # Local truncation error estimate: converged solution versus the
                # polynomial predictor, scaled by the mixed tolerance.  Only the
                # node across variables are controlled -- auxiliary branch
                # currents are algebraic quantities whose derivative jumps at
                # waveform corners and would otherwise force needless step cuts.
                if slope is not None:
                    n_nodes = system.num_nodes
                    tol = self._tolerances(system, x_new)[:n_nodes]
                    if n_nodes > 0:
                        error = np.abs(x_new[:n_nodes] - x_guess[:n_nodes])
                        error_ratio = float(np.max(error / (options.trtol * tol)))
                    else:
                        error_ratio = 0.0
                else:
                    error_ratio = 0.0
                if error_ratio > 1.0 and h > 4.0 * min_step:
                    integrator.discard()
                    stats["rejected"] += 1
                    step_span.annotate(accepted=False, error_ratio=error_ratio,
                                       newton_iters=iterations)
                    if diagnostics is not None:
                        diagnostics.add_step(StepRecord(
                            t_new, h, accepted=False, error_ratio=error_ratio,
                            newton_iterations=iterations))
                    if recent_steps is not None:
                        recent_steps.append({"time": t_new, "dt": h,
                                             "accepted": False,
                                             "error_ratio": error_ratio,
                                             "reason": "lte"})
                    h = max(h * max(0.2, 0.9 / error_ratio ** 0.5), min_step)
                    continue

                # Accept the step: refresh pending states at the converged point,
                # record outputs and commit the integrator history.  The record
                # pass never reads the Jacobian, so it assembles residual-only.
                ctx = system.assemble(x_new, "tran", t_new, integrator, options, 1.0,
                                      want_jacobian=False)
                rows.append(collect_outputs(system, ctx))
                integrator.commit()
                times.append(t_new)
                history_x.append(x_new.copy())
                history_t.append(t_new)
                if trajectory is not None:
                    trajectory.append(x_new.copy())
                if len(history_x) > 3:
                    history_x.pop(0)
                    history_t.pop(0)
                # A waveform corner invalidates the polynomial predictor history:
                # restart the extrapolation from the breakpoint itself.
                if bp_index < len(breakpoints) and abs(breakpoints[bp_index] - t_new) <= 1e-15:
                    history_x = [x_new.copy()]
                    history_t = [t_new]
                stats["accepted"] += 1
                step_span.annotate(accepted=True, error_ratio=error_ratio,
                                   newton_iters=iterations)
                if diagnostics is not None:
                    diagnostics.add_step(StepRecord(
                        t_new, h, accepted=True, error_ratio=error_ratio,
                        newton_iterations=iterations))
                if recent_steps is not None:
                    recent_steps.append({"time": t_new, "dt": h,
                                         "accepted": True,
                                         "error_ratio": error_ratio})
                    last_newton_report = None  # solve recovered
                t = t_new
                x = x_new
                track.update(t - self.t_start, dt=h)

                if error_ratio < 0.1:
                    h = min(h * options.max_step_growth, self.max_step)
                elif error_ratio > 0.5:
                    h = max(h * 0.8, min_step)
                if len(times) > _MAX_POINTS:
                    raise AnalysisError(
                        f"transient produced more than {_MAX_POINTS} points; "
                        "increase t_step or loosen tolerances")

        with telemetry.span("transient.collect"):
            keys: set[str] = set()
            for row in rows:
                keys.update(row)
            data = {key: np.array([row.get(key, np.nan) for row in rows], dtype=float)
                    for key in sorted(keys)}
        track.finish(t - self.t_start)
        stats["wall_time_s"] = _time.perf_counter() - wall_start
        stats["points"] = len(times)
        stats.update(workspace.statistics())
        return TransientResult(
            np.asarray(times), data, statistics=stats,
            trajectory=None if trajectory is None else np.asarray(trajectory))

    def sensitivities(self, params, outputs, method: str = "adjoint",
                      result: TransientResult | None = None):
        """Exact final-time output sensitivities (discrete adjoint).

        See :func:`repro.circuit.analysis.adjoint.transient_sensitivities`;
        ``params`` are ``"device.param"`` strings, ``outputs`` canonical
        unknown signal names.  Pass a ``result`` from a
        ``record_trajectory=True`` run to avoid re-integrating.
        """
        from .adjoint import transient_sensitivities

        return transient_sensitivities(self, params, outputs, method=method,
                                       result=result)
