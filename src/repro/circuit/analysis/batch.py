"""Batched DC-class analyses: B campaign points through one Newton loop.

A campaign evaluates the *same* circuit at B parameter points.  The drivers
here stack those points along a lane axis and run one vectorized Newton
iteration over the block:

* devices whose stamps broadcast (``Device.batch_safe``) are stamped once
  with ``(B,)`` parameter/state arrays,
* devices that cannot broadcast (AD-dual behavioral models) are stamped per
  lane through a genuine serial :class:`~repro.circuit.mna.StampContext`
  aliasing the batch arrays,
* the linear stage factors all B Jacobians in one
  :func:`repro.linalg.batched_factorize` call,
* convergence is tested per lane with the exact serial criterion; converged
  lanes freeze while stragglers iterate.

A lane that fails any serial failure condition (non-finite residual /
Jacobian / update, singular matrix, iteration cap) is *retired* from the
batch and reported back as unsolved -- the campaign evaluator re-runs it
through the ordinary serial path, which reproduces the exact serial error
(or rescues it, e.g. via operating-point source stepping).  The batch never
dies because one point does.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable, Sequence

import numpy as np

from ... import telemetry
from ...errors import AnalysisError, LinAlgError
from ...linalg import batched_factorize
from ..devices.sources import CurrentSource, VoltageSource
from ..mna import BatchStampContext, MNASystem
from ..netlist import Circuit
from ..waveforms import DC
from .op import collect_outputs
from .options import SimulationOptions
from .results import DCSweepResult, OperatingPoint

__all__ = ["ParameterColumns", "batch_supported", "assemble_batch",
           "batched_newton", "batched_operating_points", "batched_dcsweeps"]


class ParameterColumns:
    """Per-lane values of the tunable parameters a batch sweeps.

    Each assignment targets one device parameter (the
    :attr:`~repro.circuit.devices.base.Device._TUNABLE` protocol) with a
    ``(B,)`` value column.  Batch-safe devices take the whole column at once
    (:meth:`set_arrays`) so vectorized stamps broadcast; per-lane passes
    (non-broadcastable stamping, output collection) swap in lane scalars via
    :meth:`set_lane` / :meth:`set_unsafe_lane`.  :meth:`restore` puts the
    original values back; use the instance as a context manager to make that
    unconditional.
    """

    def __init__(self, circuit: Circuit,
                 assignments: Iterable[tuple[str, str, Sequence[float]]]) -> None:
        self.circuit = circuit
        self.entries: list[tuple[object, str, np.ndarray, object, bool]] = []
        batch: int | None = None
        for device_name, param, values in assignments:
            device = circuit[device_name]
            column = np.asarray(values, dtype=float)
            if column.ndim != 1:
                raise AnalysisError(
                    f"parameter column {device_name}.{param} must be 1-D, got "
                    f"shape {column.shape}")
            if batch is None:
                batch = column.size
            elif column.size != batch:
                raise AnalysisError(
                    f"parameter column {device_name}.{param} has {column.size} "
                    f"lanes, expected {batch}")
            original = device.get_parameter(param)
            safe = bool(getattr(device, "batch_safe", False))
            self.entries.append((device, param, column, original, safe))
        if batch is None:
            raise AnalysisError("a batch needs at least one parameter column")
        self.batch = batch

    def targets(self, device) -> bool:
        """Whether any column writes to ``device``."""
        return any(entry[0] is device for entry in self.entries)

    def set_arrays(self) -> None:
        """Install the full ``(B,)`` columns on every batch-safe device."""
        for device, param, column, _, safe in self.entries:
            if safe:
                device.set_parameter(param, column)

    def set_lane(self, lane: int) -> None:
        """Install lane scalars on *every* device (serial passes)."""
        for device, param, column, _, _ in self.entries:
            device.set_parameter(param, float(column[lane]))

    def set_unsafe_lane(self, lane: int) -> None:
        """Install lane scalars on the non-batch-safe devices only."""
        for device, param, column, _, safe in self.entries:
            if not safe:
                device.set_parameter(param, float(column[lane]))

    def restore(self) -> None:
        """Put every original parameter value back."""
        for device, param, _, original, _ in self.entries:
            device.set_parameter(param, original)

    def __enter__(self) -> "ParameterColumns":
        return self

    def __exit__(self, *exc_info) -> None:
        self.restore()


def batch_supported(options: SimulationOptions) -> bool:
    """Whether the batched drivers can honor these options.

    All ``jacobian_reuse`` policies are supported -- ``"chord"`` holds the
    batched factorization across iterations (and solves) with residual-only
    assemblies, mirroring the serial chord-Newton contract lane-wise.  Only
    the CG backend has no batched counterpart and falls back to the serial
    path.
    """
    return options.solver_backend() != "cg"


def assemble_batch(system: MNASystem, x: np.ndarray, analysis: str,
                   options: SimulationOptions, columns: ParameterColumns,
                   source_scale: float = 1.0,
                   want_jacobian: bool = True) -> BatchStampContext:
    """Assemble residuals (and Jacobians) for all B lanes at once.

    Batch-safe devices stamp once over the lane axis; the rest stamp per
    lane with their lane-scalar parameters installed.  Mixed circuits force
    dense assembly -- per-lane triplet streams may diverge (behavioral
    stamps skip exact-zero derivatives), so only all-safe circuits share a
    triplet pattern.
    """
    unsafe = [device for device in system.circuit
              if not getattr(device, "batch_safe", False)]
    ctx = BatchStampContext(system, x, analysis=analysis, options=options,
                            source_scale=source_scale,
                            want_jacobian=want_jacobian,
                            force_dense=bool(unsafe))
    for device in system.circuit:
        if getattr(device, "batch_safe", False):
            device.stamp(ctx)
    if unsafe:
        for lane in range(ctx.batch):
            columns.set_unsafe_lane(lane)
            lane_ctx = ctx.lane_context(lane)
            for device in unsafe:
                device.stamp(lane_ctx)
    ctx.apply_gmin(options.gmin)
    return ctx


def _same_batch_matrix(stored, matrix) -> bool:
    if stored is None:
        return False
    if isinstance(matrix, np.ndarray):
        return isinstance(stored, np.ndarray) and np.array_equal(stored, matrix)
    if isinstance(stored, np.ndarray) or len(stored) != len(matrix):
        return False
    return all(lane_a.data.size == lane_b.data.size
               and np.array_equal(lane_a.data, lane_b.data)
               for lane_a, lane_b in zip(stored, matrix))


class BatchWorkspace:
    """Linear-stage carry-over between batched Newton calls (sweep points).

    Mirrors the serial ``jacobian_reuse="auto"`` behaviour: when the whole
    assembled batch matches the previously factored one exactly (linear
    circuits between sweep points, final iterations of a converged batch),
    the factorization is reused instead of redone.
    """

    def __init__(self) -> None:
        self.matrix = None
        self.factorization = None
        self.factor_reuses = 0
        #: ``(analysis, source_scale, generation)`` the held factorization
        #: belongs to; chord reuse across solves is only valid within it.
        self.chord_tag: tuple | None = None
        self.chord_iterations = 0
        self.stall_refactors = 0


def batched_newton(system: MNASystem, x0: np.ndarray, analysis: str,
                   options: SimulationOptions, columns: ParameterColumns,
                   source_scale: float = 1.0,
                   workspace: BatchWorkspace | None = None
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Damped Newton over B stacked systems with per-lane convergence.

    Returns ``(x, solved, iterations)``: the per-lane solutions, a ``(B,)``
    mask of lanes that converged, and the per-lane iteration counts.  Lanes
    that hit any serial failure condition simply come back unsolved --
    nothing raises, so the caller can retire exactly those lanes to the
    serial path.
    """
    if not batch_supported(options):
        raise AnalysisError(
            "batched Newton supports the dense/superlu backends only")
    ws = workspace if workspace is not None else BatchWorkspace()
    x = np.array(x0, dtype=float, copy=True)
    batch = x.shape[0]
    timing = telemetry.enabled()
    if timing:
        telemetry.registry.observe("batch.size", float(batch))
    columns.set_arrays()
    n_nodes = system.num_nodes
    base_tol = np.where(np.arange(system.size) < n_nodes,
                        options.vntol, options.abstol)
    backend = "superlu" if options.use_sparse(system.size) else "dense"
    alive = np.ones(batch, dtype=bool)
    converged = np.zeros(batch, dtype=bool)
    iterations = np.zeros(batch, dtype=int)
    damping = options.newton_damping
    # Chord mode mirrors the serial contract: ride the held factorization
    # with residual-only assemblies, refactor when any active lane's
    # residual stops contracting (``refactor_threshold``) or the solve
    # grinds past ``chord_limit``, and give the rest of the solve plain
    # full Newton in the latter case.
    tag = (analysis, source_scale, system.structure_cache.generation)
    chord_allowed = options.jacobian_reuse == "chord"
    chord = (chord_allowed
             and ws.factorization is not None and ws.chord_tag == tag)
    chord_limit = max(3, options.max_newton_iterations // 2)
    previous_residual = None
    for iteration in range(1, options.max_newton_iterations + 1):
        ctx = assemble_batch(system, x, analysis, options, columns,
                             source_scale, want_jacobian=not chord)
        healthy = ctx.residual_finite_lanes()
        if not chord:
            healthy &= ctx.jacobian_finite_lanes()
        alive &= healthy | converged
        if not (alive & ~converged).any():
            break
        if chord:
            active = alive & ~converged
            res_norm = np.max(np.abs(ctx.res), axis=1)
            stalled = (previous_residual is not None
                       and bool(np.any(res_norm[active] >
                                       options.refactor_threshold
                                       * previous_residual[active])))
            if stalled or iteration >= chord_limit:
                ctx = assemble_batch(system, x, analysis, options, columns,
                                     source_scale, want_jacobian=True)
                alive &= (ctx.residual_finite_lanes()
                          & ctx.jacobian_finite_lanes()) | converged
                if not (alive & ~converged).any():
                    break
                ws.stall_refactors += 1
                previous_residual = None
                chord = False
                if iteration >= chord_limit:
                    chord_allowed = False
            else:
                ws.chord_iterations += 1
                previous_residual = res_norm
        t0 = perf_counter() if timing else None
        if chord:
            factorization = ws.factorization
        else:
            matrix = ctx.jacobian()
            if options.jacobian_reuse != "off" \
                    and _same_batch_matrix(ws.matrix, matrix):
                factorization = ws.factorization
                ws.factor_reuses += 1
            else:
                try:
                    factorization = batched_factorize(matrix, backend)
                except LinAlgError:
                    # A batch-level factorization failure (not a per-lane
                    # one) retires every unfinished lane to the serial path.
                    alive &= converged
                    break
                ws.matrix = matrix
                ws.factorization = factorization
            ws.chord_tag = tag
            if chord_allowed:
                # Ride this factorization from the next iteration on.
                chord = True
        alive &= ~factorization.failed | converged
        dx = factorization.solve(-ctx.res)
        if t0 is not None:
            telemetry.registry.observe("batch.solve_s", perf_counter() - t0)
        alive &= np.all(np.isfinite(dx), axis=1) | converged
        active = alive & ~converged
        if not active.any():
            break
        x_new = x + damping * dx
        tol = base_tol + options.reltol * np.maximum(np.abs(x), np.abs(x_new))
        lane_converged = np.all(np.abs(damping * dx) <= tol, axis=1)
        # Active lanes take the update (the serial loop assigns x = x_new
        # *before* returning on convergence); frozen lanes keep theirs.
        x[active] = x_new[active]
        iterations[active] = iteration
        converged |= active & lane_converged
        if not (alive & ~converged).any():
            break
    solved = alive & converged
    return x, solved, iterations


def batched_operating_points(circuit: Circuit, options: SimulationOptions,
                             columns: ParameterColumns
                             ) -> list[OperatingPoint | None]:
    """Operating points of B parameter lanes; ``None`` for retired lanes.

    A ``None`` entry means "solve this lane serially" -- the lane may still
    succeed there (source stepping) or produce the exact serial error.
    """
    system = MNASystem(circuit)
    with columns:
        x0 = np.zeros((columns.batch, system.size))
        x, solved, iterations = batched_newton(system, x0, "op", options,
                                               columns)
        results: list[OperatingPoint | None] = [None] * columns.batch
        labels = system.unknown_labels()
        for lane in np.flatnonzero(solved):
            columns.set_lane(lane)
            ctx = system.assemble(x[lane], "op", 0.0, None, options, 1.0,
                                  want_jacobian=False)
            data = collect_outputs(system, ctx)
            results[lane] = OperatingPoint(data, x[lane].copy(), labels,
                                           int(iterations[lane]))
    return results


def batched_dcsweeps(circuit: Circuit, source_name: str,
                     values: Sequence[float], options: SimulationOptions,
                     columns: ParameterColumns,
                     continue_on_failure: bool = False
                     ) -> list[DCSweepResult | None]:
    """DC sweeps of B parameter lanes in lockstep over shared sweep values.

    Follows the serial continuation policy per lane: each converged point
    warm-starts the lane's next one; with ``continue_on_failure`` a failed
    point records NaN and the lane restarts from zero.  Without it a failing
    lane is retired (``None``) so the serial path reproduces the exact
    error.  Retired lanes stop consuming batch work.
    """
    sweep_values = np.asarray(list(values), dtype=float)
    if sweep_values.size == 0:
        raise AnalysisError("DC sweep needs at least one value")
    source = circuit[source_name]
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise AnalysisError(
            f"{source_name!r} is not an independent source; cannot sweep it")
    if columns.targets(source):
        raise AnalysisError(
            f"batched DC sweep cannot also sweep a parameter of the swept "
            f"source {source_name!r}")
    system = MNASystem(circuit)
    batch = columns.batch
    x = np.zeros((batch, system.size))
    alive = np.ones(batch, dtype=bool)
    rows: list[list[dict[str, float]]] = [[] for _ in range(batch)]
    original_waveform = source.waveform
    workspace = BatchWorkspace()
    try:
        with columns:
            for value in sweep_values:
                source.waveform = DC(float(value))
                x_next, solved, _ = batched_newton(
                    system, x, "dc", options, columns, workspace=workspace)
                x[solved] = x_next[solved]
                for lane in range(batch):
                    if not alive[lane]:
                        continue
                    if solved[lane]:
                        columns.set_lane(lane)
                        ctx = system.assemble(x[lane], "dc", 0.0, None,
                                              options, 1.0,
                                              want_jacobian=False)
                        rows[lane].append(collect_outputs(system, ctx))
                    elif continue_on_failure:
                        # Serial policy: NaN row, restart from zero.
                        rows[lane].append({})
                        x[lane] = 0.0
                    else:
                        alive[lane] = False
    finally:
        source.waveform = original_waveform
    results: list[DCSweepResult | None] = [None] * batch
    for lane in range(batch):
        if not alive[lane]:
            continue
        keys: set[str] = set()
        for row in rows[lane]:
            keys.update(row)
        data = {key: np.array([row.get(key, np.nan) for row in rows[lane]],
                              dtype=float)
                for key in sorted(keys)}
        results[lane] = DCSweepResult(source_name, sweep_values, data)
    return results
