"""AC small-signal analysis.

The circuit is first solved for its DC operating point; every device is then
linearized around that bias and the complex system ``Y(omega) x = b`` is
solved at each requested frequency.  For behavioral (HDL-A) devices the
linearization is exact: their contributions are evaluated with complex-seeded
dual numbers in which ``ddt`` multiplies the sensitivity by ``j*omega``
(see :class:`repro.circuit.devices.behavioral.BehaviorContext`).

This is precisely the analysis the paper uses to claim that HDL-A models
"are valid for the dc, ac and transient SPICE analysis domains": a single
nonlinear model provides all three behaviours without being rewritten.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ...errors import AnalysisError, SingularMatrixError
from ..mna import Integrator, MNASystem
from ..netlist import Circuit
from .op import OperatingPointAnalysis
from .options import SimulationOptions
from .results import ACResult, OperatingPoint

__all__ = ["ACAnalysis", "frequency_grid"]


def frequency_grid(start: float, stop: float, points_per_decade: int = 20,
                   spacing: str = "log") -> np.ndarray:
    """Build an AC frequency grid (``"log"``, ``"lin"`` spacing)."""
    if start <= 0.0 or stop <= 0.0:
        raise AnalysisError("AC frequencies must be positive")
    if stop < start:
        raise AnalysisError("stop frequency must not be below start frequency")
    if spacing == "log":
        decades = np.log10(stop / start)
        n = max(2, int(np.ceil(decades * points_per_decade)) + 1)
        return np.logspace(np.log10(start), np.log10(stop), n)
    if spacing == "lin":
        n = max(2, points_per_decade)
        return np.linspace(start, stop, n)
    raise AnalysisError(f"unknown spacing {spacing!r} (use 'log' or 'lin')")


class ACAnalysis:
    """Small-signal frequency sweep around the DC operating point."""

    def __init__(self, circuit: Circuit, frequencies: Iterable[float],
                 options: SimulationOptions | None = None) -> None:
        self.circuit = circuit
        self.frequencies = np.asarray(list(frequencies), dtype=float)
        if self.frequencies.size == 0:
            raise AnalysisError("AC analysis needs at least one frequency")
        if np.any(self.frequencies <= 0.0):
            raise AnalysisError("AC frequencies must be strictly positive")
        self.options = options or SimulationOptions()

    def run(self, operating_point: OperatingPoint | None = None) -> ACResult:
        """Run the sweep; optionally reuse a precomputed operating point."""
        system = MNASystem(self.circuit)
        options = self.options
        if operating_point is None:
            operating_point = OperatingPointAnalysis(self.circuit, options).run()
        op_values = operating_point.raw
        if op_values.shape != (system.size,):
            raise AnalysisError(
                "operating point does not match this circuit (unknown count differs)")
        # Integral states at the bias point: behavioral models read them via
        # ``op_state`` so that e.g. a transducer biased at displacement x0
        # keeps that displacement in its small-signal capacitance.
        integrator_states = dict(operating_point.integrator_states)
        labels = system.unknown_labels()
        data: dict[str, np.ndarray] = {label: np.zeros(self.frequencies.size, dtype=complex)
                                       for label in labels}
        for k, frequency in enumerate(self.frequencies):
            omega = 2.0 * np.pi * float(frequency)
            ctx = system.assemble_ac(op_values, omega, integrator_states, options)
            try:
                solution = np.linalg.solve(ctx.matrix, ctx.rhs)
            except np.linalg.LinAlgError as exc:
                raise SingularMatrixError(
                    f"singular small-signal matrix at f={frequency:g} Hz: {exc}") from exc
            for i, label in enumerate(labels):
                data[label][k] = solution[i]
        # Rename auxiliary labels to the i(<device>) convention where possible.
        renamed: dict[str, np.ndarray] = {}
        for label, values in data.items():
            if "#" in label:
                device, aux = label.split("#", 1)
                key = f"i({device})" if aux == "i" else f"{device}.{aux}"
            else:
                key = label
            renamed[key] = values
        return ACResult(self.frequencies, renamed)
