"""AC small-signal analysis.

The circuit is first solved for its DC operating point; every device is then
linearized around that bias and the complex system ``Y(omega) x = b`` is
solved at each requested frequency.  For behavioral (HDL-A) devices the
linearization is exact: their contributions are evaluated with complex-seeded
dual numbers in which ``ddt`` multiplies the sensitivity by ``j*omega``
(see :class:`repro.circuit.devices.behavioral.BehaviorContext`).

Sweep caching
-------------
Re-stamping every device at every frequency repeats work: for the device
classes of this package the small-signal matrix has the exact form
``Y(omega) = G + j*omega*C + S/(j*omega)`` (conductances, ``ddt``
susceptances and ``integ`` terms respectively).  Unless
``options.jacobian_reuse == "off"``, the sweep assembles that decomposition
once from probe frequencies, *verifies* it against a direct assembly at an
independent probe, and then walks the grid as pure value updates + dense
refactorizations through :mod:`repro.linalg` -- devices are never stamped
again.  A circuit whose frequency dependence does not fit the decomposition
fails the verification probe and transparently falls back to per-frequency
assembly, so the fast path can never change which circuits are solvable.

This is precisely the analysis the paper uses to claim that HDL-A models
"are valid for the dc, ac and transient SPICE analysis domains": a single
nonlinear model provides all three behaviours without being rewritten.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ... import telemetry
from ...errors import AnalysisError, LinAlgError, SingularMatrixError
from ...linalg import FactorizedSolver
from ..mna import MNASystem
from ..netlist import Circuit
from .op import OperatingPointAnalysis
from .options import SimulationOptions
from .results import ACResult, OperatingPoint, canonical_signal_name

__all__ = ["ACAnalysis", "frequency_grid", "gcs_decompose", "gcs_predict",
           "probe_omegas"]

#: Relative mismatch above which the G/C/S decomposition is rejected at the
#: verification probe (generous against rounding, far below model errors).
_VERIFY_RTOL = 1e-7


def probe_omegas(f_lo: float, f_hi: float) -> tuple[float, float, float]:
    """Pick extraction probes ``(omega_a, omega_b)`` plus verifier ``omega_c``.

    Shared between the cached AC sweep and the cached AC-sensitivity
    assembly: extract at the sweep edges when they are at least an octave
    apart (frequency dependence outside the G/C/S model grows fastest
    there) and verify in between; for a narrow band, spread synthetic
    probes above the low edge instead.
    """
    omega_lo = 2.0 * np.pi * f_lo
    omega_hi = 2.0 * np.pi * f_hi
    if omega_hi >= 2.0 * omega_lo:
        return omega_lo, omega_hi, float(np.sqrt(omega_lo * omega_hi))
    return omega_lo, 2.0 * omega_lo, 3.0 * omega_lo


def gcs_decompose(y_a: np.ndarray, y_b: np.ndarray, omega_a: float,
                  omega_b: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split probes of ``Y = G + jwC + S/(jw)`` into ``(G, C, S)`` entrywise.

    ``omega * Im(Y) = omega^2 * C - S`` is linear in ``omega^2``, so two
    probes pin both terms.  Entries of ``S`` below the rounding floor of the
    subtraction they came from are extraction noise, not physics; zeroing
    them keeps pure G/C systems on the two-term matrix update.
    """
    im_a, im_b = np.imag(y_a), np.imag(y_b)
    capacitance = (omega_b * im_b - omega_a * im_a) / \
        (omega_b ** 2 - omega_a ** 2)
    integ_map = omega_a ** 2 * capacitance - omega_a * im_a
    conductance = np.real(y_a)
    noise_floor = 1e-12 * np.maximum(np.abs(omega_a ** 2 * capacitance),
                                     np.abs(omega_a * im_a))
    integ_map[np.abs(integ_map) <= noise_floor] = 0.0
    return conductance, capacitance, integ_map


def gcs_predict(conductance: np.ndarray, capacitance: np.ndarray,
                integ_map: np.ndarray, omega: float) -> np.ndarray:
    """Reassemble ``Y(omega)`` from a :func:`gcs_decompose` split."""
    return conductance + omega * (1j * capacitance) + (integ_map / 1j) / omega


def frequency_grid(start: float, stop: float, points_per_decade: int = 20,
                   spacing: str = "log") -> np.ndarray:
    """Build an AC frequency grid (``"log"``, ``"lin"`` spacing)."""
    if start <= 0.0 or stop <= 0.0:
        raise AnalysisError("AC frequencies must be positive")
    if stop < start:
        raise AnalysisError("stop frequency must not be below start frequency")
    if spacing == "log":
        decades = np.log10(stop / start)
        n = max(2, int(np.ceil(decades * points_per_decade)) + 1)
        return np.logspace(np.log10(start), np.log10(stop), n)
    if spacing == "lin":
        n = max(2, points_per_decade)
        return np.linspace(start, stop, n)
    raise AnalysisError(f"unknown spacing {spacing!r} (use 'log' or 'lin')")


class ACAnalysis:
    """Small-signal frequency sweep around the DC operating point."""

    def __init__(self, circuit: Circuit, frequencies: Iterable[float],
                 options: SimulationOptions | None = None) -> None:
        self.circuit = circuit
        self.frequencies = np.asarray(list(frequencies), dtype=float)
        if self.frequencies.size == 0:
            raise AnalysisError("AC analysis needs at least one frequency")
        if np.any(self.frequencies <= 0.0):
            raise AnalysisError("AC frequencies must be strictly positive")
        self.options = options or SimulationOptions()
        #: ``"cached"`` or ``"direct"`` after :meth:`run` -- which sweep
        #: strategy actually executed (diagnostics and tests).
        self.sweep_mode: str | None = None

    def run(self, operating_point: OperatingPoint | None = None) -> ACResult:
        """Run the sweep; optionally reuse a precomputed operating point.

        With ``options.telemetry`` enabled the result carries a
        :class:`~repro.telemetry.TelemetryReport` as ``result.telemetry``.
        """
        if self.options.telemetry == "off":
            return self._run(operating_point)
        with telemetry.session(mode=self.options.telemetry) as sess:
            with telemetry.span("ac.run"):
                result = self._run(operating_point)
        result.telemetry = sess.report
        return result

    def _run(self, operating_point: OperatingPoint | None) -> ACResult:
        system = MNASystem(self.circuit)
        options = self.options
        if operating_point is None:
            with telemetry.span("ac.op"):
                operating_point = OperatingPointAnalysis(
                    self.circuit, options.with_(telemetry="off")).run()
        op_values = operating_point.raw
        if op_values.shape != (system.size,):
            raise AnalysisError(
                "operating point does not match this circuit (unknown count differs)")
        # Integral states at the bias point: behavioral models read them via
        # ``op_state`` so that e.g. a transducer biased at displacement x0
        # keeps that displacement in its small-signal capacitance.
        integrator_states = dict(operating_point.integrator_states)
        solutions = None
        with telemetry.span("ac.sweep") as sweep_span:
            if options.jacobian_reuse != "off" and self.frequencies.size >= 4:
                solutions = self._sweep_cached(system, op_values,
                                               integrator_states)
            if solutions is None:
                self.sweep_mode = "direct"
                solutions = self._sweep_direct(system, op_values,
                                               integrator_states)
            else:
                self.sweep_mode = "cached"
            sweep_span.annotate(mode=self.sweep_mode,
                                points=int(self.frequencies.size))
        with telemetry.span("ac.collect"):
            labels = system.unknown_labels()
            data = {canonical_signal_name(label): solutions[:, i]
                    for i, label in enumerate(labels)}
        return ACResult(self.frequencies, data)

    def sensitivities(self, params, outputs, method: str = "auto",
                      operating_point: OperatingPoint | None = None):
        """Exact-solve sensitivities of the output phasors over the sweep.

        See :func:`repro.circuit.analysis.sensitivity.ac_sensitivities`.
        """
        from .sensitivity import ac_sensitivities

        return ac_sensitivities(self, params, outputs, method=method,
                                operating_point=operating_point)

    # ------------------------------------------------------------------ sweeps
    def _solve_point(self, system: MNASystem, matrix: np.ndarray,
                     rhs: np.ndarray, solver: FactorizedSolver,
                     frequency: float) -> np.ndarray:
        try:
            return solver.solve(matrix, rhs)
        except LinAlgError as exc:
            message = f"singular small-signal matrix at f={frequency:g} Hz: {exc}"
            report = None
            if self.options.forensics:
                report = telemetry.forensics.newton_failure(
                    kind="singular", analysis="ac", message=message,
                    error_type="SingularMatrixError",
                    labels=system.unknown_labels(), matrix=matrix,
                    options=self.options,
                    context={"frequency_hz": frequency})
            raise SingularMatrixError(message, report=report) from exc

    def _sweep_direct(self, system: MNASystem, op_values: np.ndarray,
                      integrator_states: dict) -> np.ndarray:
        """Reference path: stamp and solve every frequency independently."""
        solver = FactorizedSolver("dense")
        solutions = np.zeros((self.frequencies.size, system.size), dtype=complex)
        track = telemetry.progress.tracker("ac", total=self.frequencies.size,
                                           unit="points")
        for k, frequency in enumerate(self.frequencies):
            with telemetry.detail_span("ac.point", f=float(frequency)):
                omega = 2.0 * np.pi * float(frequency)
                ctx = system.assemble_ac(op_values, omega, integrator_states,
                                         self.options)
                solutions[k] = self._solve_point(system, ctx.matrix, ctx.rhs,
                                                 solver, float(frequency))
            track.update(k + 1, message=f"f={frequency:g} Hz")
        track.finish(self.frequencies.size)
        return solutions

    def _sweep_cached(self, system: MNASystem, op_values: np.ndarray,
                      integrator_states: dict) -> np.ndarray | None:
        """Extract ``Y = G + jwC + S/(jw)`` once and sweep as value updates.

        Returns ``None`` when the verification probe rejects the
        decomposition (frequency dependence outside the model) so the caller
        falls back to the direct sweep.
        """
        omega_a, omega_b, omega_c = probe_omegas(
            float(np.min(self.frequencies)), float(np.max(self.frequencies)))

        def probe(omega: float):
            ctx = system.assemble_ac(op_values, omega, integrator_states,
                                     self.options)
            return ctx.matrix, ctx.rhs

        y_a, rhs = probe(omega_a)
        y_b, rhs_b = probe(omega_b)
        conductance, capacitance, integ_map = gcs_decompose(
            y_a, y_b, omega_a, omega_b)
        has_integ = bool(np.any(integ_map))

        # Verification: the decomposition must reproduce an independent
        # probe (and the real part / excitation must be frequency-flat).
        y_c, rhs_c = probe(omega_c)
        susceptance = 1j * capacitance
        inverse_map = integ_map / 1j
        predicted = gcs_predict(conductance, capacitance, integ_map, omega_c)
        # Tolerances scale per row: an entry only matters relative to its own
        # equation, and a global |Y| scale would let small-magnitude rows
        # (high-impedance nodes) drift through verification unchecked.
        row_scale = np.max(np.abs(y_c), axis=1, keepdims=True)
        row_scale[row_scale == 0.0] = 1.0
        tolerance = _VERIFY_RTOL * row_scale
        if not (np.all(np.abs(predicted - y_c) <= tolerance)
                and np.all(np.abs(np.real(y_b) - conductance) <= tolerance)
                and np.allclose(rhs_b, rhs, rtol=1e-12, atol=0.0)
                and np.allclose(rhs_c, rhs, rtol=1e-12, atol=0.0)):
            return None

        solver = FactorizedSolver("dense")
        solutions = np.zeros((self.frequencies.size, system.size), dtype=complex)
        track = telemetry.progress.tracker("ac", total=self.frequencies.size,
                                           unit="points")
        for k, frequency in enumerate(self.frequencies):
            with telemetry.detail_span("ac.point", f=float(frequency)):
                omega = 2.0 * np.pi * float(frequency)
                matrix = conductance + omega * susceptance
                if has_integ:
                    matrix += inverse_map / omega
                solutions[k] = self._solve_point(system, matrix, rhs, solver,
                                                 float(frequency))
            track.update(k + 1, message=f"f={frequency:g} Hz")
        track.finish(self.frequencies.size)
        return solutions
