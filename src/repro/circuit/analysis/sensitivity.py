"""Exact parameter sensitivities of circuit analyses (adjoint / direct).

Every converged MNA solve satisfies ``F(x, p) = 0``; the implicit-function
theorem turns the already-factored Newton Jacobian into exact output
gradients

.. math::

    \\frac{d (g^T x)}{dp} = - g^T J^{-1} \\frac{\\partial F}{\\partial p}

at the cost of *one transposed back-substitution per output* (adjoint) or
*one forward back-substitution per parameter* (direct) -- never another
Newton solve, never a new factorization.  Central finite differences, by
contrast, pay ``2 P`` full nonlinear solves for a ``P``-parameter gradient,
plus step-size noise.

The residual parameter derivative ``dF/dp`` is obtained exactly from the
existing :class:`~repro.ad.Dual` machinery: the selected device parameters
are temporarily replaced by dual numbers (one seed slot each) and the
circuit is re-assembled through :class:`SeededStampContext`, which splits
the dual residuals into value and derivative parts.  Linear devices
(R/L/C, mechanical elements, DC sources), the diode and every behavioral /
closed-form-transducer device propagate the seeds by plain arithmetic;
energy-method transducer devices (``closed_form=False``) cannot -- they are
detected and reported with a fix-it hint.

Parameters are addressed as ``"<device>.<parameter>"`` strings against the
device tunable-parameter protocol (:meth:`~repro.circuit.devices.base.Device
.parameter_names`); outputs are the canonical unknown signal names
(``v(node)``, ``i(device)``, ``device.aux``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from ...ad import Dual
from ...errors import (AnalysisError, LinAlgError, SensitivityError,
                       SingularMatrixError)
from ...linalg import (FactorizedSolver, SensitivityResult,
                       SpectralSensitivities, solve_sensitivities,
                       sweep_spectral_sensitivities)
from ..mna import Integrator, MNASystem, StampContext, canonical_signal_name
from .op import NewtonWorkspace
from .options import SimulationOptions

if TYPE_CHECKING:  # pragma: no cover
    from ..netlist import Circuit
    from .ac import ACAnalysis
    from .dcsweep import DCSweepAnalysis
    from .op import OperatingPointAnalysis

__all__ = ["ParameterRef", "SeededStampContext", "resolve_parameters",
           "seeded_parameters", "parameter_residual_derivatives",
           "output_selectors", "operating_point_sensitivities",
           "dcsweep_sensitivities", "ac_sensitivities",
           "SweepSensitivities", "ACSensitivities",
           "CircuitSensitivityEvaluator"]


# --------------------------------------------------------------------------- #
# parameter addressing                                                        #
# --------------------------------------------------------------------------- #

class ParameterRef:
    """One resolved tunable parameter: ``(device, parameter name)``."""

    __slots__ = ("label", "device", "parameter")

    def __init__(self, label: str, device, parameter: str) -> None:
        self.label = label
        self.device = device
        self.parameter = parameter

    @property
    def value(self) -> float:
        """Current (plain) value of the parameter."""
        return float(self.device.get_parameter(self.parameter))

    def __repr__(self) -> str:
        return f"ParameterRef({self.label!r})"


def resolve_parameters(circuit: "Circuit", params: Iterable) -> list[ParameterRef]:
    """Resolve ``"device.param"`` strings (or ``(device, param)`` pairs).

    A device name may itself contain dots; resolution tries the longest
    device-name prefix first.
    """
    refs: list[ParameterRef] = []
    for spec in params:
        if isinstance(spec, ParameterRef):
            refs.append(spec)
            continue
        if isinstance(spec, tuple) and len(spec) == 2:
            device_name, parameter = spec
            label = f"{device_name}.{parameter}"
        elif isinstance(spec, str):
            label = spec
            if "." not in spec:
                raise SensitivityError(
                    f"parameter spec {spec!r} must look like 'device.param'")
            device_name, parameter = spec.rsplit(".", 1)
        else:
            raise SensitivityError(
                f"cannot interpret parameter spec {spec!r} "
                "(use 'device.param' or (device_name, param))")
        try:
            device = circuit[str(device_name)]
        except Exception as exc:
            raise SensitivityError(
                f"parameter {label!r}: unknown device {device_name!r}") from exc
        names = device.parameter_names()
        if parameter not in names:
            raise SensitivityError(
                f"device {device_name!r} has no tunable parameter "
                f"{parameter!r} (available: {sorted(names) or 'none'})")
        refs.append(ParameterRef(label, device, str(parameter)))
    if not refs:
        raise SensitivityError("at least one parameter is required")
    labels = [ref.label for ref in refs]
    if len(set(labels)) != len(labels):
        raise SensitivityError(f"duplicate parameters in {labels}")
    return refs


class seeded_parameters:
    """Context manager: seed the referenced parameters as AD duals.

    Inside the ``with`` block parameter ``k`` carries the unit derivative of
    seed slot ``offset + k`` in a derivative space of ``nvars`` slots; on
    exit the original (plain) values are restored -- the circuit is never
    left dual-valued.  ``values`` optionally overrides the seeding point
    (plain floats), which is how finite-difference cross-checks and the AC
    assembly probes move parameters without duals (``nvars=0``).
    """

    def __init__(self, refs: Sequence[ParameterRef], nvars: int,
                 offset: int = 0,
                 values: Sequence[float] | None = None) -> None:
        self.refs = list(refs)
        self.nvars = int(nvars)
        self.offset = int(offset)
        self.values = None if values is None else [float(v) for v in values]
        self._saved: list[object] = []

    def __enter__(self) -> "seeded_parameters":
        if self.nvars > 0:
            for ref in self.refs:
                if not getattr(ref.device, "dual_parameter_safe", True):
                    raise SensitivityError(
                        f"device {ref.device.name!r} cannot propagate exact "
                        f"parameter duals for {ref.label!r}; energy-method "
                        "transducer devices must be rebuilt with "
                        "closed_form=True to expose exact sensitivities")
        self._saved = [ref.device.get_parameter(ref.parameter)
                       for ref in self.refs]
        for k, ref in enumerate(self.refs):
            base = self._saved[k] if self.values is None else self.values[k]
            if self.nvars > 0:
                seeded = Dual.variable(float(base), index=self.offset + k,
                                       nvars=self.nvars)
            else:
                seeded = float(base)
            ref.device.set_parameter(ref.parameter, seeded)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        for ref, original in zip(self.refs, self._saved):
            ref.device.set_parameter(ref.parameter, original)


# --------------------------------------------------------------------------- #
# seeded assembly                                                             #
# --------------------------------------------------------------------------- #

class SeededStampContext(StampContext):
    """Residual assembly that separates AD-dual residuals into ``res``/``dres``.

    The context never builds a Jacobian (``want_jacobian=False`` -- explicit
    ``add_jac`` stamps are ignored); instead each residual contribution may
    be a :class:`~repro.ad.Dual` whose derivative part (length ``nvars``)
    is accumulated into :attr:`dres`.  With ``x_offset`` set, the unknown
    accessors additionally seed the solution vector itself, so ``dres`` also
    carries ``dF/dx`` blocks -- the transient adjoint uses this to capture
    the dependence of the dynamic states on the unknowns.
    """

    keep_residual_duals = True

    def __init__(self, system: MNASystem, x: np.ndarray, analysis: str,
                 time: float, integrator: Integrator | None,
                 options: SimulationOptions, nvars: int,
                 source_scale: float = 1.0,
                 x_offset: int | None = None) -> None:
        super().__init__(system, x, analysis, time, integrator, options,
                         source_scale=source_scale, want_jacobian=False)
        self.nvars = int(nvars)
        self.x_offset = x_offset
        self.dres = np.zeros((system.size, self.nvars))

    # ------------------------------------------------------------- seeded x
    def _seeded_unknown(self, index: int):
        value = 0.0 if index < 0 else float(self.x[index])
        if self.x_offset is None or index < 0:
            return value
        return Dual.variable(value, index=self.x_offset + index,
                             nvars=self.nvars)

    def across(self, node):
        return self._seeded_unknown(self.system.index_of(node))

    def aux_value(self, device, name: str):
        return self._seeded_unknown(self.system.aux_index(device, name))

    def unknown_value(self, index: int):
        return self._seeded_unknown(index)

    # ------------------------------------------------------------ accumulate
    def add_res(self, row: int, value) -> None:
        if row < 0:
            return
        if isinstance(value, Dual):
            self.res[row] += value.value
            deriv = np.real(value.deriv)
            if deriv.shape != (self.nvars,):
                raise SensitivityError(
                    f"residual derivative has {deriv.shape[0]} slots, "
                    f"expected {self.nvars} (a device mixed AD seed spaces)")
            self.dres[row] += deriv
        else:
            self.res[row] += float(value)

    def apply_gmin(self, gmin: float) -> None:
        super().apply_gmin(gmin)
        if gmin > 0.0 and self.x_offset is not None:
            n_nodes = self.system.num_nodes
            idx = np.arange(n_nodes)
            self.dres[idx, self.x_offset + idx] += gmin


def _run_seeded(system: MNASystem, ctx: SeededStampContext) -> SeededStampContext:
    """Drive the device stamps over a seeded context with a helpful error."""
    try:
        return system.run_stamps(ctx)
    except ValueError as exc:
        raise SensitivityError(
            "a device could not propagate the sensitivity seeds "
            f"({exc}); energy-method transducer devices need "
            "closed_form=True to expose exact parameter derivatives"
        ) from exc


def parameter_residual_derivatives(system: MNASystem, x: np.ndarray,
                                   refs: Sequence[ParameterRef],
                                   analysis: str, time: float,
                                   integrator: Integrator | None,
                                   options: SimulationOptions,
                                   source_scale: float = 1.0) -> np.ndarray:
    """Exact ``dF/dp`` (``(n, P)``) at the solution ``x`` by dual seeding."""
    num = len(refs)
    with seeded_parameters(refs, nvars=num):
        ctx = SeededStampContext(system, x, analysis, time, integrator,
                                 options, nvars=num,
                                 source_scale=source_scale)
        _run_seeded(system, ctx)
    return ctx.dres


# --------------------------------------------------------------------------- #
# output addressing                                                           #
# --------------------------------------------------------------------------- #

def output_selectors(system: MNASystem, outputs: Iterable[str]) -> tuple[
        tuple[str, ...], np.ndarray]:
    """Unit selector rows of the requested unknown signals.

    Outputs must be unknowns of the MNA system (node across values and
    auxiliary unknowns under their canonical names); device-recorded
    post-processing quantities are not linear in the unknown vector and are
    therefore not valid sensitivity outputs.
    """
    index_of: dict[str, int] = {}
    for i, label in enumerate(system.unknown_labels()):
        index_of[canonical_signal_name(label)] = i
    outputs = [str(name) for name in outputs]
    if not outputs:
        raise SensitivityError("at least one output is required")
    selectors = np.zeros((len(outputs), system.size))
    for m, name in enumerate(outputs):
        if name not in index_of:
            known = ", ".join(sorted(index_of))
            raise SensitivityError(
                f"output {name!r} is not an unknown of this system "
                f"(available: {known})")
        selectors[m, index_of[name]] = 1.0
    return tuple(outputs), selectors


# --------------------------------------------------------------------------- #
# operating point / DC sweep                                                  #
# --------------------------------------------------------------------------- #

def _factor_at(system: MNASystem, x: np.ndarray, analysis: str,
               options: SimulationOptions, workspace: NewtonWorkspace,
               source_scale: float = 1.0):
    """Assemble and factor the Jacobian at a converged solution.

    Routed through the workspace so the ``jacobian_reuse`` policy applies:
    when the Jacobian still equals the last factored Newton matrix (always,
    for linear circuits) the factorization is a cache hit.
    """
    ctx = system.assemble(x, analysis, 0.0, None, options, source_scale,
                          want_jacobian=True)
    try:
        return workspace.factor(system, ctx)
    except LinAlgError as exc:
        raise SingularMatrixError(
            f"singular Jacobian at the {analysis} solution: {exc}") from exc


def operating_point_sensitivities(analysis: "OperatingPointAnalysis",
                                  params: Iterable, outputs: Iterable[str],
                                  method: str = "auto",
                                  operating_point=None) -> SensitivityResult:
    """Exact output sensitivities of a DC operating point.

    Runs one forward Newton solve (skipped when ``operating_point`` is
    passed), re-factors nothing the reuse policy can avoid, and then spends
    one transposed back-substitution per output (adjoint) or one forward
    back-substitution per parameter (direct).
    """
    system = analysis.system
    options = analysis.options
    stats = {"newton_solves": 0, "adjoint_solves": 0, "direct_solves": 0}
    # Sharing the workspace with the Newton solve lets a linear circuit's
    # converged factorization answer the sensitivity solves without being
    # re-factored (nonlinear circuits still refactor at the converged point,
    # which exactness requires).
    workspace = NewtonWorkspace(options)
    if operating_point is None:
        operating_point = analysis.run(workspace=workspace)
        stats["newton_solves"] = 1
    x = np.asarray(operating_point.raw, dtype=float)
    if x.shape != (system.size,):
        raise AnalysisError("operating point does not match this circuit")
    refs = resolve_parameters(analysis.circuit, params)
    names, selectors = output_selectors(system, outputs)
    factorization = _factor_at(system, x, "op", options, workspace)
    dres = parameter_residual_derivatives(system, x, refs, "op", 0.0, None,
                                          options)
    matrix = solve_sensitivities(factorization, selectors, dres,
                                 method=method, stats=stats)
    stats["factorizations"] = workspace.solver.factorizations
    resolved = "adjoint" if stats["adjoint_solves"] else "direct"
    return SensitivityResult(
        outputs=names, params=tuple(ref.label for ref in refs),
        values=selectors @ x, matrix=matrix, method=resolved, stats=stats)


class SweepSensitivities:
    """Per-point sensitivities of a DC sweep.

    ``matrix[v]`` is the ``(M, P)`` sensitivity matrix at sweep value ``v``;
    failed points (``continue_on_failure``) hold NaN rows.
    """

    def __init__(self, sweep_name: str, sweep_values: np.ndarray,
                 outputs: tuple[str, ...], params: tuple[str, ...],
                 values: np.ndarray, matrix: np.ndarray,
                 method: str, stats: dict) -> None:
        self.sweep_name = sweep_name
        self.sweep_values = np.asarray(sweep_values, dtype=float)
        self.outputs = tuple(outputs)
        self.params = tuple(params)
        #: ``(V, M)`` output values over the sweep.
        self.values = np.asarray(values, dtype=float)
        #: ``(V, M, P)`` derivatives over the sweep.
        self.matrix = np.asarray(matrix, dtype=float)
        self.method = method
        self.stats = dict(stats)

    def at(self, index: int) -> SensitivityResult:
        """The :class:`SensitivityResult` of one sweep point."""
        return SensitivityResult(self.outputs, self.params,
                                 self.values[index], self.matrix[index],
                                 method=self.method, stats=self.stats)

    def derivative(self, output: str, param: str) -> np.ndarray:
        """One ``d output / d param`` trace over the sweep values."""
        m = self.outputs.index(output)
        k = self.params.index(param)
        return self.matrix[:, m, k]

    def __repr__(self) -> str:
        return (f"SweepSensitivities({self.sweep_name}: "
                f"{self.sweep_values.size} points, {len(self.outputs)} outputs "
                f"x {len(self.params)} params)")


def dcsweep_sensitivities(analysis: "DCSweepAnalysis", params: Iterable,
                          outputs: Iterable[str],
                          method: str = "auto") -> SweepSensitivities:
    """Sensitivities of every DC-sweep point (continuation, like the sweep).

    Each point pays its continuation Newton solve plus the adjoint/direct
    back-substitutions; the per-point factorization rides the workspace
    reuse policy, so a linear circuit factors once for the whole sweep.
    """
    circuit = analysis.circuit
    options = analysis.options
    system = MNASystem(circuit)
    refs = resolve_parameters(circuit, params)
    names, selectors = output_selectors(system, outputs)
    num_outputs, num_params = len(names), len(refs)
    stats = {"newton_solves": 0, "adjoint_solves": 0, "direct_solves": 0}
    values = np.full((analysis.values.size, num_outputs), np.nan)
    matrix = np.full((analysis.values.size, num_outputs, num_params), np.nan)
    workspace = NewtonWorkspace(options)
    resolved = method
    # The continuation policy (warm starts, failure handling) is owned by
    # the analysis itself, so result and sensitivity sweeps cannot diverge.
    for v, x in analysis._sweep_solutions(system, workspace):
        if x is None:
            continue  # failed point: NaN row, like the result sweep
        stats["newton_solves"] += 1
        factorization = _factor_at(system, x, "dc", options, workspace)
        dres = parameter_residual_derivatives(
            system, x, refs, "dc", 0.0, None, options)
        point_stats: dict = {}
        matrix[v] = solve_sensitivities(factorization, selectors, dres,
                                        method=method, stats=point_stats)
        stats["adjoint_solves"] += point_stats.get("adjoint_solves", 0)
        stats["direct_solves"] += point_stats.get("direct_solves", 0)
        resolved = "adjoint" if point_stats.get("adjoint_solves") \
            else "direct"
        values[v] = selectors @ x
    stats["factorizations"] = workspace.solver.factorizations
    return SweepSensitivities(analysis.source_name, analysis.values, names,
                              tuple(ref.label for ref in refs), values,
                              matrix, resolved, stats)


# --------------------------------------------------------------------------- #
# AC small-signal sensitivities                                               #
# --------------------------------------------------------------------------- #

class ACSensitivities(SpectralSensitivities):
    """Per-frequency complex sensitivities of an AC sweep.

    ``matrix[f]`` is the complex ``(M, P)`` derivative of the output phasors
    at frequency ``f``; :meth:`magnitude_matrix` converts to derivatives of
    ``|y|`` (what resonance/level specs differentiate).
    """


#: Relative parameter step of the AC assembly-level directional differences.
_AC_ASSEMBLY_STEP = 1e-6


def _ac_parameter_decomposition(system: MNASystem, refs, base_values, steps,
                                x0: np.ndarray, dx0: np.ndarray,
                                integrator_states: dict,
                                options: SimulationOptions,
                                frequencies: np.ndarray):
    """Frequency-flat split of every parameter's AC assembly derivative.

    The directional derivative of ``Y(omega) x - b(omega)`` along
    ``(dp_k, dx0/dp_k)`` inherits the small-signal model's structure:
    ``dY_k(omega) = dG_k + j*omega*dC_k + dS_k/(j*omega)`` with a
    frequency-flat ``drhs_k``.  Two probe frequencies pin the split per
    parameter (the same algebra as the cached AC sweep) and a third,
    independent probe verifies it -- six re-stamps per parameter for the
    whole sweep instead of two per parameter *and frequency*.

    Returns ``[(dG, dC, dS, drhs), ...]`` per parameter, or ``None`` when
    any parameter fails verification (the caller then falls back to
    per-frequency differencing, which is always correct).
    """
    from .ac import _VERIFY_RTOL, gcs_decompose, gcs_predict, probe_omegas

    omega_a, omega_b, omega_c = probe_omegas(float(np.min(frequencies)),
                                             float(np.max(frequencies)))
    decomposition = []
    for k in range(len(refs)):
        h = steps[k]

        def delta(omega: float):
            shifted = list(base_values)
            shifted[k] = base_values[k] + h
            with seeded_parameters(refs, nvars=0, values=shifted):
                up = system.assemble_ac(x0 + h * dx0[:, k], omega,
                                        integrator_states, options)
            shifted[k] = base_values[k] - h
            with seeded_parameters(refs, nvars=0, values=shifted):
                down = system.assemble_ac(x0 - h * dx0[:, k], omega,
                                          integrator_states, options)
            return ((up.matrix - down.matrix) / (2.0 * h),
                    (up.rhs - down.rhs) / (2.0 * h))

        dy_a, drhs_a = delta(omega_a)
        dy_b, drhs_b = delta(omega_b)
        dg, dc, ds = gcs_decompose(dy_a, dy_b, omega_a, omega_b)
        dy_c, drhs_c = delta(omega_c)
        predicted = gcs_predict(dg, dc, ds, omega_c)
        # One global scale per parameter: unlike the full matrix, the
        # derivative matrix is mostly exact zeros with a handful of
        # same-magnitude entries, and a per-row scale would measure
        # finite-difference noise on the zero rows against itself.
        scale = float(np.max(np.abs(dy_c)))
        tolerance = _VERIFY_RTOL * (scale if scale > 0.0 else 1.0)
        rhs_scale = _VERIFY_RTOL * float(max(np.max(np.abs(drhs_a)),
                                             np.max(np.abs(drhs_b)),
                                             np.max(np.abs(drhs_c))))
        if not (np.all(np.abs(predicted - dy_c) <= tolerance)
                and np.all(np.abs(np.real(dy_b) - dg) <= tolerance)
                and np.all(np.abs(drhs_b - drhs_a) <= rhs_scale)
                and np.all(np.abs(drhs_c - drhs_a) <= rhs_scale)):
            return None
        decomposition.append((dg, dc, ds, drhs_a))
    return decomposition


def ac_sensitivities(analysis: "ACAnalysis", params: Iterable,
                     outputs: Iterable[str], method: str = "auto",
                     operating_point=None,
                     rel_step: float = _AC_ASSEMBLY_STEP) -> ACSensitivities:
    """Exact-solve sensitivities of the AC output phasors.

    All linear solves are exact and factorization-free beyond the forward
    sweep: per frequency the small-signal matrix is factored once, and each
    output costs one transposed back-substitution (adjoint).  The total
    derivative of the assembled system -- including the dependence of the
    operating point on the parameters, resolved exactly via the DC
    adjoint/direct machinery -- is formed by *assembly-level* central
    differences along the combined direction ``(dp_k, dx0/dp_k)``.

    Unless ``options.jacobian_reuse == "off"``, those differences are taken
    only at three probe frequencies per parameter: the derivative matrix is
    split into its own verified ``dG + jw*dC + dS/(jw)`` decomposition (see
    :func:`_ac_parameter_decomposition`) and the sweep applies it as pure
    value updates, never re-stamping devices per frequency.  Circuits whose
    parameter dependence falls outside the model fail the verification
    probe and transparently keep the two-re-stamps-per-parameter-and-
    frequency reference path; ``stats["assembly_mode"]`` records which ran.
    """
    from .op import OperatingPointAnalysis

    circuit = analysis.circuit
    options = analysis.options
    system = MNASystem(circuit)
    stats = {"newton_solves": 0, "adjoint_solves": 0, "direct_solves": 0}
    workspace = NewtonWorkspace(options)
    if operating_point is None:
        operating_point = OperatingPointAnalysis(circuit, options).run(
            workspace=workspace)
        stats["newton_solves"] = 1
    x0 = np.asarray(operating_point.raw, dtype=float)
    if x0.shape != (system.size,):
        raise AnalysisError("operating point does not match this circuit")
    integrator_states = dict(operating_point.integrator_states)
    refs = resolve_parameters(circuit, params)
    names, selectors = output_selectors(system, outputs)
    num_params = len(refs)

    # Operating-point dependence: dx0/dp by the direct DC method (P forward
    # back-substitutions on the DC Jacobian; the shared workspace reuses the
    # Newton solve's factorization when the circuit is linear).
    dc_factorization = _factor_at(system, x0, "op", options, workspace)
    dres_dc = parameter_residual_derivatives(system, x0, refs, "op", 0.0,
                                             None, options)
    try:
        dx0 = dc_factorization.solve(-dres_dc)
    except LinAlgError as exc:
        raise SingularMatrixError(
            f"singular DC Jacobian in AC sensitivity chain: {exc}") from exc
    stats["direct_solves"] += num_params

    base_values = [ref.value for ref in refs]
    steps = [rel_step * (abs(v) if v != 0.0 else 1.0) for v in base_values]

    frequencies = analysis.frequencies
    decomposition = None
    if options.jacobian_reuse != "off" and frequencies.size >= 4:
        decomposition = _ac_parameter_decomposition(
            system, refs, base_values, steps, x0, dx0, integrator_states,
            options, frequencies)
    stats["assembly_mode"] = "cached" if decomposition is not None \
        else "direct"

    def system_at(f: int, omega: float):
        ctx = system.assemble_ac(x0, omega, integrator_states, options)
        return ctx.matrix, ctx.rhs

    if decomposition is not None:
        from .ac import gcs_predict

        def dres_at(f: int, omega: float, solution: np.ndarray) -> np.ndarray:
            dres = np.zeros((system.size, num_params), dtype=complex)
            for k, (dg, dc, ds, drhs) in enumerate(decomposition):
                dres[:, k] = gcs_predict(dg, dc, ds, omega) @ solution - drhs
            return dres
    else:
        def dres_at(f: int, omega: float, solution: np.ndarray) -> np.ndarray:
            dres = np.zeros((system.size, num_params), dtype=complex)
            for k in range(num_params):
                h = steps[k]
                shifted = list(base_values)
                shifted[k] = base_values[k] + h
                with seeded_parameters(refs, nvars=0, values=shifted):
                    up = system.assemble_ac(x0 + h * dx0[:, k], omega,
                                            integrator_states, options)
                shifted[k] = base_values[k] - h
                with seeded_parameters(refs, nvars=0, values=shifted):
                    down = system.assemble_ac(x0 - h * dx0[:, k], omega,
                                              integrator_states, options)
                residual_up = up.matrix @ solution - up.rhs
                residual_down = down.matrix @ solution - down.rhs
                dres[:, k] = (residual_up - residual_down) / (2.0 * h)
            return dres

    solver = FactorizedSolver("dense")
    values, matrix, resolved = sweep_spectral_sensitivities(
        frequencies, selectors, system_at, dres_at, method=method,
        solver=solver, stats=stats,
        solve_error=lambda frequency, exc: SingularMatrixError(
            f"singular small-signal matrix at f={frequency:g} Hz: {exc}"))
    stats["factorizations"] = solver.factorizations \
        + workspace.solver.factorizations
    return ACSensitivities(frequencies, names,
                           tuple(ref.label for ref in refs), values, matrix,
                           resolved, stats)


# --------------------------------------------------------------------------- #
# optimization-protocol evaluator                                             #
# --------------------------------------------------------------------------- #

class CircuitSensitivityEvaluator:
    """Adjoint-differentiable evaluator over an operating-point analysis.

    Implements both halves of the optimization evaluator protocol: plain
    calls (``evaluator(params) -> {output: value}``) and
    ``evaluate_with_gradient(params) -> (values, {output: {param: d}})`` --
    the hook :class:`repro.optim.objective.Objective` auto-selects for its
    ``gradient="adjoint"`` mode.  Design parameters are mapped onto device
    tunables of a rebuilt netlist, so the evaluator stays picklable
    (module-level ``build``) for campaign fan-out.

    Parameters
    ----------
    build:
        Module-level function ``config_dict -> Circuit``.
    param_map:
        ``{design name: "device.param"}`` -- which tunables the design
        vector controls.
    outputs:
        Canonical unknown signal names to report.
    config:
        Fixed configuration forwarded to ``build``.
    options:
        Simulation options for the operating-point solves.
    """

    def __init__(self, build, param_map: Mapping[str, str],
                 outputs: Sequence[str],
                 config: Mapping[str, object] | None = None,
                 options: SimulationOptions | None = None) -> None:
        self.build = build
        self.param_map = dict(param_map)
        self.outputs = tuple(outputs)
        self.config = dict(config or {})
        self.options = options

    def _prepare(self, params: Mapping[str, float]):
        from .op import OperatingPointAnalysis

        circuit = self.build(dict(self.config))
        refs = resolve_parameters(circuit, list(self.param_map.values()))
        for ref, design_name in zip(refs, self.param_map):
            if design_name in params:
                ref.device.set_parameter(ref.parameter,
                                         float(params[design_name]))
        analysis = OperatingPointAnalysis(
            circuit, self.options or SimulationOptions())
        return analysis, refs

    def __call__(self, params: Mapping[str, float]) -> dict[str, float]:
        analysis, _ = self._prepare(params)
        op = analysis.run()
        return {name: float(op[name]) for name in self.outputs}

    def evaluate_with_gradient(self, params: Mapping[str, float]
                               ) -> tuple[dict[str, float],
                                          dict[str, dict[str, float]]]:
        analysis, refs = self._prepare(params)
        result = operating_point_sensitivities(
            analysis, refs, self.outputs, method="auto")
        label_to_design = {ref.label: design
                           for ref, design in zip(refs, self.param_map)}
        values = {name: float(result.value(name)) for name in self.outputs}
        gradients = {
            name: {label_to_design[label]: float(d)
                   for label, d in result.gradient(name).items()}
            for name in self.outputs
        }
        return values, gradients

    def cache_payload(self) -> dict:
        module = getattr(self.build, "__module__", "?")
        qualname = getattr(self.build, "__qualname__", "?")
        return {
            "evaluator": "repro.circuit.analysis.sensitivity."
                         "CircuitSensitivityEvaluator",
            "build": f"{module}.{qualname}",
            "param_map": dict(sorted(self.param_map.items())),
            "outputs": list(self.outputs),
            "config": {k: self.config[k] for k in sorted(self.config)},
        }
